# Development entry points. Everything runs from the repo root with
# src/ on the path; no installation required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench docs-check

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q -o python_files="bench_*.py"

# Fails when any module under src/repro lacks a module docstring or a
# package is missing from README.md's package map.
docs-check:
	$(PYTHON) tools/docs_check.py
