# Development entry points. Everything runs from the repo root with
# src/ on the path; no installation required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-json docs-check cli-docs coverage fuzz-smoke fabric-smoke serve-smoke explore-smoke

# Run the docs gate AND the test suite even when the first fails, then
# report both statuses — a docs slip must never mask a test failure
# (or vice versa).
test:
	@docs_status=0; pytest_status=0; \
	$(PYTHON) tools/docs_check.py || docs_status=$$?; \
	$(PYTHON) -m pytest -x -q || pytest_status=$$?; \
	echo "----------------------------------------"; \
	echo "docs-check: $$([ $$docs_status -eq 0 ] && echo PASS || echo "FAIL (exit $$docs_status)")"; \
	echo "pytest:     $$([ $$pytest_status -eq 0 ] && echo PASS || echo "FAIL (exit $$pytest_status)")"; \
	[ $$docs_status -eq 0 ] && [ $$pytest_status -eq 0 ]

# Everything except the minutes-scale chaos drills and soak tests
# (`-m "not slow"`); `make test` above still runs the full set.  The
# slow tests get their own CI lane so a red fast lane answers in
# seconds, not minutes.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks -q -o python_files="bench_*.py"

# Verifies every analysis fast path against its reference
# implementation (nonzero exit on divergence), then records the perf
# trajectory to BENCH_analysis.json. See docs/performance.md.
bench-json:
	$(PYTHON) tools/bench_runner.py --output BENCH_analysis.json

# Fails when a module under src/repro lacks a docstring, the README
# package map is missing or stale, a docs/README link or #anchor is
# broken, docs/cli.md drifts from the argparse tree, or a documented
# docstring example no longer runs.
docs-check:
	$(PYTHON) tools/docs_check.py

# Regenerate the CLI reference from src/repro/cli.py.
cli-docs:
	$(PYTHON) tools/gen_cli_docs.py

# Branch coverage (coverage.py when installed; a line-coverage tracer
# otherwise) over the fuzzlab tests, with a floor on repro.fuzzlab.
# Prints the markdown summary table documented in docs/testing.md.
coverage:
	$(PYTHON) tools/coverage_gate.py

# The bounded generative-fuzz lane CI runs: 25 sampled campaign
# worlds, every oracle, deterministic for the fixed seed.
fuzz-smoke:
	$(PYTHON) -m repro fuzz run --budget 25 --seed 0 --quiet

# The distributed chaos drill: coordinator + workers as real OS
# processes over localhost — one worker scripted to die mid-board,
# the coordinator SIGTERMed and resumed on the same port, one worker
# healing through a flaky proxy's scripted connection drops — and a
# byte-compare of the distributed report against the single-host
# reference. See docs/distributed.md.
fabric-smoke:
	$(PYTHON) tools/fabric_smoke.py

# The bounded exploration lane CI runs: a 3-generation attack
# evolution against two profiles (frontier JSON + elite corpus seeds
# under explore-artifacts/) and a small-scrub-axis defense Pareto
# sweep — both byte-deterministic for the fixed seed. See
# docs/exploration.md.
explore-smoke:
	$(PYTHON) -m repro explore attack --seed 0 --population 4 \
		--generations 3 --keep-elites 1 --profiles none,scrub_pool \
		-o explore-artifacts/attack-frontier.json \
		--elites explore-artifacts/elites
	$(PYTHON) -m repro explore defenses --boards 1 --victims 2 \
		--models resnet50_pt --input-hw 16 --scrub-rates 16,64 \
		-o explore-artifacts/defense-frontier.json

# The analysis daemon as a real OS process: `repro serve analysis` on
# an ephemeral port, two concurrent clients (duplicate upload dedup,
# one guaranteed quota rejection healed via retry-after), a streaming
# subscriber, and a clean SIGTERM drain. See docs/service.md.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py
