# Development entry points. Everything runs from the repo root with
# src/ on the path; no installation required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench docs-check

test: docs-check
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q -o python_files="bench_*.py"

# Fails when a module under src/repro lacks a docstring, the README
# package map is missing or stale, a docs/README link is broken, or a
# documented docstring example no longer runs.
docs-check:
	$(PYTHON) tools/docs_check.py
