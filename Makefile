# Development entry points. Everything runs from the repo root with
# src/ on the path; no installation required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-json docs-check cli-docs

test: docs-check
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q -o python_files="bench_*.py"

# Verifies every analysis fast path against its reference
# implementation (nonzero exit on divergence), then records the perf
# trajectory to BENCH_analysis.json. See docs/performance.md.
bench-json:
	$(PYTHON) tools/bench_runner.py --output BENCH_analysis.json

# Fails when a module under src/repro lacks a docstring, the README
# package map is missing or stale, a docs/README link or #anchor is
# broken, docs/cli.md drifts from the argparse tree, or a documented
# docstring example no longer runs.
docs-check:
	$(PYTHON) tools/docs_check.py

# Regenerate the CLI reference from src/repro/cli.py.
cli-docs:
	$(PYTHON) tools/gen_cli_docs.py
