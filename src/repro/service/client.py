"""Asyncio client for the analysis daemon's newline-JSON protocol.

Deliberately thin: :meth:`AsyncServiceClient.request` returns the
server's response dict *verbatim* — quota and backpressure refusals
come back as ``{"ok": False, "code": ..., "retry_after": ...}``
answers for the caller to pace on, not as exceptions.  Only transport
failures (dead socket, torn frame, non-JSON bytes) raise, because
those mean the answer is unknowable, not "no".

One client is one connection.  :meth:`subscribe` dedicates the
connection to the delta stream — open a second client for control
traffic while a subscription is live.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
from typing import AsyncIterator

from repro.errors import FabricProtocolError


class AsyncServiceClient:
    """One newline-JSON connection to an :class:`AnalysisService`.

    >>> # client = await AsyncServiceClient.connect("127.0.0.1", 4100)
    >>> # await client.put_dump("tenant-a", b"residue...")
    >>> # await client.request("submit", tenant="tenant-a", sha256=digest)
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        """Dial the daemon."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, **fields) -> dict:
        """Send one op, await one response dict (refusals included)."""
        payload = {"op": op, **fields}
        self._writer.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        await self._writer.drain()
        return await self._read_response(op)

    async def _read_response(self, op: str) -> dict:
        line = await self._reader.readline()
        if not line:
            raise FabricProtocolError(
                f"connection closed before a response to {op!r}"
            )
        try:
            response = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FabricProtocolError(
                f"undecodable response to {op!r}"
            ) from exc
        if not isinstance(response, dict):
            raise FabricProtocolError(
                f"response to {op!r} is not a JSON object"
            )
        return response

    async def put_dump(self, tenant: str, data: bytes) -> dict:
        """Upload raw dump bytes, self-attesting the sha256."""
        return await self.request(
            "put_dump",
            tenant=tenant,
            sha256=hashlib.sha256(data).hexdigest(),
            data_b64=base64.b64encode(data).decode("ascii"),
        )

    async def subscribe(self) -> AsyncIterator[dict]:
        """Dedicate this connection to the delta stream.

        Yields every ``{"event": ...}`` line the daemon pushes —
        the backlog of already-completed jobs first, then live deltas
        — and returns after the terminal ``drained`` event (which is
        also yielded).  The connection is unusable for further ops.
        """
        response = await self.request("subscribe")
        if not response.get("ok"):
            raise FabricProtocolError(
                f"subscription refused: {response.get('error')}"
            )
        while True:
            line = await self._reader.readline()
            if not line:
                return
            event = json.loads(line)
            yield event
            if event.get("event") == "drained":
                return

    async def close(self) -> None:
        """Close the connection.  Idempotent."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
