"""Per-tenant admission control: token buckets over an injectable clock.

Two buckets per tenant — one metered in upload *bytes*, one in queued
*jobs* — refill continuously at a configured rate up to a burst
capacity.  A request either fits (tokens are taken, request admitted)
or it does not, in which case the bucket answers the exact number of
seconds until the identical request would fit.  The daemon forwards
that as a ``retry-after`` hint instead of buffering the work: a hot
tenant is throttled precisely, everyone else is untouched.

The clock is injected (any ``() -> float`` callable, e.g.
:class:`~repro.utils.resilience.ManualClock`), which is what makes the
soak test's scripted quota rejections deterministic.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import QuotaExceededError

_MIN_RETRY_AFTER = 1e-6
"""Floor on the retry-after hint.  A refusal's deficit can be a few
ULPs of tokens; the corresponding wait (~1e-16 s) is smaller than the
float resolution of a clock reading in the seconds range, so a caller
advancing an injectable clock by exactly the hint would never move it
(``now + 2e-16 == now``) and retry forever.  One microsecond always
advances the clock and always refills more than any sub-floor
deficit."""


class TokenBucket:
    """A continuously refilling token bucket.

    Starts full.  ``rate`` is tokens per second, ``capacity`` the
    burst ceiling.  Thread-safe: the daemon's event loop and the
    executor's worker threads may consult it concurrently.

    >>> from repro.utils.resilience import ManualClock
    >>> clock = ManualClock()
    >>> bucket = TokenBucket(rate=10.0, capacity=20.0, clock=clock)
    >>> bucket.try_take(20.0)   # the full burst fits immediately
    0.0
    >>> bucket.try_take(5.0)    # empty: 5 tokens arrive in 0.5s
    0.5
    >>> clock.advance(0.5)
    >>> bucket.try_take(5.0)
    0.0
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError(
                f"rate and capacity must be positive, got "
                f"rate={rate}, capacity={capacity}"
            )
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)

    def try_take(self, amount: float) -> float:
        """Take *amount* tokens if available.

        Returns ``0.0`` on success.  On refusal, returns the seconds
        until the bucket will hold *amount* tokens — or ``inf`` when
        *amount* exceeds the burst capacity and no amount of waiting
        helps.  The hint is floored at one microsecond so that waiting
        exactly the hinted time always clears the deficit, even when
        the deficit is pure float residue.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        with self._lock:
            self._refill()
            if amount > self._capacity:
                return math.inf
            if amount <= self._tokens:
                self._tokens -= amount
                return 0.0
            return max((amount - self._tokens) / self._rate, _MIN_RETRY_AFTER)

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (refilled to now)."""
        with self._lock:
            self._refill()
            return self._tokens


@dataclass(frozen=True)
class TenantQuotaConfig:
    """The admission limits every tenant gets.

    Defaults are sized for the test-scale world: a few hundred KiB of
    dump upload per second with a ~1 MiB burst, and a steady trickle
    of job submissions with a burst of 8.
    """

    upload_bytes_per_sec: float = 256 * 1024
    upload_burst_bytes: float = 1024 * 1024
    jobs_per_sec: float = 2.0
    jobs_burst: float = 8.0


class TenantLedger:
    """All tenants' buckets and counters, created lazily on first use.

    The daemon consults this at admission time; ``counters()`` feeds
    the ``/stats`` telemetry surface so operators can see who is being
    throttled without grepping logs.
    """

    def __init__(
        self,
        config: TenantQuotaConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config or TenantQuotaConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._upload_buckets: dict[str, TokenBucket] = {}
        self._job_buckets: dict[str, TokenBucket] = {}
        self._counters: dict[str, dict[str, int]] = {}

    def _counter(self, tenant: str) -> dict[str, int]:
        return self._counters.setdefault(
            tenant,
            {
                "uploads_admitted": 0,
                "upload_bytes_admitted": 0,
                "uploads_rejected": 0,
                "jobs_admitted": 0,
                "jobs_rejected": 0,
            },
        )

    def admit_upload(self, tenant: str, nbytes: int) -> None:
        """Charge *nbytes* of upload to *tenant* or refuse.

        Raises :class:`~repro.errors.QuotaExceededError` with the
        retry-after hint when the tenant's byte bucket cannot cover
        the upload.
        """
        with self._lock:
            bucket = self._upload_buckets.get(tenant)
            if bucket is None:
                bucket = self._upload_buckets[tenant] = TokenBucket(
                    rate=self._config.upload_bytes_per_sec,
                    capacity=self._config.upload_burst_bytes,
                    clock=self._clock,
                )
            counter = self._counter(tenant)
        retry_after = bucket.try_take(float(nbytes))
        with self._lock:
            if retry_after > 0.0:
                counter["uploads_rejected"] += 1
            else:
                counter["uploads_admitted"] += 1
                counter["upload_bytes_admitted"] += nbytes
        if retry_after > 0.0:
            raise QuotaExceededError(tenant, "upload-bytes", retry_after)

    def admit_job(self, tenant: str) -> None:
        """Charge one job submission to *tenant* or refuse."""
        with self._lock:
            bucket = self._job_buckets.get(tenant)
            if bucket is None:
                bucket = self._job_buckets[tenant] = TokenBucket(
                    rate=self._config.jobs_per_sec,
                    capacity=self._config.jobs_burst,
                    clock=self._clock,
                )
            counter = self._counter(tenant)
        retry_after = bucket.try_take(1.0)
        with self._lock:
            if retry_after > 0.0:
                counter["jobs_rejected"] += 1
            else:
                counter["jobs_admitted"] += 1
        if retry_after > 0.0:
            raise QuotaExceededError(tenant, "queued-jobs", retry_after)

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-tenant admission counters, a snapshot copy."""
        with self._lock:
            return {
                tenant: dict(counter)
                for tenant, counter in sorted(self._counters.items())
            }
