"""The asyncio analysis daemon behind ``repro serve analysis``.

One :class:`AnalysisService` owns four things:

- a content-addressed :class:`~repro.campaign.runtime.spool.DumpSpool`
  that uploads land in (dedup by sha256 — re-uploading known residue
  costs a hash, not disk);
- a registry of named :class:`SignatureDatabase` objects that
  submissions reference by name;
- a bounded
  :class:`~repro.campaign.runtime.executors.AnalysisPool` that runs
  the pure :func:`~repro.service.analysis.analyze_dump` off the event
  loop;
- the admission layer — per-tenant
  :class:`~repro.service.quotas.TenantLedger` buckets in front of the
  pool's bounded queue.

Wire protocol (documented for clients in ``docs/service.md``): one
JSON object per line, UTF-8, ``\\n``-terminated, same framing as the
campaign fabric.  Every request carries ``op``; every response carries
``ok``.  Refusals are *answers*, not errors: ``quota`` and
``backpressure`` responses carry ``retry_after`` seconds so a client
can pace itself instead of guessing.

Threading model: handlers run on the event loop; analysis runs on the
pool's worker threads; completions re-enter the loop via
``call_soon_threadsafe``.  Because subscription registration and
delta publication both happen on the loop, a subscriber atomically
sees every delta exactly once — the snapshot-then-register sequence
cannot race a completing job.

Drain (SIGTERM): the door closes — new submissions get a ``draining``
refusal — but every accepted job still completes, streams its delta,
and lands in the final report.  Subscribers get a terminal
``{"event": "drained"}`` line before EOF.  Drain loses nothing; it
only stops taking more.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.runtime.executors import AnalysisPool
from repro.campaign.runtime.spool import DumpSpool
from repro.errors import (
    BackpressureError,
    QuotaExceededError,
    ServiceDrainingError,
    UnknownJobError,
)
from repro.service.analysis import (
    CARVE_PRESETS,
    AnalysisConfig,
    AnalysisReport,
    DumpAnalysis,
    analyze_dump,
    mine_database,
)
from repro.service.quotas import TenantLedger, TenantQuotaConfig

MAX_LINE_BYTES = 64 * 1024 * 1024
"""Upper bound on one request line — caps a hostile upload at decode
time rather than buffering an unbounded stream."""

_DEFAULT_BACKPRESSURE_HINT = 0.05
"""Advisory retry-after (seconds) when the analysis queue is full."""


@dataclass
class _Job:
    """Book-keeping for one accepted analysis job."""

    job_id: int
    tenant: str
    sha256: str
    state: str = "queued"  # queued -> done | failed
    analysis: dict | None = None
    error: str | None = None


@dataclass(eq=False)
class _Subscriber:
    """One streaming connection's outbound delta queue."""

    queue: "asyncio.Queue[dict | None]" = field(
        default_factory=asyncio.Queue
    )


class AnalysisService:
    """The analysis-as-a-service daemon (see module docstring).

    ``worker_gate`` is a test seam: when given (a
    ``threading.Event``), every pool worker waits on it before
    analyzing — clearing the gate wedges the workers so a scripted
    load can fill the bounded queue and observe real backpressure
    deterministically, then setting it releases the backlog.
    """

    def __init__(
        self,
        spool_root,
        models: tuple[str, ...],
        input_hw: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_capacity: int = 8,
        quota_config: TenantQuotaConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        min_score: float = 0.3,
        worker_gate=None,
    ) -> None:
        self._host = host
        self._port = port
        self._spool = DumpSpool(spool_root)
        self._databases = {"default": mine_database(tuple(models), input_hw)}
        self._pool = AnalysisPool(workers=workers, capacity=queue_capacity)
        self._ledger = TenantLedger(quota_config, clock=clock)
        self._min_score = min_score
        self._worker_gate = worker_gate
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._jobs: dict[int, _Job] = {}
        self._next_job_id = 1
        self._deltas: list[dict] = []
        self._subscribers: set[_Subscriber] = set()
        self._report = AnalysisReport()
        self._draining = False
        self._drained = asyncio.Event()
        self._failed_jobs = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and begin serving; returns the listening address."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    @property
    def report(self) -> AnalysisReport:
        """The aggregate of every completed analysis so far."""
        return self._report

    def request_drain(self) -> None:
        """Begin the drain from any thread (the SIGTERM handler's hook)."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._begin_drain)

    def _begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        # Release a test-wedged pool so accepted jobs can finish.
        if self._worker_gate is not None:
            self._worker_gate.set()
        self._loop.create_task(self._finish_drain())

    async def _finish_drain(self) -> None:
        await asyncio.get_running_loop().run_in_executor(
            None, self._pool.drain
        )
        for subscriber in list(self._subscribers):
            subscriber.queue.put_nowait(None)
        self._drained.set()

    async def drained(self) -> None:
        """Wait until a requested drain has completed."""
        await self._drained.wait()

    async def close(self) -> None:
        """Stop listening and retire the pool.  Idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._pool.close()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
                    await self._send(
                        writer,
                        {
                            "ok": False,
                            "code": "bad-request",
                            "error": "request is not a JSON object",
                        },
                    )
                    break
                op = request.get("op")
                if op == "subscribe":
                    await self._serve_subscription(writer, request)
                    return
                handler = self._OPS.get(op)
                if handler is None:
                    response = {
                        "ok": False,
                        "code": "bad-request",
                        "error": f"unknown op {op!r}",
                    }
                else:
                    try:
                        response = handler(self, request)
                    except KeyError as exc:
                        response = {
                            "ok": False,
                            "code": "bad-request",
                            "error": f"missing field {exc.args[0]!r}",
                        }
                    except QuotaExceededError as exc:
                        response = {
                            "ok": False,
                            "code": "quota",
                            "error": str(exc),
                            "retry_after": exc.retry_after,
                        }
                    except BackpressureError as exc:
                        response = {
                            "ok": False,
                            "code": "backpressure",
                            "error": str(exc),
                            "retry_after": exc.retry_after,
                        }
                    except UnknownJobError as exc:
                        response = {
                            "ok": False,
                            "code": "unknown-job",
                            "error": str(exc),
                        }
                    except ServiceDrainingError as exc:
                        response = {
                            "ok": False,
                            "code": "draining",
                            "error": str(exc),
                        }
                await self._send(writer, response)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            except asyncio.CancelledError:
                # close() tears the server down mid-wait; the socket is
                # already gone, so finish quietly instead of letting
                # asyncio log a never-retrieved CancelledError.
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        await writer.drain()

    # -- ops -----------------------------------------------------------------

    def _op_hello(self, request: dict) -> dict:
        return {
            "ok": True,
            "server": "repro-analysis",
            "databases": sorted(self._databases),
            "carve_presets": sorted(CARVE_PRESETS),
            "draining": self._draining,
        }

    def _op_put_dump(self, request: dict) -> dict:
        tenant = str(request["tenant"])
        if self._draining:
            raise ServiceDrainingError("daemon is draining; upload refused")
        try:
            data = base64.b64decode(request["data_b64"], validate=True)
        except (binascii.Error, TypeError, ValueError):
            return {
                "ok": False,
                "code": "bad-request",
                "error": "data_b64 is not valid base64",
            }
        claimed = request.get("sha256")
        digest = hashlib.sha256(data).hexdigest()
        if claimed is not None and claimed != digest:
            return {
                "ok": False,
                "code": "digest-mismatch",
                "error": (
                    f"payload hashes to {digest}, not the claimed "
                    f"{claimed}"
                ),
            }
        self._ledger.admit_upload(tenant, len(data))
        entry = self._spool.put_bytes(data)
        return {
            "ok": True,
            "sha256": entry.sha256,
            "nbytes": entry.nbytes,
            "deduplicated": entry.deduplicated,
        }

    def _op_submit(self, request: dict) -> dict:
        tenant = str(request["tenant"])
        digest = str(request["sha256"])
        if self._draining:
            raise ServiceDrainingError(
                "daemon is draining; no new jobs admitted"
            )
        if digest not in self._spool:
            return {
                "ok": False,
                "code": "unknown-digest",
                "error": f"no uploaded dump with sha256 {digest}",
            }
        database_name = str(request.get("database", "default"))
        database = self._databases.get(database_name)
        if database is None:
            return {
                "ok": False,
                "code": "unknown-database",
                "error": f"no signature database named {database_name!r}",
            }
        carve_name = str(request.get("carve", "default"))
        carve = CARVE_PRESETS.get(carve_name)
        if carve is None:
            return {
                "ok": False,
                "code": "bad-request",
                "error": f"no carve preset named {carve_name!r}",
            }
        self._ledger.admit_job(tenant)
        job = _Job(job_id=self._next_job_id, tenant=tenant, sha256=digest)
        config = AnalysisConfig(
            database=database, carve=carve, min_score=self._min_score
        )
        gate = self._worker_gate
        spool = self._spool
        loop = self._loop

        def run_analysis() -> DumpAnalysis:
            if gate is not None:
                gate.wait()
            with spool.open(digest) as mapped:
                return analyze_dump(mapped.data, config)

        def on_done(result, error) -> None:
            loop.call_soon_threadsafe(self._job_finished, job, result, error)

        if not self._pool.try_submit(run_analysis, on_done):
            raise BackpressureError(_DEFAULT_BACKPRESSURE_HINT)
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        return {"ok": True, "job_id": job.job_id}

    def _op_status(self, request: dict) -> dict:
        job_id = int(request["job_id"])
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        response = {
            "ok": True,
            "job_id": job.job_id,
            "state": job.state,
            "sha256": job.sha256,
        }
        if job.analysis is not None:
            response["analysis"] = job.analysis
        if job.error is not None:
            response["error"] = job.error
        return response

    def _op_stats(self, request: dict) -> dict:
        completed = sum(
            1 for job in self._jobs.values() if job.state != "queued"
        )
        return {
            "ok": True,
            "stats": {
                "queue": self._pool.stats(),
                "tenants": self._ledger.counters(),
                "spool": self._spool.put_stats(),
                "jobs": {
                    "accepted": len(self._jobs),
                    "completed": completed,
                    "failed": self._failed_jobs,
                },
                "subscribers": len(self._subscribers),
                "draining": self._draining,
            },
        }

    _OPS: dict[str, Callable[["AnalysisService", dict], dict]] = {
        "hello": _op_hello,
        "put_dump": _op_put_dump,
        "submit": _op_submit,
        "status": _op_status,
        "stats": _op_stats,
    }

    # -- completion and streaming --------------------------------------------

    def _job_finished(self, job: _Job, result, error) -> None:
        """Runs on the event loop: record the outcome, publish the delta."""
        if error is not None:
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            self._failed_jobs += 1
            event = {
                "event": "job_failed",
                "job_id": job.job_id,
                "tenant": job.tenant,
                "sha256": job.sha256,
                "error": job.error,
            }
        else:
            job.state = "done"
            job.analysis = result.to_payload()
            self._report.add(result)
            event = {
                "event": "delta",
                "job_id": job.job_id,
                "tenant": job.tenant,
                "analysis": job.analysis,
            }
        self._deltas.append(event)
        for subscriber in self._subscribers:
            subscriber.queue.put_nowait(event)

    async def _serve_subscription(
        self, writer: asyncio.StreamWriter, request: dict
    ) -> None:
        """Dedicate this connection to the delta stream.

        The snapshot of already-published deltas and the registration
        happen in one loop step, so no delta is missed or doubled no
        matter how the subscription interleaves with completing jobs.
        """
        subscriber = _Subscriber()
        backlog = list(self._deltas)
        already_drained = self._drained.is_set()
        self._subscribers.add(subscriber)
        try:
            await self._send(
                writer, {"ok": True, "subscribed": True, "backlog": len(backlog)}
            )
            for event in backlog:
                await self._send(writer, event)
            if already_drained:
                await self._send(
                    writer, {"event": "drained", "jobs": len(self._jobs)}
                )
                return
            while True:
                event = await subscriber.queue.get()
                if event is None:
                    await self._send(
                        writer, {"event": "drained", "jobs": len(self._jobs)}
                    )
                    return
                await self._send(writer, event)
        except (ConnectionError, OSError):
            pass
        finally:
            self._subscribers.discard(subscriber)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            except asyncio.CancelledError:
                # close() tears the server down mid-wait; the socket is
                # already gone, so finish quietly instead of letting
                # asyncio log a never-retrieved CancelledError.
                pass


async def serve_forever(
    service: AnalysisService,
    *,
    on_listening: Callable[[str, int], None] | None = None,
) -> AnalysisReport:
    """Run *service* until a drain is requested and completes.

    Installs SIGTERM/SIGINT handlers that trigger the drain; returns
    the final aggregate report once every accepted job has finished.
    """
    import signal

    host, port = await service.start()
    # Handlers go in before the listening banner is printed: a
    # supervisor that SIGTERMs the instant it sees the banner must hit
    # the drain path, never the default kill disposition.
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, service.request_drain)
    if on_listening is not None:
        on_listening(host, port)
    try:
        await service.drained()
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        await service.close()
    return service.report
