"""Analysis-as-a-service: the repo's serving face.

The CLI analyzes what it simulated; this package analyzes whatever it
is *sent*.  A long-lived asyncio daemon (:mod:`repro.service.daemon`)
accepts newline-JSON requests from external clients — dump uploads
(content-addressed through the campaign's
:class:`~repro.campaign.runtime.spool.DumpSpool`, deduplicated by
sha256), analysis-job submissions, job status polls, and streaming
subscriptions that push incremental report deltas as jobs complete.

The split that makes it possible lives in
:mod:`repro.service.analysis`: a pure ``analyze_dump(buffer, config)``
function with no dependency on simulated boards, so externally
captured dumps (the Resurrection-Attack ingest case) flow through the
same carving / identification / metrics pipeline as simulated ones.

Admission control is explicit rather than implicit: bounded queues
answer ``retry-after`` instead of buffering unboundedly
(:class:`~repro.errors.BackpressureError`), and per-tenant token
buckets (:mod:`repro.service.quotas`) throttle upload bytes and queued
jobs per tenant without degrading anyone else.
"""

from repro.service.analysis import (
    CARVE_PRESETS,
    AnalysisConfig,
    AnalysisReport,
    CarvePreset,
    DumpAnalysis,
    analyze_dump,
    mine_database,
)
from repro.service.client import AsyncServiceClient
from repro.service.daemon import AnalysisService
from repro.service.quotas import TenantLedger, TenantQuotaConfig, TokenBucket

__all__ = [
    "CARVE_PRESETS",
    "AnalysisConfig",
    "AnalysisReport",
    "AnalysisService",
    "AsyncServiceClient",
    "CarvePreset",
    "DumpAnalysis",
    "TenantLedger",
    "TenantQuotaConfig",
    "TokenBucket",
    "analyze_dump",
    "mine_database",
]
