"""The pure analysis core: ``analyze_dump(buffer, config)``.

Everything the attack pipeline learns from a dump *after* extraction —
region map, residue count, entropy, model attribution — is a pure
function of the bytes.  This module factors that out of the simulated
world: no :class:`~repro.os.BoardSession`, no
:class:`~repro.attack.extraction.ScrapedDump`, just a buffer and a
config.  The service daemon calls it on uploaded dumps it never
simulated; the batch CLI (``repro analyze``) calls the very same
function, which is what makes the streamed-vs-batch byte-identity
contract testable at all.

Determinism rules, load-bearing for that contract:

- Floats are rounded to 6 decimal places at construction.  JSON
  round-trips such floats exactly, so a delta streamed over the wire
  and re-serialized equals the value computed locally, byte for byte.
- :class:`AnalysisReport` keys on the dump's sha256 — not job ids,
  not arrival order.  Duplicate uploads collapse to one row and rows
  sort by digest, so any interleaving of clients aggregates to the
  same bytes.
- Signature databases come from :func:`mine_database`, which routes
  through the campaign's memoized offline prep — same mix, same
  resolution, same database object.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.attack.carving import (
    DumpCartographer,
    printable_fraction,
    shannon_entropy,
)
from repro.attack.identify import ModelIdentifier, SignatureDatabase
from repro.campaign.engine import prepare_offline_cached
from repro.campaign.schedule import CampaignSpec
from repro.errors import IdentificationError
from repro.evaluation.metrics import nonzero_bytes


@dataclass(frozen=True)
class CarvePreset:
    """A named :class:`~repro.attack.carving.DumpCartographer` config.

    Clients pick presets by name on the wire instead of shipping raw
    cartographer parameters — the server stays in control of what a
    "fine" scan costs.
    """

    name: str
    window: int
    text_threshold: float = 0.85
    random_entropy: float = 7.0
    quantized_max_alphabet: int = 48

    def cartographer(self) -> DumpCartographer:
        """Build the cartographer this preset describes."""
        return DumpCartographer(
            window=self.window,
            text_threshold=self.text_threshold,
            random_entropy=self.random_entropy,
            quantized_max_alphabet=self.quantized_max_alphabet,
        )


CARVE_PRESETS: dict[str, CarvePreset] = {
    preset.name: preset
    for preset in (
        CarvePreset(name="default", window=256),
        CarvePreset(name="fine", window=64),
        CarvePreset(name="coarse", window=1024),
    )
}
"""The carve configs a client may request by name."""


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything :func:`analyze_dump` needs beyond the bytes."""

    database: SignatureDatabase
    carve: CarvePreset = CARVE_PRESETS["default"]
    min_score: float = 0.3


@dataclass(frozen=True)
class DumpAnalysis:
    """What one dump yielded — the unit the service streams as a delta.

    ``identified_model`` is ``None`` when attribution failed (scrubbed
    dump, unprofiled model) — that is a *result*, not an error: the
    defense matrix counts exactly these.
    """

    sha256: str
    nbytes: int
    residue_nbytes: int
    entropy: float
    printable_fraction: float
    region_count: int
    kind_bytes: dict[str, int]
    identified_model: str | None
    identification_score: float
    matched_tokens: int
    carve_preset: str

    def to_payload(self) -> dict:
        """A JSON-safe dict; the wire form of a report delta."""
        return {
            "sha256": self.sha256,
            "nbytes": self.nbytes,
            "residue_nbytes": self.residue_nbytes,
            "entropy": self.entropy,
            "printable_fraction": self.printable_fraction,
            "region_count": self.region_count,
            "kind_bytes": dict(self.kind_bytes),
            "identified_model": self.identified_model,
            "identification_score": self.identification_score,
            "matched_tokens": self.matched_tokens,
            "carve_preset": self.carve_preset,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DumpAnalysis":
        """Rebuild from :meth:`to_payload` output (the client side)."""
        return cls(
            sha256=payload["sha256"],
            nbytes=payload["nbytes"],
            residue_nbytes=payload["residue_nbytes"],
            entropy=payload["entropy"],
            printable_fraction=payload["printable_fraction"],
            region_count=payload["region_count"],
            kind_bytes=dict(payload["kind_bytes"]),
            identified_model=payload["identified_model"],
            identification_score=payload["identification_score"],
            matched_tokens=payload["matched_tokens"],
            carve_preset=payload["carve_preset"],
        )


def analyze_dump(buffer, config: AnalysisConfig) -> DumpAnalysis:
    """Characterize and attribute one raw dump buffer.

    Pure: the result depends only on the bytes of *buffer* and the
    *config* — no boards, no clocks, no global state beyond the memoized
    scan tables.  *buffer* may be bytes, bytearray, memoryview, or an
    mmap-backed spool object; nothing here copies it.

    >>> from repro.service.analysis import CARVE_PRESETS
    >>> CARVE_PRESETS["fine"].window
    64
    """
    digest = hashlib.sha256(buffer).hexdigest()
    regions = config.carve.cartographer().map_dump(buffer)
    totals = DumpCartographer.kind_totals(regions)
    identifier = ModelIdentifier(config.database, min_score=config.min_score)
    try:
        result = identifier.identify_buffer(buffer)
        identified = result.best_model
        score = result.scores[result.best_model]
        matched = len(result.matched_tokens)
    except IdentificationError:
        identified = None
        score = 0.0
        matched = 0
    return DumpAnalysis(
        sha256=digest,
        nbytes=len(buffer),
        residue_nbytes=nonzero_bytes(buffer),
        entropy=round(shannon_entropy(buffer), 6),
        printable_fraction=round(printable_fraction(buffer), 6),
        region_count=len(regions),
        kind_bytes={
            kind.value: total for kind, total in sorted(
                totals.items(), key=lambda item: item[0].value
            ) if total
        },
        identified_model=identified,
        identification_score=round(score, 6),
        matched_tokens=matched,
        carve_preset=config.carve.name,
    )


class AnalysisReport:
    """Aggregate of :class:`DumpAnalysis` rows, keyed by dump digest.

    The order-independence contract lives here: rows are deduplicated
    by sha256 (last write wins — analyses of identical bytes under the
    same config are identical anyway) and serialized sorted by digest
    with canonical JSON, so a report assembled from streamed deltas in
    any arrival order is byte-identical to one assembled by a batch
    run over the same dumps.
    """

    def __init__(self) -> None:
        self._rows: dict[str, DumpAnalysis] = {}

    def add(self, analysis: DumpAnalysis) -> None:
        """Fold one dump's analysis into the aggregate."""
        self._rows[analysis.sha256] = analysis

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> list[DumpAnalysis]:
        """All rows, sorted by digest."""
        return [self._rows[digest] for digest in sorted(self._rows)]

    def to_json(self) -> str:
        """Canonical serialization — the byte-identity anchor."""
        return json.dumps(
            {
                "dumps": [row.to_payload() for row in self.rows()],
                "total": len(self._rows),
            },
            sort_keys=True,
            indent=2,
        ) + "\n"

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [f"{'sha256':<16} {'bytes':>10} {'residue':>10}  model"]
        for row in self.rows():
            model = row.identified_model or "-"
            lines.append(
                f"{row.sha256[:16]:<16} {row.nbytes:>10} "
                f"{row.residue_nbytes:>10}  {model}"
            )
        lines.append(f"{len(self._rows)} dump(s)")
        return "\n".join(lines)


def mine_database(models: tuple[str, ...], input_hw: int) -> SignatureDatabase:
    """Mine a signature database for *models* at *input_hw* resolution.

    Routed through the campaign's memoized offline prep
    (:func:`~repro.campaign.engine.prepare_offline_cached`), so a
    daemon and a batch CLI run in the same process — or repeated
    requests for the same mix — share one profiling pass and, more
    importantly for byte-identity, one database object.
    """
    spec = CampaignSpec(
        boards=1, victims=1, model_mix=tuple(models), input_hw=input_hw
    )
    _, database = prepare_offline_cached(spec)
    return database
