"""Memory-sanitization policies — the defense the paper finds missing.

The insecure default (:attr:`SanitizePolicy.NONE`) reproduces
PetaLinux's observed behaviour: frames freed at process exit keep their
contents.  The other policies implement the countermeasures the paper's
related-work section discusses:

- ``ZERO_ON_FREE`` — synchronous scrub at teardown (the RowClone /
  RowReset-style fix, applied per-page so it is safe for the
  non-contiguous allocations of a multi-tenant board).
- ``SCRUB_POOL`` — asynchronous background scrubbing: freed frames
  queue up and a scrubber daemon cleans a bounded number per scheduler
  tick.  This trades teardown latency for a *window of vulnerability*,
  which the defense benchmarks measure.

Usage — watch the scrub pool's window of vulnerability close:

>>> from repro.hw.dram import DramDevice, PAGE_SIZE
>>> from repro.petalinux.sanitizer import SanitizePolicy, Sanitizer
>>> dram = DramDevice(capacity=16 * PAGE_SIZE)
>>> dram.write(3 * PAGE_SIZE, b"private residue")
>>> sanitizer = Sanitizer(
...     dram, policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=1
... )
>>> sanitizer.on_free([3, 4])                 # the process just exited
>>> sanitizer.pending
2
>>> dram.read(3 * PAGE_SIZE, 15)              # still scrapeable...
b'private residue'
>>> sanitizer.tick()                          # ...until the daemon runs
1
>>> dram.read(3 * PAGE_SIZE, 15)
b'\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00'
>>> sanitizer.drain()                         # close the window on demand
1
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.hw.dram import DramDevice


class SanitizePolicy(enum.Enum):
    """What happens to a process's frames when it exits."""

    NONE = "none"
    ZERO_ON_FREE = "zero_on_free"
    SCRUB_POOL = "scrub_pool"


@dataclass
class SanitizerStats:
    """Counters for the defense-cost benchmarks."""

    frames_scrubbed_sync: int = 0
    frames_scrubbed_async: int = 0
    max_queue_depth: int = 0


@dataclass
class Sanitizer:
    """Applies a :class:`SanitizePolicy` to frames leaving a process."""

    dram: DramDevice
    policy: SanitizePolicy = SanitizePolicy.NONE
    scrub_rate_per_tick: int = 64
    pattern: int = 0x00
    _queue: deque[int] = field(default_factory=deque, repr=False)
    stats: SanitizerStats = field(default_factory=SanitizerStats, repr=False)

    def on_free(self, frames: list[int]) -> None:
        """Handle frames being released at process exit.

        Under ``NONE`` this does nothing at all — the residue stays.
        Under ``ZERO_ON_FREE`` every frame is scrubbed before the
        allocator sees it again.  Under ``SCRUB_POOL`` frames are
        queued for the background scrubber.
        """
        if self.policy is SanitizePolicy.NONE:
            return
        if self.policy is SanitizePolicy.ZERO_ON_FREE:
            for frame in frames:
                self.dram.scrub_page(frame, self.pattern)
            self.stats.frames_scrubbed_sync += len(frames)
            return
        self._queue.extend(frames)
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))

    def tick(self) -> int:
        """Run one scheduler tick of the background scrubber.

        Returns how many frames were scrubbed this tick.  A no-op for
        the synchronous policies.
        """
        if self.policy is not SanitizePolicy.SCRUB_POOL:
            return 0
        scrubbed = 0
        while self._queue and scrubbed < self.scrub_rate_per_tick:
            self.dram.scrub_page(self._queue.popleft(), self.pattern)
            scrubbed += 1
        self.stats.frames_scrubbed_async += scrubbed
        return scrubbed

    @property
    def pending(self) -> int:
        """Frames still waiting for the background scrubber."""
        return len(self._queue)

    def drain(self) -> int:
        """Scrub everything still queued; returns the count.

        Used by experiments to close the vulnerability window on
        demand.
        """
        total = 0
        while self._queue:
            self.dram.scrub_page(self._queue.popleft(), self.pattern)
            total += 1
        self.stats.frames_scrubbed_async += total
        return total
