"""The Xilinx System Debugger (XSDB) facade.

The paper's contribution 2 is "a novel attack methodology that uses the
Xilinx system debugger to mount a system-channel attack": the debugger,
invokable from a second user space, grants "unrestricted access to
critical process details, including process IDs (pids), virtual address
spaces, and pagemaps" plus raw memory reads that bypass host-OS access
control.

This facade packages exactly those privileges behind the XSDB command
names (``targets``, ``mrd``, ``mwr``) plus the process-inspection
queries the attack scripts.  Internally everything routes through the
same procfs/devmem checks as the shell tools — so the hardened kernel
configurations restrict the debugger the same way they restrict the
raw tools, and the vulnerable default restricts nothing, as observed
on the board.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mmu.pagemap import ENTRY_SIZE, PagemapEntry, entry_from_bytes
from repro.mmu.paging import vpn_of
from repro.petalinux.devmem import Devmem
from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.procfs import ProcFs
from repro.petalinux.users import User


@dataclass(frozen=True)
class DebugTarget:
    """One debuggable target, as ``targets`` lists them."""

    index: int
    name: str
    state: str = "Running"

    def render(self) -> str:
        """One line of ``targets`` output."""
        return f"{self.index:>3}  {self.name} ({self.state})"


@dataclass
class XilinxSystemDebugger:
    """An XSDB session opened by *user* against one booted board."""

    kernel: PetaLinuxKernel
    user: User
    procfs: ProcFs = field(init=False)
    _devmem: Devmem = field(init=False)

    def __post_init__(self) -> None:
        self.procfs = ProcFs(self.kernel)
        self._devmem = Devmem(self.kernel)

    # -- targets ------------------------------------------------------------

    def targets(self) -> list[DebugTarget]:
        """The debuggable hardware targets (APU cores, PMU, PL)."""
        board = self.kernel.soc.board
        entries = [DebugTarget(1, f"PS TAP ({board.name})", "Ready")]
        for core in range(board.apu_cores):
            entries.append(
                DebugTarget(2 + core, f"Cortex-A53 #{core}", "Running")
            )
        entries.append(DebugTarget(2 + board.apu_cores, "PMU", "Sleeping"))
        entries.append(DebugTarget(3 + board.apu_cores, "PL", "Ready"))
        return entries

    def render_targets(self) -> str:
        """The ``targets`` console listing."""
        return "\n".join(target.render() for target in self.targets())

    # -- memory access (the system channel) -----------------------------------

    def mrd(self, address: int, count: int = 1) -> list[int]:
        """``mrd <addr> [count]`` — read 32-bit words of physical memory.

        This is the debugger primitive the attack's step 3 rides on;
        it bypasses all process-level access control by construction
        (only the hardened STRICT_DEVMEM configuration refuses).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return self._devmem.read_range(address, count * 4, caller=self.user)

    def render_mrd(self, address: int, count: int = 1) -> str:
        """The console form, e.g. ``61C6D730:   00000000``."""
        words = self.mrd(address, count)
        return "\n".join(
            f"{address + 4 * index:08X}:   {word:08X}"
            for index, word in enumerate(words)
        )

    def mwr(self, address: int, value: int) -> None:
        """``mwr <addr> <value>`` — write one 32-bit word."""
        self._devmem._check_access(self.user)
        self.kernel.soc.write_word(address, value & 0xFFFFFFFF)

    # -- process inspection ------------------------------------------------------

    def pids(self) -> list[int]:
        """All visible process ids."""
        return self.procfs.list_pids(caller=self.user)

    def virtual_address_space(self, pid: int) -> str:
        """The process's maps file — 'virtual address spaces' access."""
        return self.procfs.read_maps(pid, caller=self.user)

    def pagemap_entry(self, pid: int, virtual_address: int) -> PagemapEntry:
        """One decoded pagemap entry — 'pagemaps' access."""
        raw = self.procfs.read_pagemap(
            pid, vpn_of(virtual_address) * ENTRY_SIZE, ENTRY_SIZE,
            caller=self.user,
        )
        return entry_from_bytes(raw)

    def translate(self, pid: int, virtual_address: int) -> int | None:
        """VA -> PA through the pagemap (None if not present)."""
        entry = self.pagemap_entry(pid, virtual_address)
        if not entry.present:
            return None
        return (entry.pfn << 12) | (virtual_address & 0xFFF)
