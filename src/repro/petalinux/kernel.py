"""The PetaLinux kernel twin.

One object owns the board: it allocates physical frames, spawns and
reaps processes, and applies (or, by default, fails to apply) the three
protections whose absence the paper exploits:

1. ``sanitize_policy`` — what happens to a dead process's frames
   (default: nothing; the residue stays in DRAM).
2. ``pagemap_world_readable`` / ``procfs_world_readable`` — whether a
   different user may read a process's pagemap and maps (default: yes;
   this is the debugger-from-another-user-space hole).
3. ``randomization`` — physical/virtual layout randomization
   (default: off; layouts are deterministic and profileable).

The default :class:`KernelConfig` is the vulnerable configuration the
paper measured; each experiment flips exactly the knob it studies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NoSuchProcessError, ProcessStateError
from repro.hw.dpu import DpuCore
from repro.hw.dram import PAGE_SIZE
from repro.hw.soc import ZynqMpSoC
from repro.mmu.address_space import AddressSpace
from repro.mmu.frame_alloc import FrameAllocator, ReusePolicy
from repro.mmu.pagemap import PagemapEntry, absent_entry
from repro.mmu.paging import PAGE_SHIFT
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.xen import XenDeployment
from repro.petalinux.process import (
    DEFAULT_HEAP_BASE,
    HeapArena,
    Process,
    ProcessState,
    ProgramImage,
    layout_process_memory,
)
from repro.petalinux.sanitizer import SanitizePolicy, Sanitizer
from repro.petalinux.users import ROOT, Terminal, User

DEFAULT_RESERVED_FRAMES = 0x60000
"""Frames below this index are kernel-reserved; user allocations start
at physical address 0x6000_0000, putting them in the same PA range the
paper's devmem reads show (0x61c6_d730 and friends)."""

BOOT_MINUTES = 3 * 60 + 51
"""Boot wall-clock (03:51), matching the kworker STIME in Fig. 5."""


@dataclass(frozen=True)
class KernelConfig:
    """Security-relevant kernel policy.  Defaults = the vulnerable board."""

    sanitize_policy: SanitizePolicy = SanitizePolicy.NONE
    scrub_rate_per_tick: int = 64
    pagemap_world_readable: bool = True
    procfs_world_readable: bool = True
    devmem_unrestricted: bool = True
    randomization: LayoutRandomization = field(default_factory=LayoutRandomization)
    allocator_policy: ReusePolicy = ReusePolicy.LIFO
    reserved_frames: int = DEFAULT_RESERVED_FRAMES
    pid_start: int = 1385
    xen: XenDeployment | None = None
    """Optional hypervisor deployment.  ``None`` = bare PetaLinux; a
    deployment with ``dev_mem_passthrough=True`` (the PetaLinux user
    default) partitions memory per domain but enforces nothing on
    /dev/mem — the configuration hole the paper describes."""

    def hardened(self) -> "KernelConfig":
        """The fully-defended variant (every paper hole closed)."""
        return KernelConfig(
            sanitize_policy=SanitizePolicy.ZERO_ON_FREE,
            scrub_rate_per_tick=self.scrub_rate_per_tick,
            pagemap_world_readable=False,
            procfs_world_readable=False,
            devmem_unrestricted=False,
            randomization=LayoutRandomization(physical=True, virtual=True),
            allocator_policy=ReusePolicy.RANDOM,
            reserved_frames=self.reserved_frames,
            pid_start=self.pid_start,
        )


class PetaLinuxKernel:
    """The booted OS instance on one :class:`~repro.hw.soc.ZynqMpSoC`."""

    def __init__(self, soc: ZynqMpSoC, config: KernelConfig | None = None) -> None:
        self.soc = soc
        self.config = config or KernelConfig()
        allocator_policy = self.config.allocator_policy
        if self.config.randomization.physical:
            allocator_policy = ReusePolicy.RANDOM
        # Under Xen, each guest domain owns a disjoint physical window
        # with its own allocator (how domain memory really works); the
        # global allocator then only serves dom0 / kernel threads, and
        # starts above the domain windows so it never crosses them.
        global_base = self.config.reserved_frames
        self._domain_allocators: dict[str, FrameAllocator] = {}
        if self.config.xen is not None:
            for domain in self.config.xen.domains:
                self._domain_allocators[domain.name] = FrameAllocator(
                    total_frames=domain.frame_end,
                    base_frame=domain.frame_start,
                    policy=allocator_policy,
                    seed=self.config.randomization.seed,
                )
                global_base = max(global_base, domain.frame_end)
        self.allocator = FrameAllocator(
            total_frames=soc.dram.capacity // PAGE_SIZE,
            base_frame=global_base,
            policy=allocator_policy,
            seed=self.config.randomization.seed,
        )
        self.sanitizer = Sanitizer(
            dram=soc.dram,
            policy=self.config.sanitize_policy,
            scrub_rate_per_tick=self.config.scrub_rate_per_tick,
        )
        self.dpu = DpuCore(soc)
        from repro.petalinux.rootfs import RootFs

        self.rootfs = RootFs()
        self.clock_ticks = 0
        self._processes: dict[int, Process] = {}
        self._reaped: dict[int, Process] = {}
        self._pids = itertools.count(self.config.pid_start)
        self._boot()

    # -- boot -------------------------------------------------------------

    def _boot(self) -> None:
        """Create init, kthreadd and the standing kernel workers."""
        self._add_static_process(1, 0, ROOT, None, ["/sbin/init"])
        self._add_static_process(2, 0, ROOT, None, ["[kthreadd]"])
        worker_pid = self.next_pid()
        self._add_static_process(worker_pid, 2, ROOT, None, ["[kworker/3:0-events]"])

    def _add_static_process(
        self,
        pid: int,
        ppid: int,
        user: User,
        terminal: Terminal | None,
        cmdline: list[str],
    ) -> Process:
        process = Process(
            pid=pid,
            ppid=ppid,
            user=user,
            terminal=terminal,
            cmdline=cmdline,
            address_space=self._new_address_space(pid),
            start_time=self.wall_clock(),
        )
        self._processes[pid] = process
        return process

    def _allocator_for(self, user: User) -> FrameAllocator:
        """The frame allocator a process of *user* draws from."""
        if self.config.xen is not None:
            domain = self.config.xen.domain_of_user(user)
            if domain is not None:
                return self._domain_allocators[domain.name]
        return self.allocator

    def _new_address_space(self, pid: int, user: User | None = None) -> AddressSpace:
        allocator = self._allocator_for(user) if user is not None else self.allocator
        return AddressSpace(allocator=allocator, memory=self.soc.dram, owner=pid)

    # -- clock ------------------------------------------------------------

    def wall_clock(self) -> str:
        """HH:MM string for the STIME column (1 tick == 1 second)."""
        minutes = (BOOT_MINUTES + self.clock_ticks // 60) % (24 * 60)
        return f"{minutes // 60:02d}:{minutes % 60:02d}"

    def tick(self, ticks: int = 1) -> None:
        """Advance time: scheduler accounting plus the scrubber daemon."""
        if ticks < 0:
            raise ValueError(f"ticks must be non-negative, got {ticks}")
        for _ in range(ticks):
            self.clock_ticks += 1
            self.sanitizer.tick()
            for process in self._processes.values():
                if process.state is ProcessState.RUNNING and process.pid > 2:
                    process.cpu_seconds += 1

    # -- process lifecycle ---------------------------------------------------

    def next_pid(self) -> int:
        """Allocate the next pid."""
        return next(self._pids)

    def spawn(
        self,
        cmdline: list[str],
        user: User,
        terminal: Terminal | None = None,
        image: ProgramImage | None = None,
        ppid: int = 1,
        heap_base: int | None = None,
        device_paths: tuple[str, ...] = (),
    ) -> Process:
        """Create a user process with the standard memory layout.

        Virtual ASLR (when enabled) slides the heap base; the maps file
        reports the slid address, so the paper attack — which reads the
        base from maps — is unaffected, exactly as on the board.
        """
        if not cmdline:
            raise ValueError("cmdline must be non-empty")
        pid = self.next_pid()
        base = heap_base if heap_base is not None else DEFAULT_HEAP_BASE
        base += self.config.randomization.heap_slide(pid)
        address_space = self._new_address_space(pid, user=user)
        program = image or ProgramImage(path=cmdline[0])
        layout_process_memory(
            address_space, program, heap_base=base, device_paths=device_paths
        )
        process = Process(
            pid=pid,
            ppid=ppid,
            user=user,
            terminal=terminal,
            cmdline=list(cmdline),
            address_space=address_space,
            start_time=self.wall_clock(),
        )
        process.heap_arena = HeapArena(process)
        self._processes[pid] = process
        return process

    def exit_process(self, pid: int, exit_code: int = 0) -> None:
        """Terminate *pid*: teardown, sanitize (per policy), free frames.

        After this call the pid is gone from the process table — it no
        longer shows in ``ps -ef`` (paper Fig. 9) — but its frames'
        contents survive in DRAM unless the sanitizer scrubbed them.
        """
        process = self.find_process(pid)
        if not process.is_alive:
            raise ProcessStateError(f"pid {pid} already exited")
        frames = process.address_space.teardown()
        self.sanitizer.on_free(frames)
        # Frames go back to the allocator they came from (the owning
        # domain's, under Xen).
        process.address_space.allocator.free(frames)
        process.state = ProcessState.DEAD
        process.exit_code = exit_code
        del self._processes[pid]
        self._reaped[pid] = process

    def kill(self, pid: int) -> None:
        """SIGKILL semantics: immediate exit with code 137."""
        self.exit_process(pid, exit_code=137)

    # -- queries -----------------------------------------------------------

    def processes(self) -> list[Process]:
        """All live processes, ascending pid."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def find_process(self, pid: int) -> Process:
        """The live process with *pid*; raises ``NoSuchProcessError``."""
        try:
            return self._processes[pid]
        except KeyError:
            raise NoSuchProcessError(pid) from None

    def has_process(self, pid: int) -> bool:
        """Whether *pid* is currently in the process table."""
        return pid in self._processes

    def reaped_process(self, pid: int) -> Process | None:
        """Diagnostic: the Process object of an exited pid.

        Ground truth for the evaluation metrics only — nothing
        OS-visible exposes this (the whole point of the attack is that
        the attacker must recover such information from DRAM residue).
        """
        return self._reaped.get(pid)

    # -- pagemap backend -----------------------------------------------------

    def pagemap_entry(self, pid: int, vpn: int) -> PagemapEntry:
        """The pagemap entry for one virtual page of a live process.

        Frame numbers are converted to *global* PFNs through the SoC
        address map, so ``PFN << 12`` is directly a devmem-able
        physical address — the property the attack's step 2 relies on.
        """
        process = self.find_process(pid)
        pte = process.address_space.page_table.lookup(vpn)
        if pte is None:
            return absent_entry()
        physical = self.soc.dram_frame_to_physical(pte.frame)
        return PagemapEntry(present=True, pfn=physical >> PAGE_SHIFT, exclusive=True)
