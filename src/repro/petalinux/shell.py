"""A login shell on one pseudo-terminal.

This is where the attack's "two terminals" (paper §IV) live: both the
victim and the attacker interact with the board through a
:class:`Shell`.  The shell offers the handful of commands the paper's
figures show — ``ps -ef``, ``devmem``, ``grep`` — plus programmatic
accessors returning structured data, which the attack pipeline prefers
over re-parsing its own console output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.petalinux.devmem import Devmem
from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.procfs import ProcFs
from repro.petalinux.process import Process
from repro.petalinux.users import Terminal


@dataclass(frozen=True)
class PsRow:
    """One structured row of ``ps -ef`` output."""

    uid: str
    pid: int
    ppid: int
    c: int
    stime: str
    tty: str
    time: str
    cmd: str

    def render(self) -> str:
        """Format like procps: whitespace-aligned columns."""
        return (
            f"{self.uid:<10}{self.pid:>7}{self.ppid:>7}{self.c:>3} "
            f"{self.stime:>5} {self.tty:<8}{self.time:>9} {self.cmd}"
        )


@dataclass
class Shell:
    """One user's session on one terminal of the booted board."""

    kernel: PetaLinuxKernel
    terminal: Terminal
    procfs: ProcFs = field(init=False)
    devmem_tool: Devmem = field(init=False)

    def __post_init__(self) -> None:
        self.procfs = ProcFs(self.kernel)
        self.devmem_tool = Devmem(self.kernel)

    @property
    def user(self):
        """The logged-in user (the terminal's owner)."""
        return self.terminal.user

    # -- ps ---------------------------------------------------------------

    @staticmethod
    def _format_time(cpu_seconds: int) -> str:
        hours, remainder = divmod(cpu_seconds, 3600)
        minutes, seconds = divmod(remainder, 60)
        return f"{hours:02d}:{minutes:02d}:{seconds:02d}"

    def ps_rows(self) -> list[PsRow]:
        """Structured ``ps -ef``: every process, ascending pid.

        Process *visibility* is not restricted in any configuration
        (see :meth:`ProcFs.list_pids`); what the hardened kernels
        protect is memory, not the process list.
        """
        rows = []
        for process in self.kernel.processes():
            rows.append(
                PsRow(
                    uid=process.user.name,
                    pid=process.pid,
                    ppid=process.ppid,
                    c=0,
                    stime=process.start_time,
                    tty=process.tty_name(),
                    time=self._format_time(process.cpu_seconds),
                    cmd=process.command,
                )
            )
        return rows

    def ps_ef(self) -> str:
        """The full ``ps -ef`` text, header included."""
        header = (
            f"{'UID':<10}{'PID':>7}{'PPID':>7}{'C':>3} "
            f"{'STIME':>5} {'TTY':<8}{'TIME':>9} CMD"
        )
        return "\n".join([header] + [row.render() for row in self.ps_rows()])

    def pgrep(self, pattern: str) -> list[int]:
        """pids whose command line contains *pattern*."""
        return [row.pid for row in self.ps_rows() if pattern in row.cmd]

    # -- process control ------------------------------------------------------

    def run(
        self,
        cmdline: list[str],
        device_paths: tuple[str, ...] = ("/dev/dri/renderD128",),
    ) -> Process:
        """Launch a program from this terminal (like typing ``./prog``).

        The default device mapping mirrors the DRM render node the
        Vitis runtime opens (visible in the paper's Fig. 7 maps
        excerpt).
        """
        return self.kernel.spawn(
            cmdline,
            user=self.user,
            terminal=self.terminal,
            device_paths=device_paths,
        )

    # -- the figure commands ------------------------------------------------------

    def cat_maps(self, pid: int) -> str:
        """``cat /proc/<pid>/maps`` (the paper uses vim; same bytes)."""
        return self.procfs.read_maps(pid, caller=self.user)

    def devmem(self, address: int, width_bits: int = 32) -> str:
        """``devmem <address>`` — returns the printed line."""
        return self.devmem_tool.render(address, caller=self.user, width_bits=width_bits)

    @staticmethod
    def grep(pattern: str, text: str) -> list[str]:
        """Plain-substring ``grep`` over command output."""
        return [line for line in text.splitlines() if pattern in line]
