"""Processes and the in-process heap arena.

A :class:`Process` owns an address space laid out like aarch64
PetaLinux: text, data, heap (at the paper's ``0xaaaa_...`` range),
optional device mappings, and the stack near ``0xffff_...``.

:class:`HeapArena` is the deterministic bump allocator standing in for
glibc malloc on the board.  Its determinism is load-bearing for the
paper: the same program processing the same model always places the
input image at the same heap offset, which is what makes the offline
profiling step transferable to the victim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProcessStateError, VmaError
from repro.mmu.address_space import AddressSpace, VmaKind
from repro.mmu.paging import PAGE_SIZE, align_up
from repro.petalinux.users import Terminal, User

TEXT_BASE = 0xAAAA_EE75_0000
"""Load address of the (PIE) executable under the deterministic layout."""

DEFAULT_HEAP_BASE = 0xAAAA_EE77_5000
"""Heap start — chosen to match the paper's Fig. 7 exactly."""

STACK_TOP = 0xFFFF_D000_0000
DEFAULT_STACK_SIZE = 1024 * 1024

DEVICE_MMAP_BASE = 0xFFFF_B13B_5000
"""Where device mappings land (the paper's Fig. 7 shows
``/dev/dri/renderD128`` at this address)."""


class ProcessState(enum.Enum):
    """Lifecycle states, as ``ps`` would report them."""

    RUNNING = "R"
    SLEEPING = "S"
    ZOMBIE = "Z"
    DEAD = "X"


@dataclass(frozen=True)
class ProgramImage:
    """Static description of an executable the kernel can spawn."""

    path: str
    text_size: int = 0x20000
    data_size: int = 0x5000
    initial_heap: int = PAGE_SIZE

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("program path must be non-empty")
        if self.text_size <= 0 or self.data_size <= 0:
            raise ValueError("text and data sizes must be positive")


@dataclass
class Process:
    """One live (or zombie) process."""

    pid: int
    ppid: int
    user: User
    terminal: Terminal | None
    cmdline: list[str]
    address_space: AddressSpace
    start_time: str = "12:33"
    state: ProcessState = ProcessState.RUNNING
    cpu_seconds: int = 0
    exit_code: int | None = None
    heap_arena: "HeapArena | None" = field(default=None, repr=False)

    @property
    def command(self) -> str:
        """The CMD column of ``ps -ef``."""
        return " ".join(self.cmdline)

    @property
    def is_alive(self) -> bool:
        """Whether the process still holds its memory."""
        return self.state in (ProcessState.RUNNING, ProcessState.SLEEPING)

    def require_alive(self) -> None:
        """Raise unless the process can still execute."""
        if not self.is_alive:
            raise ProcessStateError(
                f"pid {self.pid} is {self.state.name}, not running"
            )

    def tty_name(self) -> str:
        """TTY column: the pty name, or ``?`` for kernel threads."""
        return self.terminal.name if self.terminal else "?"


class HeapArena:
    """Deterministic bump allocator over the process heap.

    Allocations are 16-byte aligned and never freed individually —
    the victim application allocates model, weights and image buffers
    once and exits, which is exactly the pattern the paper profiles.
    Growth goes through ``brk`` so the kernel maps fresh frames.
    """

    ALIGNMENT = 16

    def __init__(self, process: Process, base: int | None = None) -> None:
        heap = process.address_space.heap()
        if heap is None:
            raise VmaError(f"pid {process.pid} has no heap")
        self._process = process
        self._cursor = base if base is not None else heap.start
        if not heap.contains(self._cursor) and self._cursor != heap.start:
            raise VmaError(f"arena base {self._cursor:#x} outside heap")

    @property
    def cursor(self) -> int:
        """Next allocation address (before alignment)."""
        return self._cursor

    def allocate(self, size: int) -> int:
        """Reserve *size* bytes; returns the virtual address.

        Grows the heap via ``brk`` when the arena runs past the current
        break — mirroring glibc's main-arena behaviour for the large
        allocations the Vitis runtime makes.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self._process.require_alive()
        address = align_up_to(self._cursor, self.ALIGNMENT)
        new_cursor = address + size
        heap = self._process.address_space.heap()
        assert heap is not None
        if new_cursor > heap.end:
            self._process.address_space.brk(new_cursor)
        self._cursor = new_cursor
        return address

    def write(self, address: int, data: bytes) -> None:
        """Store bytes at an arena address (through the page table)."""
        self._process.require_alive()
        self._process.address_space.write_virtual(address, data)

    def read(self, address: int, length: int) -> bytes:
        """Load bytes from an arena address."""
        return self._process.address_space.read_virtual(address, length)

    def allocate_and_write(self, data: bytes) -> int:
        """Reserve space for *data*, store it, return its address."""
        address = self.allocate(len(data))
        self.write(address, data)
        return address


def align_up_to(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def layout_process_memory(
    address_space: AddressSpace,
    image: ProgramImage,
    heap_base: int = DEFAULT_HEAP_BASE,
    text_base: int = TEXT_BASE,
    stack_size: int = DEFAULT_STACK_SIZE,
    device_paths: tuple[str, ...] = (),
) -> None:
    """Build the standard VMA layout for a freshly spawned process.

    Text and data are placed below the heap; device mappings (e.g. the
    DRM render node the Vitis runtime opens) land in the high mmap
    area; the stack sits just under ``STACK_TOP``.
    """
    data_base = text_base + align_up(image.text_size)
    if data_base + align_up(image.data_size) > heap_base:
        raise VmaError(
            f"text+data [{text_base:#x}..) collide with heap base {heap_base:#x}"
        )
    address_space.add_vma(
        text_base, image.text_size, "r-xp", VmaKind.TEXT,
        name=image.path, dev="b3:02", inode=4321,
    )
    address_space.add_vma(
        data_base, image.data_size, "rw-p", VmaKind.DATA,
        name=image.path, file_offset=align_up(image.text_size),
        dev="b3:02", inode=4321,
    )
    address_space.create_heap(heap_base, image.initial_heap)
    mmap_cursor = DEVICE_MMAP_BASE
    for path in device_paths:
        vma = address_space.add_vma(
            mmap_cursor, 0x100000, "rw-p", VmaKind.DEVICE, name=path,
            dev="00:06", inode=180,
        )
        mmap_cursor = vma.end + PAGE_SIZE
    address_space.add_vma(
        STACK_TOP - stack_size, stack_size, "rw-p", VmaKind.STACK, name="[stack]"
    )
