"""The board's root filesystem (the SD-card image contents).

The PetaLinux image on the ZCU104's SD card carries the Vitis AI
runtime and the model library under
``/usr/share/vitis_ai_library/models/``.  Two facts about that tree
matter to the attack:

- the victim application *reads the xmodel file from disk into its
  heap* — that is how the model-name strings end up in DRAM; and
- the library is **world-readable**, which is what lets the adversary
  profile the exact same models offline (adversary's access, paper
  §II).

The filesystem is a simple in-memory tree with owner/world-readable
bits — enough to express both facts and to let hardened configurations
experiment with restricting library access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OsError, PermissionDeniedError
from repro.petalinux.users import User


class FileNotFoundOsError(OsError):
    """The path does not exist (``ENOENT``)."""

    def __init__(self, path: str) -> None:
        self.path = path
        super().__init__(f"no such file or directory: {path}")


def normalize_path(path: str) -> str:
    """Collapse a POSIX path to its canonical absolute form.

    Rejects relative paths — every access on the board uses absolute
    paths (the shell has no real CWD in the simulation).
    """
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute, got {path!r}")
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


@dataclass
class FileNode:
    """One regular file."""

    content: bytes
    owner_uid: int = 0
    world_readable: bool = True

    def readable_by(self, user: User) -> bool:
        """Whether *user* may read this file."""
        return self.world_readable or user.is_root or user.uid == self.owner_uid


@dataclass
class RootFs:
    """In-memory file tree: path -> :class:`FileNode`.

    Directories are implicit (a path is a directory if any file lives
    under it), which matches how little the attack cares about
    directory metadata.
    """

    _files: dict[str, FileNode] = field(default_factory=dict)

    def write_file(
        self,
        path: str,
        content: bytes,
        owner_uid: int = 0,
        world_readable: bool = True,
    ) -> None:
        """Create or replace a file."""
        self._files[normalize_path(path)] = FileNode(
            content=bytes(content),
            owner_uid=owner_uid,
            world_readable=world_readable,
        )

    def read_file(self, path: str, caller: User) -> bytes:
        """Read a file, enforcing the readable bit."""
        node = self._lookup(path)
        if not node.readable_by(caller):
            raise PermissionDeniedError(
                f"user {caller.name!r} may not read {path}"
            )
        return node.content

    def _lookup(self, path: str) -> FileNode:
        normalized = normalize_path(path)
        try:
            return self._files[normalized]
        except KeyError:
            raise FileNotFoundOsError(normalized) from None

    def exists(self, path: str) -> bool:
        """Whether *path* is a file or an (implicit) directory."""
        normalized = normalize_path(path)
        if normalized in self._files:
            return True
        prefix = normalized.rstrip("/") + "/"
        return any(name.startswith(prefix) for name in self._files)

    def is_dir(self, path: str) -> bool:
        """Whether *path* is an implicit directory."""
        return self.exists(path) and normalize_path(path) not in self._files

    def list_dir(self, path: str) -> list[str]:
        """Immediate children names of a directory, sorted."""
        normalized = normalize_path(path)
        if not self.is_dir(normalized) and normalized != "/":
            raise FileNotFoundOsError(normalized)
        prefix = normalized.rstrip("/") + "/"
        children = set()
        for name in self._files:
            if name.startswith(prefix):
                remainder = name[len(prefix):]
                children.add(remainder.split("/", 1)[0])
        return sorted(children)

    def file_size(self, path: str) -> int:
        """Size in bytes of a regular file."""
        return len(self._lookup(path).content)

    def set_world_readable(self, path: str, world_readable: bool) -> None:
        """chmod the file's world bit (hardening experiments)."""
        self._lookup(path).world_readable = world_readable

    def file_count(self) -> int:
        """Number of regular files in the tree."""
        return len(self._files)


def install_vitis_ai(rootfs: RootFs, input_hw: int = 32) -> list[str]:
    """Install the Vitis AI runtime and the model library on *rootfs*.

    Mirrors the paper's setup step 3 ("we installed the Vitis AI
    runtime on the target board, which provides various pre-built
    machine learning models").  Returns the installed xmodel paths.
    """
    from repro.vitis.zoo import MODEL_NAMES, build_model, model_install_path

    rootfs.write_file(
        "/usr/lib/libvart-runner.so.3.5", b"\x7fELF\x02\x01\x01" + b"\x00" * 57
    )
    rootfs.write_file(
        "/usr/lib/libxir.so.3.5", b"\x7fELF\x02\x01\x01" + b"\x00" * 57
    )
    installed = []
    for name in MODEL_NAMES:
        path = model_install_path(name)
        rootfs.write_file(path, build_model(name, input_hw=input_hw).serialize())
        installed.append(path)
    return installed
