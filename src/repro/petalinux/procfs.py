"""The ``/proc`` filesystem facade.

Every read takes the *calling user*, because the cross-user readability
of these files is one of the paper's two exploited holes.  With the
default (vulnerable) kernel config any user reads any process's
``maps``/``pagemap``/``cmdline``/``status``; with the hardened config
the same calls raise :class:`~repro.errors.PermissionDeniedError`
unless the caller owns the process or is root — which is what a
stock server-grade Linux would do (pagemap has required
``CAP_SYS_ADMIN`` for the PFN field since 4.0).

``read_pagemap`` is deliberately pread-style (offset + length), like
the real sparse file: one 8-byte entry per virtual page, indexed by
VPN.  The attacker-side code seeks to ``(va >> 12) * 8`` exactly as
the paper's C helper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PermissionDeniedError
from repro.mmu.pagemap import ENTRY_SIZE, entry_to_bytes
from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.process import Process
from repro.petalinux.users import User


@dataclass
class ProcFs:
    """Read-side of ``/proc`` for one booted kernel."""

    kernel: PetaLinuxKernel

    # -- permission model ---------------------------------------------------

    def _check_procfs_access(self, caller: User, process: Process) -> None:
        if self.kernel.config.procfs_world_readable:
            return
        if caller.is_root or caller.uid == process.user.uid:
            return
        raise PermissionDeniedError(
            f"user {caller.name!r} may not read /proc/{process.pid} "
            f"(owned by {process.user.name!r})"
        )

    def _check_pagemap_access(self, caller: User, process: Process) -> None:
        self._check_procfs_access(caller, process)
        if self.kernel.config.pagemap_world_readable:
            return
        if caller.is_root:
            return
        raise PermissionDeniedError(
            f"user {caller.name!r} may not read /proc/{process.pid}/pagemap "
            "(PFN disclosure requires CAP_SYS_ADMIN)"
        )

    # -- files ---------------------------------------------------------------

    def read_maps(self, pid: int, caller: User) -> str:
        """``/proc/<pid>/maps`` — the text the paper's Fig. 7 shows."""
        process = self.kernel.find_process(pid)
        self._check_procfs_access(caller, process)
        return process.address_space.render_maps()

    def read_cmdline(self, pid: int, caller: User) -> bytes:
        """``/proc/<pid>/cmdline`` — NUL-separated argv."""
        process = self.kernel.find_process(pid)
        self._check_procfs_access(caller, process)
        return b"\x00".join(arg.encode() for arg in process.cmdline) + b"\x00"

    def read_status(self, pid: int, caller: User) -> str:
        """``/proc/<pid>/status`` — the subset of fields tools consume."""
        process = self.kernel.find_process(pid)
        self._check_procfs_access(caller, process)
        name = process.cmdline[0].rsplit("/", 1)[-1]
        rss_kib = process.address_space.resident_bytes() // 1024
        return (
            f"Name:\t{name}\n"
            f"State:\t{process.state.value} ({process.state.name.lower()})\n"
            f"Pid:\t{process.pid}\n"
            f"PPid:\t{process.ppid}\n"
            f"Uid:\t{process.user.uid}\t{process.user.uid}\t"
            f"{process.user.uid}\t{process.user.uid}\n"
            f"VmRSS:\t{rss_kib} kB\n"
        )

    def read_pagemap(self, pid: int, offset: int, length: int, caller: User) -> bytes:
        """pread on ``/proc/<pid>/pagemap``.

        *offset* and *length* are in bytes and must be multiples of the
        8-byte entry size, matching how the file behaves (short,
        unaligned reads fail with EINVAL on the real kernel too).
        """
        process = self.kernel.find_process(pid)
        self._check_pagemap_access(caller, process)
        if offset % ENTRY_SIZE or length % ENTRY_SIZE:
            raise ValueError(
                f"pagemap reads must be {ENTRY_SIZE}-byte aligned "
                f"(offset={offset}, length={length})"
            )
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        first_vpn = offset // ENTRY_SIZE
        out = bytearray()
        for vpn in range(first_vpn, first_vpn + length // ENTRY_SIZE):
            out += entry_to_bytes(self.kernel.pagemap_entry(pid, vpn))
        return bytes(out)

    def list_pids(self, caller: User) -> list[int]:
        """The numeric /proc entries.

        pid *visibility* is world-readable even on hardened systems
        without ``hidepid``; we keep it visible in all configs so step
        1 of the attack (polling ``ps``) always works — the hardened
        configs defeat the later steps instead.
        """
        del caller
        return sorted(process.pid for process in self.kernel.processes())
