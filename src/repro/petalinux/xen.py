"""The Xen hypervisor layer — and why it didn't help.

Paper §I: "in Xilinx FPGAs, a hypervisor like Xen manages isolation
between multiple processes running on the FPGA.  However, ... page
tables are only accessible to the operating system ... We find that,
unlike in CPUs, a Xilinx debugger has access to memory page tables.
This is because Xen is not managed by the host OS, but rather
configured by the user using PetaLinux.  We find this to be a gaping
security hole."

The model here captures the *configuration* failure: PetaLinux offers
Xen as a selectable component, and the user-generated default
configuration passes ``/dev/mem`` straight through to the guest
domains (``dev_mem_passthrough=True``) — so the hypervisor is present
but enforces nothing, which is what the paper observed.  A correctly
administered deployment pins each domain to a physical window and
rejects cross-domain physical reads; the defense benchmarks show that
this, unlike the passthrough default, stops the extraction step.

Usage — the same read under the misconfigured and the pinned config:

>>> from repro.errors import PermissionDeniedError
>>> from repro.petalinux.users import User
>>> from repro.petalinux.xen import two_guest_deployment
>>> attacker = User("attacker", 1001)
>>> victim_frame = 0x68000                    # inside domU-victim
>>> passthrough = two_guest_deployment()      # the PetaLinux default
>>> passthrough.check_physical_access(attacker, victim_frame)  # no-op!
>>> pinned = two_guest_deployment(dev_mem_passthrough=False)
>>> pinned.check_physical_access(attacker, 0x60000)  # own domain: fine
>>> try:
...     pinned.check_physical_access(attacker, victim_frame)
... except PermissionDeniedError:
...     print("cross-domain read rejected")
cross-domain read rejected
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PermissionDeniedError
from repro.petalinux.users import User


@dataclass(frozen=True)
class XenDomain:
    """One guest domain: who belongs to it, which frames it owns."""

    name: str
    uids: frozenset[int]
    frame_start: int
    frame_end: int

    def __post_init__(self) -> None:
        if self.frame_end <= self.frame_start:
            raise ValueError(
                f"domain {self.name!r} has empty frame range "
                f"[{self.frame_start}, {self.frame_end})"
            )

    def owns_user(self, user: User) -> bool:
        """Whether *user* runs inside this domain."""
        return user.uid in self.uids

    def owns_frame(self, frame: int) -> bool:
        """Whether *frame* belongs to this domain's window."""
        return self.frame_start <= frame < self.frame_end


@dataclass
class XenDeployment:
    """A Xen configuration as generated through PetaLinux.

    ``dev_mem_passthrough=True`` is the user-default the paper found:
    guests keep raw physical access and the domain windows are
    decorative.  Set it to ``False`` for a properly administered
    deployment that confines each user's physical reads to their own
    domain (dom0/root is never confined).
    """

    domains: list[XenDomain] = field(default_factory=list)
    dev_mem_passthrough: bool = True

    def __post_init__(self) -> None:
        ordered = sorted(self.domains, key=lambda domain: domain.frame_start)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.frame_end > later.frame_start:
                raise ValueError(
                    f"domains {earlier.name!r} and {later.name!r} overlap"
                )

    def domain_of_user(self, user: User) -> XenDomain | None:
        """The domain *user* runs in, if any."""
        for domain in self.domains:
            if domain.owns_user(user):
                return domain
        return None

    def domain_of_frame(self, frame: int) -> XenDomain | None:
        """The domain owning *frame*, if any."""
        for domain in self.domains:
            if domain.owns_frame(frame):
                return domain
        return None

    def check_physical_access(self, user: User, frame: int) -> None:
        """Enforce domain confinement for one physical-frame access.

        No-op under passthrough (the vulnerable default) and for root
        (dom0).  Otherwise the caller must have a domain and the frame
        must be inside it.
        """
        if self.dev_mem_passthrough or user.is_root:
            return
        domain = self.domain_of_user(user)
        if domain is None:
            raise PermissionDeniedError(
                f"user {user.name!r} belongs to no Xen domain"
            )
        if not domain.owns_frame(frame):
            owner = self.domain_of_frame(frame)
            owner_name = owner.name if owner else "unassigned"
            raise PermissionDeniedError(
                f"Xen: domain {domain.name!r} may not access frame "
                f"{frame:#x} (owner: {owner_name})"
            )

    def describe(self) -> str:
        """Human-readable deployment summary."""
        mode = "passthrough /dev/mem" if self.dev_mem_passthrough else "confined"
        lines = [f"Xen deployment ({mode}):"]
        for domain in self.domains:
            lines.append(
                f"  {domain.name}: uids {sorted(domain.uids)}, frames "
                f"[{domain.frame_start:#x}, {domain.frame_end:#x})"
            )
        return "\n".join(lines)


def two_guest_deployment(
    attacker_uid: int = 1001,
    victim_uid: int = 1002,
    base_frame: int = 0x60000,
    frames_per_domain: int = 0x8000,
    dev_mem_passthrough: bool = True,
) -> XenDeployment:
    """The evaluation deployment: two guest domains side by side.

    The default keeps /dev/mem passthrough on — the PetaLinux-generated
    configuration the paper attacked.
    """
    return XenDeployment(
        domains=[
            XenDomain(
                name="domU-attacker",
                uids=frozenset({attacker_uid}),
                frame_start=base_frame,
                frame_end=base_frame + frames_per_domain,
            ),
            XenDomain(
                name="domU-victim",
                uids=frozenset({victim_uid}),
                frame_start=base_frame + frames_per_domain,
                frame_end=base_frame + 2 * frames_per_domain,
            ),
        ],
        dev_mem_passthrough=dev_mem_passthrough,
    )
