"""Layout randomization knobs — the paper's third missing defense.

The paper's conclusion: PetaLinux "does not use any kind of
randomization in physical page layout.  This allows an attacker to
learn about input or output data offsets, simply by learning from
running the same program with its own input data."

Two independent randomizations are modelled:

- **physical** — the frame allocator hands out random free frames
  instead of deterministic first-fit.  This defeats the *profiled
  physical address* attack variant (where the attacker skips the
  pagemap entirely), but not the pagemap-assisted paper attack.
- **virtual** — the heap base gets a per-process random slide.  This
  defeats attack variants that guess absolute VAs, but not the paper
  attack either, because ``/proc/<pid>/maps`` leaks the slid base.

Both being ineffective against the full paper attack (only sanitization
or pagemap lockdown stop it) is itself a finding the defense benchmark
reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mmu.paging import PAGE_SIZE


@dataclass(frozen=True)
class LayoutRandomization:
    """Configuration of the two randomization defenses."""

    physical: bool = False
    virtual: bool = False
    seed: int = 0
    virtual_entropy_pages: int = 0x10000
    """Heap slide range in pages (16 bits of entropy by default,
    matching aarch64 ``mmap_rnd_bits`` ballpark)."""

    def heap_slide(self, pid: int) -> int:
        """Per-process heap slide in bytes (0 when virtual ASLR is off).

        Deterministic in (seed, pid) so experiments are replayable.
        """
        if not self.virtual:
            return 0
        rng = random.Random((self.seed << 20) ^ pid)
        return rng.randrange(self.virtual_entropy_pages) * PAGE_SIZE

    def describe(self) -> str:
        """Short human-readable summary for reports."""
        parts = []
        parts.append("physical ASLR: " + ("on" if self.physical else "off"))
        parts.append("virtual ASLR: " + ("on" if self.virtual else "off"))
        return ", ".join(parts)
