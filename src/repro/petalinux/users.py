"""Users and pseudo-terminals.

The attack is a *cross-user-space* attack (paper contribution 1): the
attacker logs into a second terminal as a different user and still
reads the victim's procfs artifacts.  Users and terminals are therefore
first-class in the simulation, and every kernel entry point that the
paper abuses takes the calling user so that the hardened configuration
can enforce the boundary the insecure default lacks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class User:
    """One system account."""

    name: str
    uid: int

    def __post_init__(self) -> None:
        if self.uid < 0:
            raise ValueError(f"uid must be non-negative, got {self.uid}")

    @property
    def is_root(self) -> bool:
        """Whether this account bypasses all isolation checks."""
        return self.uid == 0


ROOT = User("root", 0)
PETALINUX = User("petalinux", 1000)


@dataclass(frozen=True)
class Terminal:
    """A pseudo-terminal a user is logged into (``pts/0``, ``pts/1``...).

    The paper runs the victim on one pty and the attacker on another;
    ``ps -ef`` output shows which is which in the TTY column.
    """

    name: str
    user: User

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("terminal name must be non-empty")


def default_terminals() -> list[Terminal]:
    """The two-terminal setup from the paper's §IV.

    ``pts/0`` is the attacker's login, ``pts/1`` the victim's — both
    regular (non-root) accounts on the single-tenant board.
    """
    attacker = User("attacker", 1001)
    victim = User("victim", 1002)
    return [Terminal("pts/0", attacker), Terminal("pts/1", victim)]
