"""The ``devmem`` tool — step 3's physical-memory read primitive.

``devmem`` (from busybox) mmaps ``/dev/mem`` and reads one word at a
given physical address.  On the PetaLinux image the device node is
accessible to the logged-in user, which is the third ingredient of the
attack.  The hardened configuration (``devmem_unrestricted=False``)
models a build with ``CONFIG_STRICT_DEVMEM`` + proper node permissions:
only root may read, and the attack's extraction step dies with
``PermissionDeniedError``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PermissionDeniedError
from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.users import User


@dataclass
class Devmem:
    """``devmem <address> [width]`` against one booted kernel."""

    kernel: PetaLinuxKernel

    def _check_access(self, caller: User) -> None:
        if self.kernel.config.devmem_unrestricted or caller.is_root:
            return
        raise PermissionDeniedError(
            f"user {caller.name!r} may not open /dev/mem (STRICT_DEVMEM)"
        )

    def _check_xen(self, caller: User, address: int, length: int) -> None:
        """Enforce hypervisor domain confinement, page by page.

        A no-op without Xen and under the passthrough default — the
        hole the paper describes is exactly that this check does not
        happen on the PetaLinux-generated configuration.
        """
        deployment = self.kernel.config.xen
        if deployment is None:
            return
        from repro.mmu.paging import PAGE_SHIFT, PAGE_SIZE

        first_frame = address >> PAGE_SHIFT
        last_frame = (address + max(length - 1, 0)) >> PAGE_SHIFT
        for frame in range(first_frame, last_frame + 1):
            deployment.check_physical_access(caller, frame)

    def read(self, address: int, caller: User, width_bits: int = 32) -> int:
        """Read one word at physical *address* — ``devmem 0x61c6d730``.

        Raises :class:`~repro.errors.BusError` for addresses that
        decode to nothing, like a real stray /dev/mem access would
        fault.
        """
        self._check_access(caller)
        if width_bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported width {width_bits}")
        self._check_xen(caller, address, width_bits // 8)
        return self.kernel.soc.read_word(address, width_bits // 8)

    def read_range(
        self, start: int, length: int, caller: User, word_bits: int = 32
    ) -> list[int]:
        """The automated loop the paper runs: one read per word.

        Equivalent to invoking ``devmem`` at ``start``, ``start+4``,
        ... across *length* bytes, which is exactly what the authors'
        automation does over the harvested physical ranges.
        """
        self._check_access(caller)
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self._check_xen(caller, start, length)
        word_bytes = word_bits // 8
        return [
            self.kernel.soc.read_word(start + offset, word_bytes)
            for offset in range(0, length, word_bytes)
        ]

    def read_bytes(self, start: int, length: int, caller: User) -> bytes:
        """Bulk byte read (used by benches to skip per-word overhead)."""
        self._check_access(caller)
        self._check_xen(caller, start, length)
        return self.kernel.soc.read_physical(start, length)

    def read_bytes_into(
        self, start: int, caller: User, out: memoryview
    ) -> None:
        """Bulk byte read filling *out* in place (``len(out)`` bytes).

        The zero-copy twin of :meth:`read_bytes`: identical access and
        Xen checks, but the SoC copies device pages straight into the
        caller's buffer — the campaign scraper points this at a slice
        of its pooled extraction buffer.
        """
        self._check_access(caller)
        self._check_xen(caller, start, len(out))
        self.kernel.soc.read_physical_into(start, out)

    def render(self, address: int, caller: User, width_bits: int = 32) -> str:
        """The exact console line ``devmem`` prints (paper Fig. 10)."""
        value = self.read(address, caller, width_bits)
        return f"0x{value:0{width_bits // 4}X}"
