"""PetaLinux software twin: kernel, processes, procfs, shell tools."""

from repro.petalinux.users import ROOT, Terminal, User
from repro.petalinux.process import HeapArena, Process, ProcessState, ProgramImage
from repro.petalinux.sanitizer import SanitizePolicy, Sanitizer
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.kernel import KernelConfig, PetaLinuxKernel
from repro.petalinux.procfs import ProcFs
from repro.petalinux.devmem import Devmem
from repro.petalinux.shell import Shell

__all__ = [
    "ROOT",
    "Terminal",
    "User",
    "HeapArena",
    "Process",
    "ProcessState",
    "ProgramImage",
    "SanitizePolicy",
    "Sanitizer",
    "LayoutRandomization",
    "KernelConfig",
    "PetaLinuxKernel",
    "ProcFs",
    "Devmem",
    "Shell",
]
