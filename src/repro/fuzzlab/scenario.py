"""Fuzz scenarios — one sampled campaign world, fully serializable.

A :class:`Scenario` is everything the fuzzer decided about one world:
fleet geometry, victim mix and lifetimes, allocator-churning knobs
(wave size, tenancy, corruption), the hardening profile the fleet
boots, executor placement, where the injected crash lands, and how the
dump-analysis oracles slice what was scraped.  It is deliberately a
superset of :class:`~repro.campaign.schedule.CampaignSpec`: the spec
describes the campaign, the scenario also describes how the *harness*
exercises it (interrupt point, resume placement, carve window, the
distributed-fabric drill's worker count, crash point, and transport
chaos — connection drops and partitions — planted fault).

Two properties carry the whole fuzzlab design:

- **determinism** — :class:`ScenarioGenerator` derives every scenario
  from ``(generator seed, scenario_id)`` alone, so the same seed
  always yields the same scenario stream, on any machine;
- **replayability** — a scenario round-trips losslessly through
  :func:`scenario_to_dict` / :func:`scenario_from_dict`, which is what
  lets a shrunk failure be committed as a JSON seed and re-run by
  ``repro fuzz replay`` forever after.

>>> first = ScenarioGenerator(seed=0).generate(1)[0]
>>> first == scenario_from_dict(scenario_to_dict(first))
True
>>> ScenarioGenerator(seed=0).generate(3) == ScenarioGenerator(seed=0).generate(3)
True
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace

from repro.campaign.schedule import CampaignSpec
from repro.defense.profiles import defense_profile
from repro.vitis.zoo import MODEL_NAMES

EXECUTORS = ("inprocess", "multiprocess")
"""Board placements the fuzzer samples (``auto`` is just a policy over
these two, so fuzzing the concrete ones covers it)."""

PROFILE_POOL = (
    "none",
    "none",
    "zero_on_free",
    "scrub_pool",
    "aslr",
    "pinned_xen",
    "passthrough_xen",
    "scrub_pool+aslr",
    "zero_on_free+pinned_xen",
    "full",
)
"""Hardening profiles a generated fleet may boot (``none`` is weighted
double: the undefended world is where most attack paths live)."""

CARVE_WINDOWS = (16, 32, 48, 256, 300, 1024)
"""Cartographer window sizes, deliberately including non-powers-of-two
and the minimum legal window."""

_SEED_STRIDE = 1_000_003
"""Prime stride mixing the generator seed with the scenario id."""


@dataclass(frozen=True)
class Scenario:
    """One sampled campaign world plus how the harness drives it."""

    scenario_id: int
    seed: int
    """Campaign scheduler seed — drives model/image/board assignment."""
    boards: int
    victims: int
    tenants_per_board: int
    wave_size: int
    model_mix: tuple[str, ...]
    board_names: tuple[str, ...]
    input_hw: int
    corruption_fraction: float
    coalesce_reads: bool
    """Primary extraction mode; the extraction-equivalence oracle runs
    the opposite mode and demands identical dumps."""
    executor: str
    processes: int | None
    resume_executor: str
    """Executor of the post-crash resume — may differ from *executor*,
    pinning the cross-executor half of the determinism contract."""
    interrupt_after: int
    """Journaled outcomes before the injected crash (clamped to
    ``[1, victims]`` by construction)."""
    defense_profile: str
    scrape_delay_ticks: int
    carve_window: int
    analysis_cap: int
    """Dump bytes the analysis oracles look at (reference
    implementations are per-byte Python loops; capping keeps a fuzz
    run's cost proportional to its budget, not its dump sizes)."""
    planted_fault: str | None = None
    """Name of a deliberate world corruption (see
    :data:`repro.fuzzlab.runner.PLANTED_FAULTS`) used to prove the
    oracles, shrinker, and replay lane actually catch failures.
    ``None`` for every organically generated scenario."""
    fabric_workers: int = 1
    """Concurrent distributed-fabric workers the runner throws at the
    coordinator for the ``fabric_identity`` drill (threads racing real
    claims over a real socket)."""
    fabric_kill_after_waves: int | None = None
    """Scripted worker death for the fabric drill: the first worker
    dies after shipping this many waves (``0`` dies mid-wave, dumps
    uploaded but outcomes never sent), its lease expires on the manual
    clock, and the shard re-issues.  ``None`` = nobody dies."""
    fabric_drop_after_ops: int | None = None
    """Transport chaos for the fabric drill: a
    :class:`~repro.campaign.runtime.netchaos.FlakyProxy` fronts the
    coordinator and cuts the connection on every *N*-th proxied
    request, forcing workers through their reconnect-and-replay path.
    ``None`` = a clean wire."""
    fabric_partition_ticks: int = 0
    """Full-partition rounds for the fabric drill: the proxy refuses
    all traffic for this many drain rounds (workers exhaust their
    retry budgets and give up cleanly, leases expire) before healing.
    ``0`` = never partitioned."""

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTORS}"
            )
        if self.resume_executor not in EXECUTORS:
            raise ValueError(
                f"unknown resume_executor {self.resume_executor!r}; "
                f"expected one of {EXECUTORS}"
            )
        if not 1 <= self.interrupt_after <= self.victims:
            raise ValueError(
                f"interrupt_after must be in [1, victims={self.victims}], "
                f"got {self.interrupt_after}"
            )
        if self.analysis_cap < 256:
            raise ValueError(
                f"analysis_cap must be >= 256 bytes, got {self.analysis_cap}"
            )
        if self.fabric_workers < 1:
            raise ValueError(
                f"fabric_workers must be >= 1, got {self.fabric_workers}"
            )
        if (
            self.fabric_kill_after_waves is not None
            and self.fabric_kill_after_waves < 0
        ):
            raise ValueError(
                f"fabric_kill_after_waves must be >= 0 or None, got "
                f"{self.fabric_kill_after_waves}"
            )
        if (
            self.fabric_drop_after_ops is not None
            and self.fabric_drop_after_ops < 1
        ):
            raise ValueError(
                f"fabric_drop_after_ops must be >= 1 or None, got "
                f"{self.fabric_drop_after_ops}"
            )
        if self.fabric_partition_ticks < 0:
            raise ValueError(
                f"fabric_partition_ticks must be >= 0, got "
                f"{self.fabric_partition_ticks}"
            )
        defense_profile(self.defense_profile)  # raises on unknown names
        # Spec-shaped fields share CampaignSpec's validation.
        self.to_spec()

    def to_spec(self) -> CampaignSpec:
        """The :class:`CampaignSpec` this scenario's campaigns run."""
        return CampaignSpec(
            boards=self.boards,
            victims=self.victims,
            model_mix=self.model_mix,
            tenants_per_board=self.tenants_per_board,
            wave_size=self.wave_size,
            seed=self.seed,
            input_hw=self.input_hw,
            corruption_fraction=self.corruption_fraction,
            board_names=self.board_names,
            coalesce_reads=self.coalesce_reads,
        )

    def label(self) -> str:
        """One-line summary for fuzz-run progress output."""
        parts = [
            f"#{self.scenario_id}",
            f"{self.boards}b/{self.victims}v",
            f"mix={len(self.model_mix)}",
            self.defense_profile,
            self.executor
            + ("" if self.executor == self.resume_executor else
               f"->{self.resume_executor}"),
            f"crash@{self.interrupt_after}",
        ]
        if (
            self.fabric_workers > 1
            or self.fabric_kill_after_waves is not None
            or self.fabric_drop_after_ops is not None
            or self.fabric_partition_ticks
        ):
            kill = (
                ""
                if self.fabric_kill_after_waves is None
                else f"!kill@{self.fabric_kill_after_waves}"
            )
            drop = (
                ""
                if self.fabric_drop_after_ops is None
                else f"!drop@{self.fabric_drop_after_ops}"
            )
            part = (
                f"!part{self.fabric_partition_ticks}"
                if self.fabric_partition_ticks
                else ""
            )
            parts.append(f"fabric={self.fabric_workers}w{kill}{drop}{part}")
        if self.planted_fault:
            parts.append(f"plant={self.planted_fault}")
        return " ".join(parts)


def scenario_to_dict(scenario: Scenario) -> dict:
    """The scenario as a JSON-trivial dict (tuples become lists)."""
    return asdict(scenario)


def scenario_from_dict(payload: dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    fields = dict(payload)
    for key in ("model_mix", "board_names"):
        fields[key] = tuple(fields[key])
    return Scenario(**fields)


class ScenarioGenerator:
    """Deterministic scenario sampler: ``(seed, id) -> Scenario``.

    Each scenario gets its own :class:`random.Random` stream derived
    from the generator seed and the scenario id, so scenario *k* of
    seed *s* is identical whether generated alone or as part of a
    batch — the property that makes ``repro fuzz run`` reproducible
    and lets the shrinker regenerate nothing.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    @property
    def seed(self) -> int:
        """The generator's base seed."""
        return self._seed

    def scenario(self, scenario_id: int) -> Scenario:
        """Sample scenario number *scenario_id* of this seed's stream."""
        rng = random.Random(self._seed * _SEED_STRIDE + scenario_id)
        boards = rng.randint(1, 3)
        victims = rng.randint(1, 6)
        executor = rng.choices(EXECUTORS, weights=(5, 1))[0]
        mix_size = rng.choices((1, 2, 3), weights=(3, 4, 2))[0]
        return Scenario(
            scenario_id=scenario_id,
            seed=rng.randrange(1 << 16),
            boards=boards,
            victims=victims,
            tenants_per_board=rng.randint(1, 3),
            wave_size=rng.randint(1, 3),
            model_mix=tuple(rng.sample(MODEL_NAMES, mix_size)),
            board_names=tuple(
                rng.sample(("ZCU104", "ZCU102"), rng.randint(1, 2))
            ),
            input_hw=rng.choice((16, 16, 24, 32)),
            corruption_fraction=round(rng.uniform(0.0, 0.5), 3),
            coalesce_reads=rng.random() < 0.8,
            executor=executor,
            processes=rng.randint(1, 2) if executor == "multiprocess" else None,
            resume_executor=rng.choices(EXECUTORS, weights=(5, 1))[0],
            interrupt_after=rng.randint(1, victims),
            defense_profile=rng.choice(PROFILE_POOL),
            scrape_delay_ticks=rng.randint(0, 4),
            carve_window=rng.choice(CARVE_WINDOWS),
            analysis_cap=rng.choice((4096, 16384, 65536)),
            # New axes draw strictly after every pre-existing field so
            # older seeds' streams stay byte-stable up to these fields.
            fabric_workers=rng.randint(1, 3),
            fabric_kill_after_waves=rng.choice(
                (None, None, None, 0, 1, 2)
            ),
            fabric_drop_after_ops=rng.choice(
                (None, None, None, 4, 7, 12)
            ),
            fabric_partition_ticks=rng.choice((0, 0, 0, 1, 2)),
        )

    def generate(self, budget: int) -> list[Scenario]:
        """The first *budget* scenarios of this seed's stream."""
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        return [self.scenario(index) for index in range(budget)]


def with_plant(scenario: Scenario, fault: str) -> Scenario:
    """A copy of *scenario* carrying a planted fault."""
    return replace(scenario, planted_fault=fault)
