"""The fuzz runner — drive one scenario through the real attack stack.

:func:`build_world` is the heart of the fuzzlab: it takes one
:class:`~repro.fuzzlab.scenario.Scenario` and actually runs it —
no mocks, no shortcuts — collecting every artifact the oracles need:

1. one *uninterrupted* checkpointed campaign
   (:class:`~repro.campaign.runtime.runner.CampaignRuntime` under the
   scenario's executor and hardening profile), whose ``report.json``,
   journal, and dump spool become the reference world;
2. one *crashed* campaign (``interrupt_after`` at the scenario's
   chosen point) plus its resume — possibly on a different executor —
   for the byte-identity oracle;
3. a coalesce-flipped campaign (batched ⇄ word-at-a-time extraction)
   for the extraction-equivalence oracle;
4. a profile-vs-strengthened-profile campaign pair, run through the
   defense arena's teardown-delay hook, for the monotonicity oracle;
5. fast-path region maps over spooled residue for the differential
   scan oracles, plus mmap-backed re-reads of the same spool objects
   (``DumpSpool.open``) for the backing-equivalence oracle;
6. a *distributed* run of the same spec — a
   :class:`~repro.campaign.runtime.fabric.FabricCoordinator` on an
   ephemeral socket leasing board shards to the scenario's worker
   count, with an optional scripted worker kill whose lease expires
   on an injected :class:`~repro.campaign.runtime.fabric.ManualClock`
   and re-issues, and optional *transport* chaos (a
   :class:`~repro.campaign.runtime.netchaos.FlakyProxy` injecting
   scripted connection drops and full partitions between workers and
   coordinator) — for the fabric-identity oracle.

Offline prep (profiling + signature mining) is cached per
``(model mix, input size)`` across scenarios — it is a pure function
of those inputs, and it dominates the cost of a small campaign.

:func:`run_fuzz` loops a :class:`ScenarioGenerator` over a budget and
folds every verdict into a :class:`FuzzReport` whose JSON is
byte-deterministic for a given ``(seed, budget, oracles)``.

**Planted faults.**  A fuzzer that never fires is indistinguishable
from a fuzzer that cannot fire.  :data:`PLANTED_FAULTS` corrupts a
*built* world in one precise way per fault name (a dropped region, a
flipped report byte, a tampered spool object, an inflated residue
count, a swallowed outcome, a skewed mmap probe) so the test suite can
prove, end to end,
that each oracle detects its failure class, that the shrinker reduces
a failing scenario, and that ``repro fuzz replay`` reproduces it from
the serialized seed alone.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from repro.attack.carving import DumpCartographer, Region, RegionKind
from repro.attack.identify import SignatureDatabase
from repro.attack.profiling import ProfileStore
from repro.campaign.engine import prepare_offline, run_campaign
from repro.campaign.report import CampaignReport
from repro.campaign.runtime.fabric import (
    FabricCoordinator,
    FabricWorker,
    ManualClock,
)
from repro.campaign.runtime.netchaos import ChaosScript, FlakyProxy
from repro.campaign.runtime.runner import CampaignRuntime
from repro.campaign.runtime.spool import DumpSpool
from repro.campaign.schedule import build_schedule
from repro.defense.arena import ScrapeDelayHook
from repro.defense.profiles import DefenseConfig, defense_profile
from repro.errors import (
    CampaignInterrupted,
    EmptyMetricError,
    FabricError,
    RetryExhaustedError,
)
from repro.utils.resilience import RetryPolicy
from repro.evaluation.metrics import nonzero_bytes, window_hit_rate
from repro.fuzzlab.oracles import (
    WORLD_INTEGRITY,
    BackingArtifact,
    MonotonicityArtifact,
    RegionMapArtifact,
    ScenarioWorld,
    Violation,
    check_world,
    oracle_names,
    strengthened_axis,
)
from repro.fuzzlab.scenario import (
    Scenario,
    ScenarioGenerator,
    scenario_from_dict,
    scenario_to_dict,
)

MAX_ANALYZED_DUMPS = 3
"""Spool objects the analysis oracles read back per scenario (the
reference implementations are deliberate per-byte loops)."""

_PREP_CACHE: dict[tuple, tuple[ProfileStore, SignatureDatabase]] = {}


def _prepared(spec) -> tuple[ProfileStore, SignatureDatabase]:
    """Offline prep, cached by what it is a pure function of."""
    key = (tuple(sorted(set(spec.model_mix))), spec.input_hw)
    if key not in _PREP_CACHE:
        _PREP_CACHE[key] = prepare_offline(spec)
    return _PREP_CACHE[key]


def strengthen(profile: DefenseConfig) -> tuple[DefenseConfig, str]:
    """A strictly-no-weaker profile plus the axis that was tightened.

    - sanitize ``NONE``       -> compose in synchronous ``zero_on_free``;
    - ``SCRUB_POOL``          -> double the background daemon's rate;
    - already ``ZERO_ON_FREE``-> unchanged (residue is provably zero).
    """
    axis = strengthened_axis(profile.sanitize_policy)
    if axis == "zero_on_free":
        return profile.compose(defense_profile("zero_on_free")), axis
    if axis == "scrub_rate":
        stronger = replace(
            profile,
            name=f"{profile.name}@2x",
            scrub_rate_per_tick=profile.scrub_rate_per_tick * 2,
        )
        return stronger, axis
    return profile, axis


@dataclass(frozen=True)
class WorldEval:
    """Deterministic measurements of one scenario under one profile.

    The lightweight sibling of :func:`build_world`: a *single*
    in-process campaign through the arena's teardown-delay hook, with
    every wall-clock field deliberately absent — the explorer
    (:mod:`repro.explore`) scores genomes on these numbers and promises
    byte-identical frontiers per seed, so only fields
    ``canonical_outcome`` would keep are summarized here.
    """

    profile: str
    victims: int
    success_rate: float
    identification_rate: float
    image_recovery_rate: float
    window_hit_rate: float
    residue_bytes: int
    """Nonzero bytes recovered fleet-wide (the leakage axis)."""
    bytes_scraped: int
    frames_scrubbed_sync: int
    frames_scrubbed_async: int
    scrub_backlog: int


def evaluate_world(
    scenario: Scenario, defense: DefenseConfig | None = None
) -> WorldEval:
    """Run *scenario* once, in process, and measure what leaked.

    The fitness-evaluation hook the explorer drives: reuses the
    fuzzlab's offline-prep cache (:func:`_prepared`) and the defense
    arena's :class:`ScrapeDelayHook`, but skips everything
    :func:`build_world` builds for the oracles — no crash/resume
    drill, no fabric, no spool re-reads.  *defense* overrides the
    scenario's named profile with an explicit
    :class:`~repro.defense.profiles.DefenseConfig` (how the Pareto
    sweep walks configs that have no registry name).
    """
    spec = scenario.to_spec()
    profiles, database = _prepared(spec)
    profile = (
        defense
        if defense is not None
        else defense_profile(scenario.defense_profile)
    )
    hook = ScrapeDelayHook(scenario.scrape_delay_ticks)
    report = run_campaign(
        spec,
        profiles,
        database,
        kernel_config=profile.kernel_config(spec),
        teardown_hook=hook,
        executor="inprocess",
    )
    outcomes = report.outcomes
    try:
        hit_rate = window_hit_rate([o.residue_nbytes for o in outcomes])
    except EmptyMetricError:
        hit_rate = 0.0
    return WorldEval(
        profile=profile.name,
        victims=report.victims,
        success_rate=report.success_rate,
        identification_rate=report.identification_rate,
        image_recovery_rate=report.image_recovery_rate,
        window_hit_rate=hit_rate,
        residue_bytes=sum(o.residue_nbytes for o in outcomes),
        bytes_scraped=sum(o.nbytes for o in outcomes),
        frames_scrubbed_sync=sum(o.frames_scrubbed_sync for o in outcomes),
        frames_scrubbed_async=hook.frames_scrubbed_async,
        scrub_backlog=hook.scrub_backlog,
    )


FABRIC_LEASE_TTL = 30.0
"""Lease TTL for fuzzed fabric drills.  Time is a :class:`ManualClock`
the drill advances explicitly, so the value only has to be something a
drill can jump past — no wall clock ever waits on it."""

_FABRIC_DRAIN_ROUNDS = 12
"""Claim/expire rounds a fabric drill may take before the runner calls
non-convergence a world-build crash (a real finding)."""

_FUZZ_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.01, max_delay=0.05, jitter=0.0
)
"""Worker retry policy for fuzzed fabric drills: enough attempts to
ride out every scripted connection drop, with delays that cost nothing
because the injected sleep below is a no-op."""


def _no_sleep(seconds: float) -> None:
    """Injected worker sleep for drills — backoff without wall clock."""
    del seconds


def _fabric_run(
    scenario: Scenario, spec, workdir: Path, prep
) -> bytes:
    """Serve *spec* through the distributed fabric; return report bytes.

    Round one runs the scenario's scripted casualty (when
    ``fabric_kill_after_waves`` is set) alongside nothing — it dies,
    its lease is left held.  Every subsequent round advances the
    manual clock past the lease TTL (expiring whatever a dead worker
    still holds) and throws ``fabric_workers`` fresh threaded workers
    at the coordinator until the campaign converges.

    Transport chaos rides on top: when ``fabric_drop_after_ops`` or
    ``fabric_partition_ticks`` is set, every worker reaches the
    coordinator through a :class:`FlakyProxy` that cuts the wire on a
    request-ordinal schedule (workers reconnect and replay under
    :data:`_FUZZ_RETRY_POLICY`) and, for partition ticks, refuses all
    traffic for whole rounds — those rounds' workers exhaust their
    budgets and give up cleanly, their leases expire, and the healed
    rounds finish the campaign.  The ``fabric_identity`` oracle then
    holds the report to byte-identity regardless.
    """
    clock = ManualClock()
    coordinator = FabricCoordinator(
        spec,
        workdir,
        lease_ttl=FABRIC_LEASE_TTL,
        clock=clock,
        prep=prep,
        defense_profile=scenario.defense_profile,
    )
    host, port = coordinator.serve()
    chaotic = (
        scenario.fabric_drop_after_ops is not None
        or scenario.fabric_partition_ticks > 0
    )
    proxy: FlakyProxy | None = None
    if chaotic:
        step = scenario.fabric_drop_after_ops
        script = ChaosScript(
            drop_after_requests=(
                tuple(range(step, 5000, step)) if step else ()
            )
        )
        proxy = FlakyProxy((host, port), script=script)
        host, port = proxy.start()

    def worker(worker_id: str, die_after_waves: int | None = None):
        return FabricWorker(
            host,
            port,
            worker_id=worker_id,
            poll_interval=None,
            heartbeat=False,
            die_after_waves=die_after_waves,
            retry_policy=_FUZZ_RETRY_POLICY,
            sleep=_no_sleep,
        )

    def run_round(workers: "list[FabricWorker]") -> None:
        def run_one(target: FabricWorker) -> None:
            try:
                target.run()
            except (FabricError, RetryExhaustedError, OSError):
                # A worker beaten by the chaos (budget exhausted
                # mid-partition, proxy cut one drop too many) gives up
                # cleanly; its lease expires and the board re-issues.
                # Non-convergence is still caught by the round cap.
                pass

        threads = [
            threading.Thread(target=run_one, args=(target,))
            for target in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    try:
        if scenario.fabric_kill_after_waves is not None:
            run_round(
                [
                    worker(
                        "fuzz-casualty",
                        die_after_waves=scenario.fabric_kill_after_waves,
                    )
                ]
            )
        if proxy is not None and scenario.fabric_partition_ticks > 0:
            # The outage: whole rounds where nothing gets through.
            proxy.partition()
            for tick in range(scenario.fabric_partition_ticks):
                run_round(
                    [
                        worker(f"fuzz-part{tick}w{index}")
                        for index in range(scenario.fabric_workers)
                    ]
                )
                clock.advance(FABRIC_LEASE_TTL + 1.0)
            proxy.heal()
        rounds = 0
        while not coordinator.done:
            if rounds >= _FABRIC_DRAIN_ROUNDS:
                raise RuntimeError(
                    f"fabric drill failed to converge in "
                    f"{_FABRIC_DRAIN_ROUNDS} rounds: {coordinator.status()}"
                )
            if rounds or scenario.fabric_kill_after_waves is not None:
                clock.advance(FABRIC_LEASE_TTL + 1.0)
            run_round(
                [
                    worker(f"fuzz-r{rounds}w{index}")
                    for index in range(scenario.fabric_workers)
                ]
            )
            rounds += 1
        coordinator.run_until_complete(timeout=60)
        return coordinator.run_dir.report_path.read_bytes()
    finally:
        if proxy is not None:
            proxy.close()
        coordinator.close()


def build_world(scenario: Scenario, workdir: str | Path) -> ScenarioWorld:
    """Run *scenario* end to end and collect the oracle artifacts."""
    workdir = Path(workdir)
    spec = scenario.to_spec()
    profiles, database = _prepared(spec)
    profile = defense_profile(scenario.defense_profile)
    kernel_config = profile.kernel_config(spec)
    prep = (profiles, database)

    # 1. The uninterrupted reference run.
    full = CampaignRuntime(
        spec,
        workdir / "full",
        executor=scenario.executor,
        processes=scenario.processes,
        prep=prep,
        kernel_config=kernel_config,
    )
    baseline_report = full.run()
    baseline_bytes = full.run_dir.report_path.read_bytes()

    # 2. Crash at the scenario's interrupt point, then resume.
    crash = CampaignRuntime(
        spec,
        workdir / "crash",
        executor=scenario.executor,
        processes=scenario.processes,
        interrupt_after=scenario.interrupt_after,
        prep=prep,
        kernel_config=kernel_config,
    )
    try:
        crash.run()
        interrupted = False
    except CampaignInterrupted:
        interrupted = True
        CampaignRuntime.resume(
            workdir / "crash",
            executor=scenario.resume_executor,
            prep=prep,
            kernel_config=kernel_config,
        ).run()
    resumed_bytes = crash.run_dir.report_path.read_bytes()

    # 3. Flip the extraction mode; everything else identical.
    alt_report = run_campaign(
        replace(spec, coalesce_reads=not spec.coalesce_reads),
        profiles,
        database,
        kernel_config=kernel_config,
        executor="inprocess",
        spool=DumpSpool(workdir / "alt-spool"),
    )

    # 4. The monotonicity pair, through the arena's teardown-delay hook.
    stronger, axis = strengthen(profile)
    pair_reports = [
        run_campaign(
            spec,
            profiles,
            database,
            kernel_config=config.kernel_config(spec),
            teardown_hook=ScrapeDelayHook(scenario.scrape_delay_ticks),
            executor="inprocess",
        )
        for config in ((profile,) if stronger is profile else (profile, stronger))
    ]
    if stronger is profile:
        # Already-zeroing profiles strengthen to themselves; the oracle
        # still asserts residue == 0 on the single run's outcomes.
        pair_reports.append(pair_reports[0])

    # 5. Read residue back from the spool; map it with the fast paths.
    spool = full.run_dir.spool
    digests = spool.digests()
    rng = random.Random((spec.seed + 1) * 31 + scenario.scenario_id)
    selected = sorted(
        rng.sample(digests, min(MAX_ANALYZED_DUMPS, len(digests)))
    )
    dumps = [(digest, spool.read(digest)) for digest in selected]
    cartographer = DumpCartographer(window=scenario.carve_window)
    region_maps = [
        RegionMapArtifact(
            digest=digest,
            data=data[: scenario.analysis_cap],
            regions=tuple(
                cartographer.map_dump(data[: scenario.analysis_cap])
            ),
        )
        for digest, data in dumps
    ]
    # Re-read the same objects zero-copy and analyze straight off the
    # mapping; the backing_equivalence oracle holds these against the
    # slurped-bytes recompute.
    backings = []
    for digest, _ in dumps:
        with spool.open(digest) as mapped:
            backings.append(
                BackingArtifact(
                    digest=digest,
                    nbytes=mapped.nbytes,
                    nonzero=nonzero_bytes(mapped.data),
                    regions=tuple(cartographer.map_dump(mapped.data)),
                    matches=database.match(mapped.data),
                )
            )

    # 6. The same spec through the distributed fabric (coordinator +
    # fabric_workers threaded workers, optional scripted casualty).
    fabric_bytes = _fabric_run(scenario, spec, workdir / "fabric", prep)

    world = ScenarioWorld(
        scenario=scenario,
        spec=spec,
        schedule=tuple(build_schedule(spec)),
        database=database,
        cartographer=cartographer,
        baseline_report=baseline_report,
        baseline_report_bytes=baseline_bytes,
        resumed_report_bytes=resumed_bytes,
        interrupted=interrupted,
        spool_digests=tuple(digests),
        manifest=tuple(spool.load_manifest()),
        dumps=dumps,
        region_maps=region_maps,
        backings=backings,
        alt_outcomes=tuple(alt_report.outcomes),
        monotonicity=MonotonicityArtifact(
            base_profile=profile.name,
            stronger_profile=stronger.name,
            stronger_axis=axis,
            base_outcomes=tuple(pair_reports[0].outcomes),
            stronger_outcomes=tuple(pair_reports[1].outcomes),
        ),
        fabric_report_bytes=fabric_bytes,
    )
    if scenario.planted_fault is not None:
        plant_fault(world, scenario.planted_fault)
    return world


# -- planted faults -----------------------------------------------------------


def _plant_map_tamper(world: ScenarioWorld) -> None:
    """Corrupt one region map so it no longer tiles its dump."""
    for index, artifact in enumerate(world.region_maps):
        regions = list(artifact.regions)
        if not regions:
            continue
        if len(regions) >= 2:
            del regions[len(regions) // 2]
        elif regions[0].length >= 2:
            first = regions[0]
            regions[0] = Region(first.start, first.end - 1, first.kind)
        else:
            regions.append(Region(1, 2, regions[0].kind))
        world.region_maps[index] = RegionMapArtifact(
            artifact.digest, artifact.data, tuple(regions)
        )
        return
    # No residue was spooled (e.g. a pinned-Xen fleet): forge a map
    # with a coverage gap over synthetic bytes.
    world.region_maps.append(
        RegionMapArtifact(
            digest="0" * 64,
            data=b"\x00" * 512,
            regions=(Region(0, 256, RegionKind.ZERO),),
        )
    )


def _plant_resume_tamper(world: ScenarioWorld) -> None:
    """Flip one byte of the resumed run's canonical report."""
    data = world.resumed_report_bytes
    if len(data) < 2:
        world.resumed_report_bytes = b"\x00"
        return
    world.resumed_report_bytes = (
        data[:-2] + bytes([data[-2] ^ 0xFF]) + data[-1:]
    )


def _plant_spool_tamper(world: ScenarioWorld) -> None:
    """Make one spool object's bytes disagree with its digest."""
    if world.dumps:
        digest, data = world.dumps[0]
        tampered = (
            data[:-1] + bytes([data[-1] ^ 0x5A]) if data else b"\x5a"
        )
        world.dumps[0] = (digest, tampered)
    else:
        world.dumps.append(("f" * 64, b"\x5a"))


def _plant_residue_tamper(world: ScenarioWorld) -> None:
    """Inflate a strengthened-profile outcome's leaked-byte count."""
    pair = world.monotonicity
    strong = list(pair.stronger_outcomes)
    base_total = sum(o.residue_nbytes for o in pair.base_outcomes)
    strong[0] = replace(
        strong[0], residue_nbytes=strong[0].residue_nbytes + base_total + 1
    )
    world.monotonicity = replace(
        pair, stronger_outcomes=tuple(strong)
    )


def _plant_report_tamper(world: ScenarioWorld) -> None:
    """Swallow the last outcome of the baseline report."""
    world.baseline_report.outcomes = world.baseline_report.outcomes[:-1]


def _plant_backing_tamper(world: ScenarioWorld) -> None:
    """Skew one mmap-side analysis result away from its bytes twin."""
    if world.backings:
        artifact = world.backings[0]
        world.backings[0] = replace(
            artifact, nonzero=artifact.nonzero + 1
        )
    else:
        # Nothing was spooled (e.g. a pinned-Xen fleet): forge a probe
        # for an object the bytes side never read.
        world.backings.append(
            BackingArtifact(
                digest="e" * 64,
                nbytes=16,
                nonzero=16,
                regions=(),
                matches={},
            )
        )


def _plant_fabric_lost_outcome(world: ScenarioWorld) -> None:
    """Swallow the last outcome of the fabric run's report.

    The exact corruption a broken coordinator produces: a worker's
    wave was acked but never journaled, so the distributed report is
    one outcome short of the single-host truth.
    """
    data = world.fabric_report_bytes
    if not data:
        world.fabric_report_bytes = b"{}"
        return
    report = CampaignReport.from_json(data.decode("utf-8"))
    report.outcomes = report.outcomes[:-1]
    world.fabric_report_bytes = (report.to_json() + "\n").encode("utf-8")


PLANTED_FAULTS: dict[str, Callable[[ScenarioWorld], None]] = {
    "map-tamper": _plant_map_tamper,
    "resume-tamper": _plant_resume_tamper,
    "spool-tamper": _plant_spool_tamper,
    "residue-tamper": _plant_residue_tamper,
    "report-tamper": _plant_report_tamper,
    "backing-tamper": _plant_backing_tamper,
    "fabric-lost-outcome": _plant_fabric_lost_outcome,
}
"""Deliberate world corruptions, each aimed at one oracle's failure
class.  Part of the public surface: a committed regression seed with a
``planted_fault`` must keep reproducing its violation forever."""


def plant_fault(world: ScenarioWorld, fault: str) -> None:
    """Apply the named corruption to a built world."""
    try:
        PLANTED_FAULTS[fault](world)
    except KeyError:
        raise ValueError(
            f"unknown planted fault {fault!r}; known: "
            f"{sorted(PLANTED_FAULTS)}"
        ) from None
    world.notes.append(f"planted fault: {fault}")


# -- verdicts and the fuzz loop -----------------------------------------------


@dataclass(frozen=True)
class ScenarioVerdict:
    """One scenario's oracle outcome."""

    scenario: Scenario
    oracles: tuple[str, ...]
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        """Whether every oracle held."""
        return not self.violations

    @property
    def violated_oracles(self) -> tuple[str, ...]:
        """Names of the oracles that fired, sorted and deduplicated."""
        return tuple(sorted({v.oracle for v in self.violations}))

    def to_dict(self) -> dict:
        """JSON-trivial form (deterministic for a fixed scenario)."""
        return {
            "scenario": scenario_to_dict(self.scenario),
            "oracles": list(self.oracles),
            "violations": [
                {"oracle": v.oracle, "message": v.message}
                for v in self.violations
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioVerdict":
        """Rebuild a verdict from :meth:`to_dict` output."""
        return cls(
            scenario=scenario_from_dict(payload["scenario"]),
            oracles=tuple(payload["oracles"]),
            violations=tuple(
                Violation(oracle=v["oracle"], message=v["message"])
                for v in payload["violations"]
            ),
        )


def _checked(
    scenario: Scenario, selected: tuple[str, ...], workdir: Path
) -> list[Violation]:
    """Build and check one world; a stack crash is itself a finding."""
    try:
        world = build_world(scenario, workdir)
        return check_world(world, selected)
    except Exception as error:  # noqa: BLE001 — crashes are fuzz findings
        # The workdir is a fresh temp path each run; scrub it from the
        # message so verdicts stay byte-deterministic.
        detail = str(error).replace(str(workdir), "<workdir>")
        return [
            Violation(
                oracle=WORLD_INTEGRITY,
                message=(
                    f"world build crashed: "
                    f"{type(error).__name__}: {detail}"
                ),
            )
        ]


def run_scenario(
    scenario: Scenario,
    oracles: tuple[str, ...] | None = None,
    workdir: str | Path | None = None,
) -> ScenarioVerdict:
    """Build *scenario*'s world and hold every requested oracle to it.

    Campaign artifacts land in *workdir* (kept for post-mortems) or a
    temporary directory cleaned up on return.  An exception escaping
    the attack stack itself comes back as a
    :data:`~repro.fuzzlab.oracles.WORLD_INTEGRITY` violation rather
    than propagating — a fuzzer that dies on the bug it just found
    cannot shrink it.
    """
    selected = oracle_names() if oracles is None else tuple(oracles)
    if workdir is not None:
        violations = _checked(scenario, selected, Path(workdir))
    else:
        with tempfile.TemporaryDirectory(prefix="fuzzlab-") as tmp:
            violations = _checked(scenario, selected, Path(tmp))
    return ScenarioVerdict(
        scenario=scenario,
        oracles=selected,
        violations=tuple(violations),
    )


@dataclass
class FuzzReport:
    """Everything one ``repro fuzz run`` concluded."""

    seed: int
    budget: int
    oracles: tuple[str, ...]
    verdicts: list[ScenarioVerdict]

    @property
    def ok(self) -> bool:
        """Whether the whole run came back green."""
        return all(verdict.ok for verdict in self.verdicts)

    def failures(self) -> list[ScenarioVerdict]:
        """Verdicts with at least one violation, in scenario order."""
        return [verdict for verdict in self.verdicts if not verdict.ok]

    def to_json(self) -> str:
        """Deterministic JSON: same seed+budget+oracles, same bytes."""
        return json.dumps(
            {
                "format": 1,
                "seed": self.seed,
                "budget": self.budget,
                "oracles": list(self.oracles),
                "verdicts": [verdict.to_dict() for verdict in self.verdicts],
            },
            indent=2,
            sort_keys=True,
        )

    def render(self) -> str:
        """The text summary ``repro fuzz run`` prints."""
        failures = self.failures()
        lines = [
            "=== Fuzzlab report ===",
            (
                f"seed {self.seed}, budget {self.budget}, "
                f"{len(self.oracles)} oracle(s): "
                f"{', '.join(self.oracles)}"
            ),
            (
                f"verdicts: {len(self.verdicts) - len(failures)} ok, "
                f"{len(failures)} violating"
            ),
        ]
        for verdict in failures:
            lines.append("")
            lines.append(f"FAIL {verdict.scenario.label()}")
            for violation in verdict.violations:
                lines.append(f"  [{violation.oracle}] {violation.message}")
        return "\n".join(lines)


ProgressFn = Callable[[ScenarioVerdict], None]


def run_fuzz(
    budget: int,
    seed: int = 0,
    oracles: tuple[str, ...] | None = None,
    on_verdict: ProgressFn | None = None,
) -> FuzzReport:
    """Fuzz *budget* scenarios from *seed*'s deterministic stream."""
    selected = oracle_names() if oracles is None else tuple(oracles)
    generator = ScenarioGenerator(seed)
    verdicts = []
    for scenario in generator.generate(budget):
        verdict = run_scenario(scenario, oracles=selected)
        verdicts.append(verdict)
        if on_verdict is not None:
            on_verdict(verdict)
    return FuzzReport(
        seed=seed, budget=budget, oracles=selected, verdicts=verdicts
    )
