"""The regression corpus — every found bug becomes a permanent test.

A corpus seed is one :class:`~repro.fuzzlab.scenario.Scenario` frozen
as JSON, with a human note about why it is interesting.  The workflow:

1. ``repro fuzz run`` finds a violation, shrinks it, and writes the
   minimal scenario as a seed file;
2. the developer triages it (``repro fuzz replay seed.json`` reproduces
   the violation deterministically, forever);
3. once the bug is fixed, the seed is committed under
   ``tests/corpus/fuzzlab/`` — the tier-1 suite replays every
   committed seed and demands green, so the bug can never quietly
   return.

Seed files are small, diff-able, and self-contained: no pickles, no
paths, no environment.  :func:`iter_corpus` accepts files and
directories (directories contribute their ``*.json`` members, sorted),
so the CLI, the test suite, and CI all share one loader.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from repro.fuzzlab.runner import ScenarioVerdict, run_scenario
from repro.fuzzlab.scenario import (
    Scenario,
    scenario_from_dict,
    scenario_to_dict,
)

CORPUS_FORMAT = 1


def save_scenario(
    scenario: Scenario, path: str | os.PathLike[str], note: str = ""
) -> Path:
    """Freeze one scenario as a replayable JSON seed file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "format": CORPUS_FORMAT,
                "note": note,
                "scenario": scenario_to_dict(scenario),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return path


def load_scenario(path: str | os.PathLike[str]) -> tuple[Scenario, str]:
    """Read one seed file back; returns ``(scenario, note)``.

    Raises :class:`ValueError` for malformed seeds (bad JSON, wrong
    format marker, missing or invalid scenario fields) so callers can
    turn any of it into one clean usage error.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    found = (
        payload.get("format")
        if isinstance(payload, dict)
        else f"a JSON {type(payload).__name__}"
    )
    if not isinstance(payload, dict) or found != CORPUS_FORMAT:
        raise ValueError(
            f"{path}: not a fuzzlab seed (expected format "
            f"{CORPUS_FORMAT}, got {found!r})"
        )
    try:
        scenario = scenario_from_dict(payload["scenario"])
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"{path}: invalid scenario: {error}") from None
    return scenario, str(payload.get("note", ""))


def iter_corpus(
    paths: Iterable[str | os.PathLike[str]],
) -> list[Path]:
    """Expand files and directories into a sorted list of seed files."""
    seeds: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seeds.extend(sorted(path.glob("*.json")))
        elif path.exists():
            seeds.append(path)
        else:
            raise FileNotFoundError(f"no such seed file or corpus: {path}")
    return seeds


def replay(
    paths: Iterable[str | os.PathLike[str]],
    oracles: tuple[str, ...] | None = None,
) -> list[tuple[Path, ScenarioVerdict]]:
    """Re-run every seed under *paths*; returns per-seed verdicts."""
    results = []
    for seed_path in iter_corpus(paths):
        scenario, _ = load_scenario(seed_path)
        results.append((seed_path, run_scenario(scenario, oracles=oracles)))
    return results
