"""Scenario shrinking — reduce a failing world to its smallest witness.

A fuzz failure at ``3 boards x 6 victims x scrub_pool+aslr x
multiprocess`` is a fact; a failure at ``1 board x 1 victim x none x
inprocess`` is a *diagnosis*.  :func:`shrink` performs classic greedy
delta-debugging over the scenario's fields: propose one strictly
simpler variant at a time (fewer victims, one board, the undefended
profile, the in-process executor, the default carve window…), re-run
it through the full oracle harness, and keep the reduction whenever
the **same oracle family** still fires.  Because every accepted step
strictly reduces the scenario and rejected steps change nothing, the
loop terminates at a local minimum — reported with the reduction trail
so a triager can read how much of the original world was incidental.

Reruns are the currency here (each one drives several real campaigns),
so the search is bounded by ``max_reruns`` and proposes coarse jumps
(halving, collapse-to-one) before considering itself done.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fuzzlab.runner import ScenarioVerdict, run_scenario
from repro.fuzzlab.scenario import Scenario

DEFAULT_MAX_RERUNS = 48
"""Re-executions the greedy pass may spend before settling."""


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal failing scenario and how it was reached."""

    scenario: Scenario
    verdict: ScenarioVerdict
    """The minimal scenario's (still-violating) verdict."""
    reruns: int
    steps: tuple[str, ...]
    """Accepted reductions, in order — the triage narrative."""


def _proposals(scenario: Scenario) -> list[tuple[str, Scenario]]:
    """Strictly simpler one-step variants of *scenario*, coarsest first."""
    out: list[tuple[str, Scenario]] = []

    def propose(step: str, **changes) -> None:
        try:
            out.append((step, replace(scenario, **changes)))
        except ValueError:
            pass  # the combination is invalid; skip the proposal

    if scenario.victims > 1:
        propose("victims->1", victims=1, interrupt_after=1)
        half = scenario.victims // 2
        if half > 1:
            propose(
                f"victims->{half}",
                victims=half,
                interrupt_after=min(scenario.interrupt_after, half),
            )
    if scenario.boards > 1:
        propose("boards->1", boards=1)
    if scenario.tenants_per_board > 1:
        propose("tenants->1", tenants_per_board=1)
    if scenario.wave_size > 1:
        propose("wave_size->1", wave_size=1)
    if len(scenario.model_mix) > 1:
        propose("model_mix->first", model_mix=(scenario.model_mix[0],))
        propose("model_mix->drop_last", model_mix=scenario.model_mix[:-1])
    if len(scenario.board_names) > 1:
        propose(
            "board_names->first", board_names=(scenario.board_names[0],)
        )
    if scenario.interrupt_after > 1:
        propose("interrupt_after->1", interrupt_after=1)
    if scenario.fabric_kill_after_waves is not None:
        propose("fabric_kill->off", fabric_kill_after_waves=None)
    if scenario.fabric_drop_after_ops is not None:
        propose("fabric_drop->off", fabric_drop_after_ops=None)
    if scenario.fabric_partition_ticks:
        propose("fabric_partition->0", fabric_partition_ticks=0)
    if scenario.fabric_workers > 1:
        propose("fabric_workers->1", fabric_workers=1)
    if scenario.defense_profile != "none":
        propose("profile->none", defense_profile="none")
    if scenario.scrape_delay_ticks:
        propose("delay_ticks->0", scrape_delay_ticks=0)
    if scenario.executor != "inprocess":
        propose("executor->inprocess", executor="inprocess", processes=None)
    if scenario.resume_executor != "inprocess":
        propose("resume_executor->inprocess", resume_executor="inprocess")
    if not scenario.coalesce_reads:
        propose("coalesce_reads->on", coalesce_reads=True)
    if scenario.corruption_fraction:
        propose("corruption->0", corruption_fraction=0.0)
    if scenario.input_hw != 16:
        propose("input_hw->16", input_hw=16)
    if scenario.carve_window != 256:
        propose("carve_window->256", carve_window=256)
    if scenario.analysis_cap != 4096:
        propose("analysis_cap->4096", analysis_cap=4096)
    if scenario.seed != 0:
        propose("seed->0", seed=0)
    return out


def shrink(
    scenario: Scenario,
    oracles: tuple[str, ...] | None = None,
    max_reruns: int = DEFAULT_MAX_RERUNS,
    verdict: ScenarioVerdict | None = None,
) -> ShrinkResult:
    """Greedily minimize *scenario* while its failure keeps reproducing.

    The scenario is run once to learn which oracles it violates
    (raises :class:`ValueError` if it is green — there is nothing to
    shrink); a caller that already holds the scenario's *verdict* (the
    fuzz loop does) passes it in and saves that whole-world rerun.
    Each accepted reduction must keep at least one of the original
    oracles firing, so the shrinker cannot wander onto an unrelated
    failure.
    """
    reruns = 0
    if verdict is None:
        verdict = run_scenario(scenario, oracles=oracles)
        reruns = 1
    target = set(verdict.violated_oracles)
    if not target:
        raise ValueError(
            f"scenario {scenario.scenario_id} violates no oracle; "
            f"nothing to shrink"
        )
    steps: list[str] = []
    improved = True
    while improved and reruns < max_reruns:
        improved = False
        for step, candidate in _proposals(scenario):
            if reruns >= max_reruns:
                break
            candidate_verdict = run_scenario(candidate, oracles=oracles)
            reruns += 1
            if target & set(candidate_verdict.violated_oracles):
                scenario = candidate
                verdict = candidate_verdict
                steps.append(step)
                improved = True
                break  # restart proposals from the reduced scenario
    return ShrinkResult(
        scenario=scenario,
        verdict=verdict,
        reruns=reruns,
        steps=tuple(steps),
    )
