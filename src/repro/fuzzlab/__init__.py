"""Fuzzlab — generative scenario fuzzing with differential oracles.

The hand-written test suite exercises the attack stack on scenarios
someone thought of; the fuzzlab exercises it on scenarios nobody did.
A deterministic generator samples whole campaign worlds — fleet
geometry, victim mixes and lifetimes, hardening profiles, executor
placement, injected crash points, carve windows — and every world is
driven through the *real* four-step attack and campaign runtime, then
held to a registry of cross-cutting oracles: fast-path vs reference
byte-identity, region maps that tile their dump, crash/resume report
byte-identity, spool round-trip integrity, defense monotonicity,
report-aggregation consistency, coalesced vs word-mode extraction
equivalence, mmap-backed vs bytes-backed analysis equivalence, and
distributed-fabric vs single-host report byte-identity (a real
coordinator socket, fuzzed worker counts, scripted worker kills).
Failures shrink to a minimal scenario and serialize as
replayable JSON seeds; committed seeds become permanent regression
tests.

The pieces:

- :mod:`repro.fuzzlab.scenario` — the scenario model and the
  deterministic ``(seed, id) -> Scenario`` generator;
- :mod:`repro.fuzzlab.oracles`  — the oracle registry and the world
  artifact they consume;
- :mod:`repro.fuzzlab.runner`   — world building (real campaigns, real
  resume drills), planted faults, the fuzz loop, verdict reports;
- :mod:`repro.fuzzlab.shrink`   — greedy scenario minimization;
- :mod:`repro.fuzzlab.corpus`   — JSON seeds, corpus replay.

Scenario generation is pure and cheap; the streams are stable:

>>> from repro.fuzzlab import ScenarioGenerator
>>> scenarios = ScenarioGenerator(seed=0).generate(2)
>>> [s.scenario_id for s in scenarios]
[0, 1]
>>> scenarios == ScenarioGenerator(seed=0).generate(2)
True

See ``docs/testing.md`` for the test taxonomy and the corpus-replay
workflow, and ``repro fuzz run --budget 25 --seed 0`` for the CI lane.
"""

from repro.fuzzlab.corpus import (
    iter_corpus,
    load_scenario,
    replay,
    save_scenario,
)
from repro.fuzzlab.oracles import (
    ORACLES,
    WORLD_INTEGRITY,
    ScenarioWorld,
    Violation,
    check_world,
    oracle_names,
)
from repro.fuzzlab.runner import (
    PLANTED_FAULTS,
    FuzzReport,
    ScenarioVerdict,
    WorldEval,
    build_world,
    evaluate_world,
    plant_fault,
    run_fuzz,
    run_scenario,
)
from repro.fuzzlab.scenario import (
    Scenario,
    ScenarioGenerator,
    scenario_from_dict,
    scenario_to_dict,
    with_plant,
)
from repro.fuzzlab.shrink import ShrinkResult, shrink

__all__ = [
    "FuzzReport",
    "ORACLES",
    "PLANTED_FAULTS",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioVerdict",
    "ScenarioWorld",
    "ShrinkResult",
    "Violation",
    "WORLD_INTEGRITY",
    "WorldEval",
    "build_world",
    "check_world",
    "evaluate_world",
    "iter_corpus",
    "load_scenario",
    "oracle_names",
    "plant_fault",
    "replay",
    "run_fuzz",
    "run_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink",
    "with_plant",
]
