"""Differential and invariant oracles over one fuzzed campaign world.

An oracle is a named pure function from a :class:`ScenarioWorld` — the
artifacts the runner collected while driving the real attack stack
through one :class:`~repro.fuzzlab.scenario.Scenario` — to a list of
human-readable violation messages.  Empty list = the invariant held.

The registry covers every cross-cutting contract the codebase claims:

``scan_equivalence``
    every fast path in :mod:`repro.analysis.scan` (region maps, window
    classification, entropy, printable fraction, nonzero counting, the
    Aho–Corasick signature matcher) is byte-/score-identical to its
    per-byte reference in :mod:`repro.analysis.reference`, on real
    scraped residue;
``region_partition``
    a region map is a partition of the dump: starts at zero, covers
    every byte, no gaps, no overlaps, maximal runs, and the bisecting
    ``region_at`` agrees with the linear reference everywhere;
``resume_identity``
    a campaign crashed at an arbitrary journaled-outcome count and
    resumed (possibly on a different executor) writes a ``report.json``
    byte-identical to the uninterrupted run's;
``spool_integrity``
    every spooled dump reads back as bytes hashing to its own name,
    and the manifest/outcome digests all resolve in the store;
``defense_monotonicity``
    strictly strengthening a hardening profile never leaks more: a
    ``zero_on_free`` fleet leaks nothing, and doubling the scrub rate
    never increases surviving residue;
``report_consistency``
    outcomes are exactly the schedule (one per scheduled victim, with
    matching placement), streaming and batch aggregation agree, JSON
    round-trips losslessly, and the in-memory report matches the bytes
    the runtime persisted;
``extraction_equivalence``
    coalesced (batched) and word-at-a-time extraction scrape
    byte-identical residue and reach identical verdicts;
``backing_equivalence``
    re-reading a spooled object through an mmap backing
    (:meth:`DumpSpool.open <repro.campaign.runtime.spool.DumpSpool.open>`)
    yields region maps, nonzero counts, and signature scores identical
    to the slurped-bytes read of the same object;
``fabric_identity``
    the same spec served through the distributed fabric — a
    :class:`~repro.campaign.runtime.fabric.FabricCoordinator` leasing
    board shards to the scenario's worker count over a real socket,
    with an optional scripted mid-board worker kill and re-lease, and
    optional transport chaos (a
    :class:`~repro.campaign.runtime.netchaos.FlakyProxy` injecting
    scripted connection drops and full partitions) — writes a
    ``report.json`` byte-identical to the single-host run's.

Violation messages carry only deterministic facts (digests, job ids,
counts) — never wall-clock values or filesystem paths — so a fuzz
report is byte-stable for a given seed and budget.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.reference import (
    reference_classify_window,
    reference_map_dump,
    reference_match,
    reference_nonzero_bytes,
    reference_printable_fraction,
    reference_region_at,
    reference_shannon_entropy,
)
from repro.attack.carving import (
    DumpCartographer,
    Region,
    printable_fraction,
    shannon_entropy,
)
from repro.attack.identify import SignatureDatabase
from repro.campaign.report import CampaignReport, OutcomeAccumulator
from repro.campaign.schedule import CampaignSpec, VictimJob, build_schedule
from repro.campaign.worker import VictimOutcome
from repro.evaluation.metrics import nonzero_bytes
from repro.petalinux.sanitizer import SanitizePolicy

ENTROPY_TOLERANCE = 1e-9
"""Float tolerance for entropy equivalence (the fast path sums the
same terms in a different order; everything else is exact)."""

SAMPLED_WINDOWS = 8
"""Random windows / offsets probed per dump by the sampling checks."""


@dataclass(frozen=True)
class Violation:
    """One oracle's verdict that an invariant broke."""

    oracle: str
    message: str


@dataclass(frozen=True)
class RegionMapArtifact:
    """One dump slice and the fast-path region map computed over it."""

    digest: str
    data: bytes
    regions: tuple[Region, ...]


@dataclass(frozen=True)
class BackingArtifact:
    """Analysis results computed over one mmap-backed spool read.

    The runner opens each selected spool object a second time via
    ``DumpSpool.open`` and runs the zero-copy analysis paths straight
    over the mapping; the ``backing_equivalence`` oracle recomputes the
    same quantities from the slurped-bytes read and demands equality.
    """

    digest: str
    nbytes: int
    nonzero: int
    regions: tuple[Region, ...]
    matches: dict[str, tuple[float, list[str]]]


@dataclass(frozen=True)
class MonotonicityArtifact:
    """One profile-vs-strengthened-profile campaign pair."""

    base_profile: str
    stronger_profile: str
    stronger_axis: str
    """Which axis was strengthened: ``zero_on_free`` (sanitize added),
    ``scrub_rate`` (daemon rate doubled), or ``already_zeroing``."""
    base_outcomes: tuple[VictimOutcome, ...]
    stronger_outcomes: tuple[VictimOutcome, ...]


@dataclass
class ScenarioWorld:
    """Everything the runner observed driving one scenario.

    Mutable on purpose: planted faults corrupt a built world in place,
    which is how the fuzzer's own failure-detection machinery is
    itself tested end to end.
    """

    scenario: object  # repro.fuzzlab.scenario.Scenario (kept duck-typed)
    spec: CampaignSpec
    schedule: tuple[VictimJob, ...]
    database: SignatureDatabase
    cartographer: DumpCartographer
    baseline_report: CampaignReport
    baseline_report_bytes: bytes
    resumed_report_bytes: bytes
    interrupted: bool
    spool_digests: tuple[str, ...]
    manifest: tuple[dict, ...]
    dumps: list[tuple[str, bytes]]
    """Selected ``(digest, full bytes)`` pairs read back from the
    spool (capped in count, never in bytes — the hash check needs the
    whole object)."""
    region_maps: list[RegionMapArtifact]
    backings: list[BackingArtifact]
    """mmap-backed re-reads of the same selected spool objects, one
    per entry of ``dumps``."""
    alt_outcomes: tuple[VictimOutcome, ...]
    monotonicity: MonotonicityArtifact
    fabric_report_bytes: bytes
    """``report.json`` written by the distributed-fabric run of the
    same spec (coordinator + ``scenario.fabric_workers`` workers,
    optional scripted kill); the ``fabric_identity`` oracle holds it
    against ``baseline_report_bytes``."""
    notes: list[str] = field(default_factory=list)

    def sampling_rng(self, salt: int) -> random.Random:
        """A deterministic per-oracle sampling stream."""
        return random.Random((self.spec.seed + 1) * 7_919 + salt)


WORLD_INTEGRITY = "world_integrity"
"""Reserved pseudo-oracle name: the runner reports a crash *while
building the world* (a campaign, resume drill, or spool read blowing
up) under this name, so stack crashes are first-class fuzz findings —
shrinkable and replayable like any oracle violation.  Not in the
registry because it has no check function of its own."""

OracleFn = Callable[[ScenarioWorld], list[str]]

ORACLES: dict[str, OracleFn] = {}


def oracle(name: str) -> Callable[[OracleFn], OracleFn]:
    """Register a world invariant under *name*."""

    def register(fn: OracleFn) -> OracleFn:
        if name in ORACLES:
            raise ValueError(f"duplicate oracle {name!r}")
        ORACLES[name] = fn
        return fn

    return register


def oracle_names() -> tuple[str, ...]:
    """Every registered oracle, sorted."""
    return tuple(sorted(ORACLES))


def check_world(
    world: ScenarioWorld, names: tuple[str, ...] | None = None
) -> list[Violation]:
    """Run the named oracles (default: all) over one built world."""
    selected = oracle_names() if names is None else names
    unknown = sorted(set(selected) - set(ORACLES))
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; known: {list(oracle_names())}"
        )
    violations = []
    for name in selected:
        violations.extend(
            Violation(oracle=name, message=message)
            for message in ORACLES[name](world)
        )
    return violations


# -- 1. fast paths vs reference implementations -------------------------------


@oracle("scan_equivalence")
def _scan_equivalence(world: ScenarioWorld) -> list[str]:
    """Fast scan paths must match their per-byte references exactly."""
    problems = []
    rng = world.sampling_rng(salt=1)
    for artifact in world.region_maps:
        data = artifact.data
        window = world.scenario.carve_window
        reference = tuple(reference_map_dump(data, window=window))
        if artifact.regions != reference:
            problems.append(
                f"dump {artifact.digest[:12]}: fast map_dump produced "
                f"{len(artifact.regions)} region(s), reference "
                f"{len(reference)} — maps diverge"
            )
        if nonzero_bytes(data) != reference_nonzero_bytes(data):
            problems.append(
                f"dump {artifact.digest[:12]}: nonzero_bytes diverges "
                f"from reference"
            )
        for sample in _sample_windows(rng, data, window):
            fast = world.cartographer.classify_window(sample)
            slow = reference_classify_window(sample)
            if fast is not slow:
                problems.append(
                    f"dump {artifact.digest[:12]}: window classified "
                    f"{fast.value} by the fast path, {slow.value} by the "
                    f"reference"
                )
            delta = abs(
                shannon_entropy(sample) - reference_shannon_entropy(sample)
            )
            if delta > ENTROPY_TOLERANCE:
                problems.append(
                    f"dump {artifact.digest[:12]}: entropy diverges by "
                    f"{delta:.3e} (tolerance {ENTROPY_TOLERANCE:.0e})"
                )
            if printable_fraction(sample) != reference_printable_fraction(
                sample
            ):
                problems.append(
                    f"dump {artifact.digest[:12]}: printable_fraction "
                    f"diverges from reference"
                )
        if world.database.match(data) != reference_match(
            world.database, data
        ):
            problems.append(
                f"dump {artifact.digest[:12]}: Aho–Corasick signature "
                f"match diverges from scan-per-token reference"
            )
    return problems


def _sample_windows(
    rng: random.Random, data: bytes, window: int
) -> list[bytes]:
    """Deterministic window samples: edges plus random interior cuts."""
    if not data:
        return [b""]
    samples = [data[:window], data[-(len(data) % window or window):]]
    for _ in range(SAMPLED_WINDOWS):
        start = rng.randrange(len(data))
        samples.append(data[start : start + window])
    return samples


# -- 2. region maps partition the dump ----------------------------------------


@oracle("region_partition")
def _region_partition(world: ScenarioWorld) -> list[str]:
    """A region map must tile its dump exactly, with maximal runs."""
    problems = []
    rng = world.sampling_rng(salt=2)
    for artifact in world.region_maps:
        data, regions = artifact.data, artifact.regions
        tag = f"dump {artifact.digest[:12]}"
        if not data:
            if regions:
                problems.append(f"{tag}: empty dump mapped to regions")
            continue
        if not regions:
            problems.append(f"{tag}: non-empty dump mapped to no regions")
            continue
        if regions[0].start != 0:
            problems.append(
                f"{tag}: map starts at {regions[0].start:#x}, not 0"
            )
        if regions[-1].end != len(data):
            problems.append(
                f"{tag}: map ends at {regions[-1].end:#x}, dump has "
                f"{len(data):#x} bytes"
            )
        for left, right in zip(regions, regions[1:]):
            if left.end != right.start:
                problems.append(
                    f"{tag}: gap/overlap between {left.end:#x} and "
                    f"{right.start:#x}"
                )
            if left.kind is right.kind:
                problems.append(
                    f"{tag}: adjacent regions both {left.kind.value} — "
                    f"runs are not maximal"
                )
        if any(region.length <= 0 for region in regions):
            problems.append(f"{tag}: empty or negative-length region")
        totals = DumpCartographer.kind_totals(list(regions))
        if sum(totals.values()) != len(data):
            problems.append(
                f"{tag}: kind totals sum to {sum(totals.values())}, dump "
                f"has {len(data)} bytes"
            )
        offsets = [0, len(data) - 1] + [
            rng.randrange(len(data)) for _ in range(SAMPLED_WINDOWS)
        ]
        region_list = list(regions)
        for offset in offsets:
            # On a well-formed map neither lookup may raise; on a
            # corrupt one both must agree the offset is unmapped.
            try:
                fast = world.cartographer.region_at(region_list, offset)
            except ValueError:
                fast = None
            try:
                slow = reference_region_at(region_list, offset)
            except ValueError:
                slow = None
            if fast != slow:
                problems.append(
                    f"{tag}: region_at({offset:#x}) bisects to "
                    f"{_span(fast)} but linear scan finds {_span(slow)}"
                )
            elif fast is None:
                problems.append(
                    f"{tag}: offset {offset:#x} inside the dump is not "
                    f"covered by any region"
                )
    return problems


def _span(region: Region | None) -> str:
    if region is None:
        return "no region"
    return f"[{region.start:#x},{region.end:#x})"


# -- 3. resume determinism ----------------------------------------------------


@oracle("resume_identity")
def _resume_identity(world: ScenarioWorld) -> list[str]:
    """Crash + resume must reproduce the uninterrupted report, byte for byte."""
    scenario = world.scenario
    problems = []
    if not world.interrupted:
        problems.append(
            f"interrupt_after={scenario.interrupt_after} never fired "
            f"(campaign has {world.spec.victims} victims)"
        )
    if not world.baseline_report_bytes:
        problems.append("uninterrupted run produced no report.json")
    if world.resumed_report_bytes != world.baseline_report_bytes:
        problems.append(
            f"resumed report diverges from uninterrupted report "
            f"(crash after {scenario.interrupt_after} outcome(s), "
            f"{scenario.executor} -> {scenario.resume_executor}): "
            f"{_digest(world.resumed_report_bytes)} != "
            f"{_digest(world.baseline_report_bytes)}"
        )
    return problems


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:12]


# -- 4. spool round-trip integrity --------------------------------------------


@oracle("spool_integrity")
def _spool_integrity(world: ScenarioWorld) -> list[str]:
    """Content-addressed storage must read back what it was named for."""
    problems = []
    stored = set(world.spool_digests)
    for digest, data in world.dumps:
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            problems.append(
                f"spool object {digest[:12]} reads back as bytes hashing "
                f"to {actual[:12]}"
            )
    by_digest = dict(world.dumps)
    for record in world.manifest:
        if record["sha256"] not in stored:
            problems.append(
                f"manifest job {record['job_id']} names digest "
                f"{record['sha256'][:12]} which the spool does not hold"
            )
        data = by_digest.get(record["sha256"])
        if data is not None and len(data) != record["nbytes"]:
            problems.append(
                f"manifest job {record['job_id']} claims {record['nbytes']} "
                f"bytes, object holds {len(data)}"
            )
    for outcome in world.baseline_report.outcomes:
        if outcome.dump_sha256 is not None and outcome.dump_sha256 not in stored:
            problems.append(
                f"outcome job {outcome.job_id} cites dump "
                f"{outcome.dump_sha256[:12]} missing from the spool"
            )
    return problems


# -- 5. defense monotonicity --------------------------------------------------


@oracle("defense_monotonicity")
def _defense_monotonicity(world: ScenarioWorld) -> list[str]:
    """Strengthening a profile must never increase leaked residue."""
    pair = world.monotonicity
    problems = []
    base = {outcome.job_id: outcome for outcome in pair.base_outcomes}
    strong = {outcome.job_id: outcome for outcome in pair.stronger_outcomes}
    if sorted(base) != sorted(strong):
        problems.append(
            f"profile pair {pair.base_profile!r} vs "
            f"{pair.stronger_profile!r} attacked different victim sets"
        )
        return problems
    base_total = sum(outcome.residue_nbytes for outcome in pair.base_outcomes)
    strong_total = sum(
        outcome.residue_nbytes for outcome in pair.stronger_outcomes
    )
    if strong_total > base_total:
        problems.append(
            f"strengthening {pair.base_profile!r} -> "
            f"{pair.stronger_profile!r} ({pair.stronger_axis}) increased "
            f"total residue {base_total} -> {strong_total}"
        )
    if pair.stronger_axis in ("zero_on_free", "already_zeroing"):
        # Synchronous zeroing is absolute: no per-victim residue at all.
        for job_id in sorted(strong):
            outcome = strong[job_id]
            if outcome.residue_nbytes != 0:
                problems.append(
                    f"job {job_id} leaked {outcome.residue_nbytes} residue "
                    f"byte(s) under zero-on-free profile "
                    f"{pair.stronger_profile!r}"
                )
            if outcome.residue_nbytes > base[job_id].residue_nbytes:
                problems.append(
                    f"job {job_id} residue grew "
                    f"{base[job_id].residue_nbytes} -> "
                    f"{outcome.residue_nbytes} under the stronger profile"
                )
    return problems


def strengthened_axis(policy: SanitizePolicy) -> str:
    """Which monotonicity axis applies to a profile's sanitize policy."""
    if policy is SanitizePolicy.NONE:
        return "zero_on_free"
    if policy is SanitizePolicy.SCRUB_POOL:
        return "scrub_rate"
    return "already_zeroing"


# -- 6. report-aggregation consistency ----------------------------------------


@oracle("report_consistency")
def _report_consistency(world: ScenarioWorld) -> list[str]:
    """One outcome per scheduled victim; all aggregation views agree."""
    report = world.baseline_report
    problems = []
    problems.extend(_schedule_conformance(report, world.schedule))
    problems.extend(_aggregation_agreement(report, world))
    rendered = report.to_json() + "\n"
    if rendered.encode("utf-8") != world.baseline_report_bytes:
        problems.append(
            "in-memory report diverges from the report.json the runtime "
            "persisted"
        )
    round_tripped = CampaignReport.from_json(report.to_json())
    if round_tripped.to_json() != report.to_json():
        problems.append("report JSON round-trip is not lossless")
    return problems


def _schedule_conformance(
    report: CampaignReport, schedule: tuple[VictimJob, ...]
) -> list[str]:
    problems = []
    outcomes = {outcome.job_id: outcome for outcome in report.outcomes}
    jobs = {job.job_id: job for job in schedule}
    missing = sorted(set(jobs) - set(outcomes))
    extra = sorted(set(outcomes) - set(jobs))
    if missing:
        problems.append(f"scheduled job(s) {missing} have no outcome")
    if extra:
        problems.append(f"outcome(s) {extra} match no scheduled job")
    if [o.job_id for o in report.outcomes] != sorted(outcomes):
        problems.append("report outcomes are not sorted by job_id")
    for job_id in sorted(set(jobs) & set(outcomes)):
        job, outcome = jobs[job_id], outcomes[job_id]
        placement = (
            outcome.board_index,
            outcome.tenant_index,
            outcome.launch_wave,
            outcome.model_name,
        )
        scheduled = (
            job.board_index,
            job.tenant_index,
            job.launch_wave,
            job.model_name,
        )
        if placement != scheduled:
            problems.append(
                f"job {job_id} ran as {placement}, scheduled as {scheduled}"
            )
    return problems


def _aggregation_agreement(
    report: CampaignReport, world: ScenarioWorld
) -> list[str]:
    problems = []
    tally = OutcomeAccumulator.of(report.outcomes)
    shuffled = list(report.outcomes)
    world.sampling_rng(salt=6).shuffle(shuffled)
    reordered = OutcomeAccumulator.of(shuffled)
    if tally.victims != report.victims:
        problems.append(
            f"accumulator counts {tally.victims} victims, report "
            f"{report.victims}"
        )
    succeeded = sum(1 for o in report.outcomes if o.succeeded)
    if tally.succeeded != succeeded:
        problems.append(
            f"accumulator counts {tally.succeeded} successes, outcomes "
            f"say {succeeded}"
        )
    if (tally.per_model(), tally.per_board()) != (
        reordered.per_model(),
        reordered.per_board(),
    ):
        problems.append("aggregation depends on outcome fold order")
    if (report.per_model(), report.per_board()) != (
        tally.per_model(),
        tally.per_board(),
    ):
        problems.append("report breakdowns diverge from streaming tallies")
    model_victims = sum(row.victims for row in report.per_model())
    board_victims = sum(row.victims for row in report.per_board())
    if model_victims != report.victims or board_victims != report.victims:
        problems.append(
            f"breakdown victim counts (model={model_victims}, "
            f"board={board_victims}) do not sum to {report.victims}"
        )
    return problems


# -- 7. coalesced vs word-at-a-time extraction --------------------------------


@oracle("extraction_equivalence")
def _extraction_equivalence(world: ScenarioWorld) -> list[str]:
    """Batched and word-mode extraction must scrape identical residue."""
    problems = []
    base = {o.job_id: o for o in world.baseline_report.outcomes}
    alt = {o.job_id: o for o in world.alt_outcomes}
    if sorted(base) != sorted(alt):
        problems.append(
            "coalesce-flipped campaign attacked a different victim set"
        )
        return problems
    for job_id in sorted(base):
        one, other = base[job_id], alt[job_id]
        fields = (
            ("dump_sha256", one.dump_sha256, other.dump_sha256),
            ("residue_nbytes", one.residue_nbytes, other.residue_nbytes),
            ("nbytes", one.nbytes, other.nbytes),
            ("pages_read", one.pages_read, other.pages_read),
            ("identified_model", one.identified_model, other.identified_model),
            ("pixel_match_rate", one.pixel_match_rate, other.pixel_match_rate),
            ("failed_step", one.failed_step, other.failed_step),
        )
        for name, lhs, rhs in fields:
            if lhs != rhs:
                problems.append(
                    f"job {job_id}: {name} differs between coalesced and "
                    f"word-mode extraction ({lhs!r} != {rhs!r})"
                )
    return problems


# -- 8. mmap-backed vs bytes-backed analysis ----------------------------------


@oracle("backing_equivalence")
def _backing_equivalence(world: ScenarioWorld) -> list[str]:
    """A spool object must analyze identically under either backing.

    The runner computed ``world.backings`` straight over mmap views
    (``DumpSpool.open``); this oracle recomputes the same quantities
    from the slurped ``world.dumps`` bytes with the same cartographer
    and database.  Any divergence means the zero-copy read path and
    the copying read path disagree about the same on-disk object.
    """
    problems = []
    by_digest = dict(world.dumps)
    probed = sorted(artifact.digest for artifact in world.backings)
    if probed != sorted(by_digest):
        problems.append(
            f"mmap probes cover {len(probed)} spool object(s), bytes "
            f"reads cover {len(by_digest)} — the backings were taken "
            f"over different object sets"
        )
        return problems
    for artifact in world.backings:
        data = by_digest[artifact.digest]
        tag = f"dump {artifact.digest[:12]}"
        if artifact.nbytes != len(data):
            problems.append(
                f"{tag}: mmap backing holds {artifact.nbytes} byte(s), "
                f"bytes read holds {len(data)}"
            )
            continue
        if artifact.nonzero != nonzero_bytes(data):
            problems.append(
                f"{tag}: nonzero count is {artifact.nonzero} over the "
                f"mmap backing, {nonzero_bytes(data)} over bytes"
            )
        regions = tuple(world.cartographer.map_dump(data))
        if artifact.regions != regions:
            problems.append(
                f"{tag}: map_dump produced {len(artifact.regions)} "
                f"region(s) over the mmap backing, {len(regions)} over "
                f"bytes — backings diverge"
            )
        if artifact.matches != world.database.match(data):
            problems.append(
                f"{tag}: signature scores diverge between mmap and "
                f"bytes backings"
            )
    return problems


# -- 9. distributed fabric vs single host -------------------------------------


@oracle("fabric_identity")
def _fabric_identity(world: ScenarioWorld) -> list[str]:
    """A distributed run must reproduce the single-host report exactly.

    The runner served the scenario's spec through a real coordinator
    socket with ``scenario.fabric_workers`` concurrent workers and —
    when the scenario scripts them — a worker killed mid-board whose
    lease expired and re-issued, scripted connection drops forcing
    reconnect-and-replay, and full partitions riding a ``FlakyProxy``.
    Worker count, claim interleaving, crash choreography, and network
    weather are all implementation detail; the report bytes are the
    contract.
    """
    scenario = world.scenario
    problems = []
    if not world.fabric_report_bytes:
        problems.append("fabric run produced no report.json")
        return problems
    if world.fabric_report_bytes != world.baseline_report_bytes:
        kill = scenario.fabric_kill_after_waves
        drop = scenario.fabric_drop_after_ops
        chaos = [
            "no scripted kill" if kill is None
            else f"kill after {kill} wave(s)",
            "clean wire" if drop is None
            else f"drop every {drop} op(s)",
        ]
        if scenario.fabric_partition_ticks:
            chaos.append(
                f"{scenario.fabric_partition_ticks} partition tick(s)"
            )
        problems.append(
            f"distributed report diverges from single-host report "
            f"({scenario.fabric_workers} worker(s), "
            f"{', '.join(chaos)}): "
            f"{_digest(world.fabric_report_bytes)} != "
            f"{_digest(world.baseline_report_bytes)}"
        )
    return problems
