"""Dump characterization — mapping what a terminated process left behind.

The paper's contribution 4 is "a methodology for characterizing
terminated processes and accessing their private data".  Before the
targeted steps (grep for names, slice at profiled offsets), an analyst
wants a map of the dump: where the readable metadata is, where the
quantized weight arrays are, where an image-like constant block sits,
and what is just empty.

:class:`DumpCartographer` produces that map from byte statistics alone
— no profiles needed — by classifying fixed windows and merging
adjacent windows of the same kind:

==============  ====================================================
kind            signature
==============  ====================================================
ZERO            every byte 0x00 (never-written or scrubbed)
CONSTANT        a single repeated non-zero byte (marker blocks)
TEXT            mostly printable ASCII (paths, names, metadata)
QUANTIZED       small-alphabet symmetric data (int8 weight arrays)
RANDOM          near-uniform bytes (runtime structures, ciphertext)
MIXED           none of the above (pixel data, headers, packed misc)
==============  ====================================================

The per-window statistics come from the shared single-pass engine in
:mod:`repro.analysis.scan` — byte-class translate tables, batched
histograms, a precomputed log2 table — instead of per-byte Python
loops; the original implementations survive in
:mod:`repro.analysis.reference` and the equivalence is regression-
tested and re-verified by ``tools/bench_runner.py``.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass

from repro.analysis.scan import (
    KIND_CONSTANT,
    KIND_MIXED,
    KIND_QUANTIZED,
    KIND_RANDOM,
    KIND_TEXT,
    KIND_ZERO,
    ScanCore,
)


class RegionKind(enum.Enum):
    """Classification of one region of a scraped dump."""

    ZERO = "zero"
    CONSTANT = "constant"
    TEXT = "text"
    QUANTIZED = "quantized"
    RANDOM = "random"
    MIXED = "mixed"


_KIND_BY_CODE: dict[int, RegionKind] = {
    KIND_ZERO: RegionKind.ZERO,
    KIND_CONSTANT: RegionKind.CONSTANT,
    KIND_TEXT: RegionKind.TEXT,
    KIND_RANDOM: RegionKind.RANDOM,
    KIND_QUANTIZED: RegionKind.QUANTIZED,
    KIND_MIXED: RegionKind.MIXED,
}

_SHARED_CORE = ScanCore()
"""The process-wide default scan core: every cartographer (and the
module-level entropy/printable helpers) shares it, so its scratch
tables warm once and serve all campaign worker threads.  Pass
``core=`` to isolate a scan (e.g. the benchmark runner)."""


@dataclass(frozen=True)
class Region:
    """A maximal run of same-kind windows."""

    start: int
    end: int
    kind: RegionKind

    @property
    def length(self) -> int:
        """Region size in bytes."""
        return self.end - self.start

    def contains(self, offset: int) -> bool:
        """Whether *offset* falls inside the region."""
        return self.start <= offset < self.end


def shannon_entropy(data) -> float:
    """Bits of entropy per byte of *data* (0.0 for empty input)."""
    if len(data) == 0:
        return 0.0
    return _SHARED_CORE.entropy(data)


def printable_fraction(data) -> float:
    """Fraction of bytes in the printable ASCII range (1.0 for empty)."""
    if len(data) == 0:
        return 1.0
    return _SHARED_CORE.printable_count(data) / len(data)


class DumpCartographer:
    """Window-classify a dump and merge into regions."""

    def __init__(
        self,
        window: int = 256,
        text_threshold: float = 0.85,
        random_entropy: float = 7.0,
        quantized_max_alphabet: int = 48,
        core: ScanCore | None = None,
    ) -> None:
        if window < 16:
            raise ValueError(f"window must be >= 16 bytes, got {window}")
        self._window = window
        self._text_threshold = text_threshold
        self._random_entropy = random_entropy
        self._quantized_max_alphabet = quantized_max_alphabet
        self._core = core if core is not None else _SHARED_CORE

    def classify_window(self, data) -> RegionKind:
        """Classify one window of any bytes-like buffer (never copied)."""
        code = self._core.classify_span(
            data, 0, len(data),
            self._text_threshold,
            self._random_entropy,
            self._quantized_max_alphabet,
        )
        return _KIND_BY_CODE[code]

    def map_dump(self, data) -> list[Region]:
        """The full region map of *data*, adjacent windows merged.

        *data* may be bytes, bytearray, memoryview or an mmap-backed
        spool object; the scan never materializes a copy of it.
        """
        codes = self._core.classify_windows(
            data, self._window,
            self._text_threshold,
            self._random_entropy,
            self._quantized_max_alphabet,
        )
        if not codes:
            return []
        regions: list[Region] = []
        window = self._window
        run_start = 0
        run_code = codes[0]
        for index in range(1, len(codes)):
            if codes[index] != run_code:
                boundary = index * window
                regions.append(
                    Region(run_start, boundary, _KIND_BY_CODE[run_code])
                )
                run_start = boundary
                run_code = codes[index]
        regions.append(Region(run_start, len(data), _KIND_BY_CODE[run_code]))
        return regions

    def region_at(self, regions: list[Region], offset: int) -> Region:
        """The region containing *offset*; raises ``ValueError`` outside.

        Regions are sorted and disjoint by construction, so the lookup
        bisects over region starts instead of scanning linearly.
        """
        index = (
            bisect.bisect_right(regions, offset, key=lambda r: r.start) - 1
        )
        if index >= 0 and regions[index].contains(offset):
            return regions[index]
        raise ValueError(f"offset {offset:#x} outside the mapped dump")

    @staticmethod
    def kind_totals(regions: list[Region]) -> dict[RegionKind, int]:
        """Total bytes per kind."""
        totals: dict[RegionKind, int] = {kind: 0 for kind in RegionKind}
        for region in regions:
            totals[region.kind] += region.length
        return totals

    @staticmethod
    def render(regions: list[Region], limit: int = 40) -> str:
        """Human-readable region table (first *limit* regions)."""
        lines = [f"{'start':>10} {'end':>10} {'bytes':>9}  kind"]
        for region in regions[:limit]:
            lines.append(
                f"{region.start:>#10x} {region.end:>#10x} "
                f"{region.length:>9}  {region.kind.value}"
            )
        if len(regions) > limit:
            lines.append(f"... {len(regions) - limit} more regions")
        return "\n".join(lines)
