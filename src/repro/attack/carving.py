"""Dump characterization — mapping what a terminated process left behind.

The paper's contribution 4 is "a methodology for characterizing
terminated processes and accessing their private data".  Before the
targeted steps (grep for names, slice at profiled offsets), an analyst
wants a map of the dump: where the readable metadata is, where the
quantized weight arrays are, where an image-like constant block sits,
and what is just empty.

:class:`DumpCartographer` produces that map from byte statistics alone
— no profiles needed — by classifying fixed windows and merging
adjacent windows of the same kind:

==============  ====================================================
kind            signature
==============  ====================================================
ZERO            every byte 0x00 (never-written or scrubbed)
CONSTANT        a single repeated non-zero byte (marker blocks)
TEXT            mostly printable ASCII (paths, names, metadata)
QUANTIZED       small-alphabet symmetric data (int8 weight arrays)
RANDOM          near-uniform bytes (runtime structures, ciphertext)
MIXED           none of the above (pixel data, headers, packed misc)
==============  ====================================================
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from dataclasses import dataclass


class RegionKind(enum.Enum):
    """Classification of one region of a scraped dump."""

    ZERO = "zero"
    CONSTANT = "constant"
    TEXT = "text"
    QUANTIZED = "quantized"
    RANDOM = "random"
    MIXED = "mixed"


@dataclass(frozen=True)
class Region:
    """A maximal run of same-kind windows."""

    start: int
    end: int
    kind: RegionKind

    @property
    def length(self) -> int:
        """Region size in bytes."""
        return self.end - self.start

    def contains(self, offset: int) -> bool:
        """Whether *offset* falls inside the region."""
        return self.start <= offset < self.end


def shannon_entropy(data: bytes) -> float:
    """Bits of entropy per byte of *data* (0.0 for empty input)."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def printable_fraction(data: bytes) -> float:
    """Fraction of bytes in the printable ASCII range (1.0 for empty)."""
    if not data:
        return 1.0
    printable = sum(1 for byte in data if 0x20 <= byte <= 0x7E or byte == 0x00)
    return printable / len(data)


class DumpCartographer:
    """Window-classify a dump and merge into regions."""

    def __init__(
        self,
        window: int = 256,
        text_threshold: float = 0.85,
        random_entropy: float = 7.0,
        quantized_max_alphabet: int = 48,
    ) -> None:
        if window < 16:
            raise ValueError(f"window must be >= 16 bytes, got {window}")
        self._window = window
        self._text_threshold = text_threshold
        self._random_entropy = random_entropy
        self._quantized_max_alphabet = quantized_max_alphabet

    def classify_window(self, data: bytes) -> RegionKind:
        """Classify one window of bytes."""
        if not data or data == b"\x00" * len(data):
            return RegionKind.ZERO
        distinct = set(data)
        if len(distinct) == 1:
            return RegionKind.CONSTANT
        if printable_fraction(data) >= self._text_threshold:
            return RegionKind.TEXT
        entropy = shannon_entropy(data)
        # A window of n bytes cannot exceed log2(n) bits of measured
        # entropy, so the uniform-randomness threshold scales down for
        # short windows.
        effective_threshold = min(
            self._random_entropy, math.log2(len(data)) - 0.7
        )
        if entropy >= effective_threshold:
            return RegionKind.RANDOM
        if len(distinct) <= self._quantized_max_alphabet:
            # Small alphabet straddling 0x00/0xFF: signed int8 values
            # near zero, the footprint of quantized weights.
            low_magnitude = sum(
                1 for byte in data if byte < 64 or byte >= 192
            )
            if low_magnitude / len(data) > 0.9:
                return RegionKind.QUANTIZED
        return RegionKind.MIXED

    def map_dump(self, data: bytes) -> list[Region]:
        """The full region map of *data*, adjacent windows merged."""
        regions: list[Region] = []
        for start in range(0, len(data), self._window):
            window = data[start : start + self._window]
            kind = self.classify_window(window)
            end = min(start + self._window, len(data))
            if regions and regions[-1].kind is kind and regions[-1].end == start:
                regions[-1] = Region(regions[-1].start, end, kind)
            else:
                regions.append(Region(start, end, kind))
        return regions

    def region_at(self, regions: list[Region], offset: int) -> Region:
        """The region containing *offset*; raises ``ValueError`` outside."""
        for region in regions:
            if region.contains(offset):
                return region
        raise ValueError(f"offset {offset:#x} outside the mapped dump")

    @staticmethod
    def kind_totals(regions: list[Region]) -> dict[RegionKind, int]:
        """Total bytes per kind."""
        totals: dict[RegionKind, int] = {kind: 0 for kind in RegionKind}
        for region in regions:
            totals[region.kind] += region.length
        return totals

    @staticmethod
    def render(regions: list[Region], limit: int = 40) -> str:
        """Human-readable region table (first *limit* regions)."""
        lines = [f"{'start':>10} {'end':>10} {'bytes':>9}  kind"]
        for region in regions[:limit]:
            lines.append(
                f"{region.start:>#10x} {region.end:>#10x} "
                f"{region.length:>9}  {region.kind.value}"
            )
        if len(regions) > limit:
            lines.append(f"... {len(regions) - limit} more regions")
        return "\n".join(lines)
