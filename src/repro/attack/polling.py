"""Step 1 — polling for the victim pid.

"The adversary continuously monitors the system to identify the
relevant process of interest, utilizing commands like ``ps -ef``"
(paper §III).  The poller runs from the *attacker's* shell; on the
vulnerable board ``ps`` shows every user's processes, so a victim
command line — including the xmodel path it was launched with — is
visible across user spaces (paper Figs. 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VictimNotFoundError
from repro.petalinux.shell import Shell


@dataclass(frozen=True)
class VictimSighting:
    """A process matching the victim pattern, as seen in ``ps -ef``."""

    pid: int
    uid: str
    tty: str
    cmdline: str

    def describe(self) -> str:
        """One-line summary for the attack report."""
        return f"pid {self.pid} (user {self.uid}, {self.tty}): {self.cmdline}"


class PidPoller:
    """Watches the process table from the attacker's terminal."""

    def __init__(self, shell: Shell, poll_limit: int = 1000) -> None:
        self._shell = shell
        self._poll_limit = poll_limit
        self.polls_performed = 0

    def snapshot(self) -> str:
        """One raw ``ps -ef`` capture (the Fig. 5/6 artifact)."""
        self.polls_performed += 1
        return self._shell.ps_ef()

    def find_victim(
        self, pattern: str, exclude_pids: frozenset[int] = frozenset()
    ) -> VictimSighting | None:
        """Scan the current process list for *pattern* in the CMD column."""
        sightings = self.find_victims(pattern, exclude_pids)
        return sightings[0] if sightings else None

    def find_victims(
        self, pattern: str, exclude_pids: frozenset[int] = frozenset()
    ) -> list[VictimSighting]:
        """All processes matching *pattern*, ascending pid.

        Busy boards run several inference jobs; the attacker snapshots
        them all and works through the list as each terminates.
        *exclude_pids* skips processes already claimed by another
        attack in flight — how a campaign disambiguates co-resident
        victims running the same model.
        """
        self.polls_performed += 1
        return [
            VictimSighting(pid=row.pid, uid=row.uid, tty=row.tty, cmdline=row.cmd)
            for row in self._shell.ps_rows()
            if pattern in row.cmd and row.pid not in exclude_pids
        ]

    def wait_for_victim(
        self, pattern: str, exclude_pids: frozenset[int] = frozenset()
    ) -> VictimSighting:
        """Poll until a process matching *pattern* appears.

        The simulation is single-threaded, so "waiting" advances the
        kernel clock one tick per poll; the victim must already be
        running (or be started by a scheduled kernel event) for the
        sighting to occur.  Raises
        :class:`~repro.errors.VictimNotFoundError` after the
        configured poll budget.
        """
        for _ in range(self._poll_limit):
            sighting = self.find_victim(pattern, exclude_pids)
            if sighting is not None:
                return sighting
            self._shell.kernel.tick()
        raise VictimNotFoundError(
            f"no process matching {pattern!r} after {self._poll_limit} polls"
        )

    def is_alive(self, pid: int) -> bool:
        """Whether *pid* still shows in the process list."""
        self.polls_performed += 1
        return self._shell.kernel.has_process(pid)

    def wait_for_termination(self, pid: int) -> int:
        """Poll until *pid* disappears from ``ps`` (paper Fig. 9).

        Returns the number of polls it took.  Each unsuccessful poll
        advances the kernel clock, so background daemons (e.g. the
        scrub pool of the defended configuration) make progress while
        the attacker waits — the realistic interleaving.
        """
        for poll in range(1, self._poll_limit + 1):
            if not self.is_alive(pid):
                return poll
            self._shell.kernel.tick()
        raise VictimNotFoundError(
            f"pid {pid} still alive after {self._poll_limit} polls"
        )
