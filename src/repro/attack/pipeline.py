"""The end-to-end memory scraping attack.

Orchestrates the paper's four steps against one booted board.  The
simulation is single-threaded, so the pipeline exposes explicit phase
methods — the experiment driver interleaves victim actions (launch,
terminate) between them, mirroring the two-terminal choreography of
the paper's §IV:

>>> attack = MemoryScrapingAttack(attacker_shell, profiles)
>>> sighting = attack.observe_victim("resnet50_pt")   # step 1
>>> attack.harvest_addresses()                        # step 2 (victim alive)
>>> victim_run.terminate()                            # victim ends
>>> attack.extract()                                  # step 3
>>> report = attack.analyze()                         # steps 4a + 4b

``execute`` wraps the whole dance when the caller hands over a
terminate callback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.attack.addressing import (
    AddressHarvester,
    HarvestedRange,
    TranslationCache,
)
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper, ScrapedDump
from repro.attack.identify import (
    IdentificationResult,
    ModelIdentifier,
    SignatureDatabase,
)
from repro.attack.polling import PidPoller, VictimSighting
from repro.attack.profiling import ProfileStore
from repro.attack.reconstruct import ImageReconstructor, ReconstructionResult
from repro.errors import AttackError, ReconstructionError
from repro.petalinux.shell import Shell
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.utils.buffers import BufferPool


class AttackPhase(enum.Enum):
    """Pipeline progress marker."""

    IDLE = "idle"
    VICTIM_OBSERVED = "victim_observed"
    ADDRESSES_HARVESTED = "addresses_harvested"
    EXTRACTED = "extracted"
    ANALYZED = "analyzed"


@dataclass
class AttackReport:
    """Everything the attack learned, plus the figure artifacts."""

    sighting: VictimSighting
    harvested: HarvestedRange
    termination_polls: int
    dump: ScrapedDump
    identification: IdentificationResult | None = None
    reconstruction: ReconstructionResult | None = None
    ps_before: str = ""
    ps_during: str = ""
    ps_after: str = ""

    @property
    def succeeded(self) -> bool:
        """Whether the attack attributed a model to the residue."""
        return self.identification is not None

    def save_artifacts(self, directory: str) -> list[str]:
        """Write the attack evidence to *directory*; returns the paths.

        Mirrors the paper's working files: the raw dump, the hexdump
        log the analysis greps (named ``<pid>_hexdump.log`` like the
        paper's ``1391_hexdump.log``), the reconstructed image as a
        viewable PPM, and the rendered report.
        """
        import os

        os.makedirs(directory, exist_ok=True)
        written = []

        dump_path = os.path.join(directory, f"{self.sighting.pid}_heap.bin")
        with open(dump_path, "wb") as handle:
            handle.write(self.dump.data)
        written.append(dump_path)

        log_path = os.path.join(directory, f"{self.sighting.pid}_hexdump.log")
        with open(log_path, "w") as handle:
            handle.write("\n".join(self.dump.hexdump.rows()) + "\n")
        written.append(log_path)

        if self.reconstruction is not None:
            image_path = os.path.join(
                directory, f"{self.sighting.pid}_reconstructed.ppm"
            )
            with open(image_path, "wb") as handle:
                handle.write(self.reconstruction.image.to_ppm())
            written.append(image_path)

        report_path = os.path.join(directory, "attack_report.txt")
        with open(report_path, "w") as handle:
            handle.write(self.render() + "\n")
        written.append(report_path)
        return written

    def render(self) -> str:
        """Multi-section text report mirroring the paper's §V flow."""
        lines = [
            "=== Memory Scraping Attack report ===",
            f"Step 1  victim: {self.sighting.describe()}",
            (
                f"Step 2  heap [{self.harvested.heap_start:#x}, "
                f"{self.harvested.heap_end:#x}) — "
                f"{len(self.harvested.present_pages())} pages translated"
            ),
            (
                f"Step 3  termination after {self.termination_polls} polls; "
                f"scraped {self.dump.nbytes} bytes "
                f"({self.dump.devmem_reads} devmem reads)"
            ),
        ]
        if self.identification is not None:
            lines.append(f"Step 4a {self.identification.describe()}")
            for hit in self.identification.grep_hits:
                lines.append(f"        row {hit.row_number}: {hit.row_text}")
        else:
            lines.append("Step 4a model identification FAILED")
        if self.reconstruction is not None:
            lines.append(f"Step 4b {self.reconstruction.describe()}")
        else:
            lines.append("Step 4b image reconstruction FAILED")
        return "\n".join(lines)


class MemoryScrapingAttack:
    """The attacker-side state machine."""

    def __init__(
        self,
        shell: Shell,
        profiles: ProfileStore,
        config: AttackConfig | None = None,
        database: SignatureDatabase | None = None,
        translation_cache: TranslationCache | None = None,
        buffer_pool: "BufferPool | None" = None,
    ) -> None:
        self._shell = shell
        self._profiles = profiles
        self._config = config or AttackConfig()
        self._database = database or SignatureDatabase.from_profiles(profiles)
        self._translation_cache = translation_cache
        self._poller = PidPoller(shell, poll_limit=self._config.poll_limit)
        self._harvester = AddressHarvester(
            shell.procfs, caller=shell.user, cache=translation_cache
        )
        self._scraper = MemoryScraper(
            shell.devmem_tool,
            caller=shell.user,
            config=self._config,
            buffer_pool=buffer_pool,
        )
        self.phase = AttackPhase.IDLE
        self._sighting: VictimSighting | None = None
        self._harvested: HarvestedRange | None = None
        self._dump: ScrapedDump | None = None
        self._termination_polls = 0
        # Surveillance baseline: the process list when the attacker
        # started watching (the paper's Fig. 5 snapshot).
        self._ps_before = self._poller.snapshot()
        self._ps_during = ""
        self._ps_after = ""

    def _require_phase(self, *allowed: AttackPhase) -> None:
        if self.phase not in allowed:
            raise AttackError(
                f"operation invalid in phase {self.phase.value}; "
                f"needs one of {[phase.value for phase in allowed]}"
            )

    # -- step 1 -------------------------------------------------------------

    def observe_victim(
        self, pattern: str, exclude_pids: frozenset[int] = frozenset()
    ) -> VictimSighting:
        """Poll ``ps -ef`` until the victim appears.

        *exclude_pids* skips processes another attack in flight has
        already claimed (campaigns run several attacks per board).
        """
        self._require_phase(AttackPhase.IDLE)
        self._sighting = self._poller.wait_for_victim(pattern, exclude_pids)
        self._ps_during = self._poller.snapshot()
        self.phase = AttackPhase.VICTIM_OBSERVED
        return self._sighting

    # -- step 2 -------------------------------------------------------------

    def harvest_addresses(self) -> HarvestedRange:
        """Snapshot heap VA range and all VA→PA translations."""
        self._require_phase(AttackPhase.VICTIM_OBSERVED)
        assert self._sighting is not None
        self._harvested = self._harvester.harvest(self._sighting.pid)
        self.phase = AttackPhase.ADDRESSES_HARVESTED
        return self._harvested

    # -- step 3 -------------------------------------------------------------

    def extract(self) -> ScrapedDump:
        """Wait for the pid to vanish, then scrape the residue."""
        self._require_phase(AttackPhase.ADDRESSES_HARVESTED)
        assert self._sighting is not None and self._harvested is not None
        self._termination_polls = self._poller.wait_for_termination(
            self._sighting.pid
        )
        # The pid is gone: its cached translations must never serve a
        # future process that happens to reuse the number.
        if self._translation_cache is not None:
            self._translation_cache.invalidate(self._sighting.pid)
        self._ps_after = self._poller.snapshot()
        self._dump = self._scraper.scrape(self._harvested)
        self.phase = AttackPhase.EXTRACTED
        return self._dump

    # -- step 4 -------------------------------------------------------------

    def analyze(self) -> AttackReport:
        """Identify the model and reconstruct the input image."""
        self._require_phase(AttackPhase.EXTRACTED)
        assert (
            self._sighting is not None
            and self._harvested is not None
            and self._dump is not None
        )
        report = AttackReport(
            sighting=self._sighting,
            harvested=self._harvested,
            termination_polls=self._termination_polls,
            dump=self._dump,
            ps_before=self._ps_before,
            ps_during=self._ps_during,
            ps_after=self._ps_after,
        )
        identifier = ModelIdentifier(self._database)
        identification = identifier.identify(self._dump)
        report.identification = identification
        if identification.best_model in self._profiles:
            reconstructor = ImageReconstructor(self._config)
            try:
                report.reconstruction = reconstructor.reconstruct(
                    self._dump, self._profiles.get(identification.best_model)
                )
            except ReconstructionError:
                report.reconstruction = None
        self.phase = AttackPhase.ANALYZED
        return report

    # -- convenience --------------------------------------------------------

    def execute(
        self, pattern: str, terminate_victim: Callable[[], None]
    ) -> AttackReport:
        """Run all four steps; *terminate_victim* ends the victim between
        address harvesting and extraction (the two-terminal interleaving)."""
        self.observe_victim(pattern)
        self.harvest_addresses()
        terminate_victim()
        self.extract()
        return self.analyze()
