"""Attack configuration shared by all pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass

from repro.vitis.image import PROFILING_MARKER, WHITE_MARKER


@dataclass(frozen=True)
class AttackConfig:
    """Tunables of the memory scraping attack.

    The defaults replicate the paper's setup: 32-bit ``devmem`` reads,
    the ``0x555555`` profiling marker and the ``0xFFFFFF`` corrupted
    image identifier, string extraction at >= 6 printable characters.
    """

    word_bits: int = 32
    bulk_reads: bool = False
    """False = one devmem invocation per word, as the paper automates.
    True = page-granular bulk reads; identical bytes, faster wall-clock
    (used by the large-footprint benchmarks)."""

    coalesce_reads: bool = False
    """True = merge physically contiguous present pages into single
    bulk reads (the campaign engine's hot path).  The deterministic
    allocator hands out long contiguous frame runs, so a whole heap
    often collapses into a handful of devmem invocations.  Takes
    precedence over ``bulk_reads``; bytes are identical in all three
    modes (asserted by the regression tests)."""

    poll_limit: int = 1000
    """Maximum ps polls before declaring the victim absent."""

    string_min_length: int = 6
    marker_min_rows: int = 2
    profiling_marker: tuple[int, int, int] = PROFILING_MARKER
    corruption_marker: tuple[int, int, int] = WHITE_MARKER

    def __post_init__(self) -> None:
        if self.word_bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported word width {self.word_bits}")
        if self.poll_limit <= 0:
            raise ValueError("poll_limit must be positive")
        if self.string_min_length < 1:
            raise ValueError("string_min_length must be >= 1")
