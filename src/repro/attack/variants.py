"""Attack variants that need fewer leaked interfaces than the paper's.

The paper's conclusion argues PetaLinux's *determinism* is a hole in
itself: "it does not use any kind of randomization in physical page
layout.  This allows an attacker to learn about input or output data
offsets, simply by learning from running the same program with its own
input data."  Two variants make that argument concrete:

- :class:`ProfiledPhysicalAttack` — no pagemap access at all.  The
  adversary profiles the victim application on an identical reference
  board, recording the *physical* page list its heap lands on; on the
  target board the deterministic allocator reproduces the same list,
  so post-termination ``devmem`` reads need no step 2.  Physical ASLR
  defeats exactly this variant (and only this one).
- :class:`FullScanAttack` — no procfs at all.  The adversary sweeps
  the user DRAM window with ``devmem`` and looks for model signatures
  and marker runs.  Works whenever residue exists anywhere; only
  sanitization (or closing /dev/mem) stops it.

Together with the paper's pagemap-assisted pipeline they form the
attack x defense cross-product measured by
``benchmarks/bench_ext_variants.py``.

Usage — profile on a reference board, replay on the target:

>>> from repro.attack import SignatureDatabase
>>> from repro.attack.variants import (
...     ProfiledPhysicalAttack, profile_physical_layout,
... )
>>> from repro.evaluation.scenarios import BoardSession
>>> reference = BoardSession.boot(input_hw=32)
>>> layout = profile_physical_layout(
...     reference.attacker_shell, "resnet50_pt", input_hw=32
... )
>>> profiles = reference.profile(["resnet50_pt", "squeezenet_pt"])
>>> target = BoardSession.boot(input_hw=32)       # identical fresh board
>>> run = target.victim_application().launch("resnet50_pt")
>>> run.terminate()                               # victim ends...
>>> outcome = ProfiledPhysicalAttack(             # ...no pagemap needed
...     target.attacker_shell, layout,
...     SignatureDatabase.from_profiles(profiles),
... ).run()
>>> outcome.leaked
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.config import AttackConfig
from repro.attack.extraction import ScrapedDump
from repro.attack.identify import IdentificationResult, ModelIdentifier, SignatureDatabase
from repro.attack.profiling import ModelProfile, ProfileStore
from repro.errors import (
    AttackError,
    ExtractionError,
    PermissionDeniedError,
    ReconstructionError,
)
from repro.mmu.paging import PAGE_SIZE
from repro.petalinux.shell import Shell
from repro.vitis.image import Image


@dataclass(frozen=True)
class PhysicalLayoutProfile:
    """Physical page list a model's heap occupies on a reference board.

    Valid for the target board only while its allocation sequence from
    boot matches the reference's — the determinism the paper calls out.
    """

    model_name: str
    physical_pages: tuple[int, ...]
    image_offset: int
    image_height: int
    image_width: int

    @property
    def image_nbytes(self) -> int:
        """Raw RGB24 size of the profiled input buffer."""
        return self.image_height * self.image_width * 3


def profile_physical_layout(
    reference_shell: Shell,
    model_name: str,
    input_hw: int = 32,
    config: AttackConfig | None = None,
) -> PhysicalLayoutProfile:
    """Learn the physical page list on a board the adversary controls.

    Runs the application as the adversary's own process on the (fresh)
    reference board, harvests its translations — allowed there; it is
    the adversary's board — and records physical pages plus the marker
    offset.
    """
    from repro.attack.addressing import AddressHarvester
    from repro.attack.extraction import MemoryScraper
    from repro.vitis.app import VictimApplication

    config = config or AttackConfig()
    marker = Image.solid(input_hw, input_hw, config.profiling_marker)
    run = VictimApplication(reference_shell, input_hw=input_hw).launch(
        model_name, image=marker
    )
    harvester = AddressHarvester(
        reference_shell.procfs, caller=reference_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    scraper = MemoryScraper(
        reference_shell.devmem_tool, caller=reference_shell.user, config=config
    )
    dump = scraper.scrape(harvested)
    offset = dump.data.find(bytes(config.profiling_marker) * 16)
    if offset < 0:
        raise AttackError(
            f"physical profiling failed: marker absent from {model_name} dump"
        )
    return PhysicalLayoutProfile(
        model_name=model_name,
        physical_pages=tuple(
            entry.physical_page_address for entry in harvested.present_pages()
        ),
        image_offset=offset,
        image_height=input_hw,
        image_width=input_hw,
    )


@dataclass
class VariantOutcome:
    """What a variant attack recovered."""

    dump: ScrapedDump | None
    identification: IdentificationResult | None
    image: Image | None

    @property
    def leaked(self) -> bool:
        """Whether any private information was extracted."""
        return self.identification is not None or self.image is not None


class ProfiledPhysicalAttack:
    """Variant A: replay profiled physical addresses — no pagemap.

    Requires only ``ps`` (to wait out the victim) and ``devmem``.
    """

    def __init__(
        self,
        shell: Shell,
        layout: PhysicalLayoutProfile,
        database: SignatureDatabase,
        config: AttackConfig | None = None,
    ) -> None:
        self._shell = shell
        self._layout = layout
        self._database = database
        self._config = config or AttackConfig()

    def run(self) -> VariantOutcome:
        """Read the profiled pages on the target board and analyze.

        The victim must already have terminated; the caller does the
        waiting (this variant's step 1 is the paper's step 1).
        """
        chunks = []
        try:
            for physical in self._layout.physical_pages:
                chunks.append(
                    self._shell.devmem_tool.read_bytes(
                        physical, PAGE_SIZE, self._shell.user
                    )
                )
        except PermissionDeniedError as error:
            raise ExtractionError(f"devmem blocked: {error}") from error
        dump = ScrapedDump(
            pid=-1,
            heap_start=0,
            data=b"".join(chunks),
            pages_read=len(chunks),
            pages_skipped=0,
            devmem_reads=len(chunks),
        )
        identification = None
        try:
            identification = ModelIdentifier(self._database).identify(dump)
        except AttackError:
            pass
        image = None
        start = self._layout.image_offset
        end = start + self._layout.image_nbytes
        if identification is not None and end <= dump.nbytes:
            image = Image.from_raw_rgb(
                dump.data[start:end],
                self._layout.image_width,
                self._layout.image_height,
            )
        return VariantOutcome(dump=dump, identification=identification, image=image)


class FullScanAttack:
    """Variant B: sweep the user DRAM window — no procfs at all.

    The sweep runs in overlapping windows (so whole-pool scans under
    physical ASLR stay memory-bounded), unioning signature-token hits
    across windows.  Identification works from string signatures found
    anywhere; image recovery is marker-based: it locates the corrupted
    image's solid run, so it only recovers inputs that carry the
    0xFFFFFF corruption (the paper's demonstration image) and that sit
    physically contiguous (true for a first-workload victim on the
    deterministic allocator).  Arbitrary inputs need one of the
    offset-based variants.
    """

    def __init__(
        self,
        shell: Shell,
        database: SignatureDatabase,
        profiles: ProfileStore,
        scan_base: int = 0x6000_0000,
        scan_length: int = 16 * 1024 * 1024,
        window: int = 4 * 1024 * 1024,
        min_score: float = 0.3,
        early_stop: bool = True,
        config: AttackConfig | None = None,
    ) -> None:
        if scan_length <= 0 or scan_length % PAGE_SIZE:
            raise ValueError("scan_length must be a positive page multiple")
        if window <= 0 or window % PAGE_SIZE:
            raise ValueError("window must be a positive page multiple")
        self._shell = shell
        self._database = database
        self._profiles = profiles
        self._scan_base = scan_base
        self._scan_length = scan_length
        self._window = window
        self._min_score = min_score
        self._early_stop = early_stop
        self._config = config or AttackConfig()

    def _windows(self):
        """Yield (base, chunk bytes) with one-image overlap between windows."""
        overlap = max(
            (profile.image_nbytes for profile in self._profiles.profiles()),
            default=PAGE_SIZE,
        )
        base = self._scan_base
        scan_end = self._scan_base + self._scan_length
        while base < scan_end:
            length = min(self._window + overlap, scan_end - base)
            try:
                chunk = self._shell.devmem_tool.read_bytes(
                    base, length, self._shell.user
                )
            except PermissionDeniedError as error:
                raise ExtractionError(f"devmem blocked: {error}") from error
            yield base, chunk
            base += self._window

    def run(self) -> VariantOutcome:
        """Sweep, identify, and (for marker-corrupted inputs) recover."""
        found_tokens: dict[str, set[str]] = {
            name: set() for name in self._database.model_names()
        }
        image: Image | None = None
        marker_offset: int | None = None
        pages_scanned = 0
        for base, chunk in self._windows():
            pages_scanned += len(chunk) // PAGE_SIZE
            for name in self._database.model_names():
                for token in self._database.signature(name).tokens:
                    if token not in found_tokens[name] and (
                        token.encode("utf-8", errors="ignore") in chunk
                    ):
                        found_tokens[name].add(token)
            if marker_offset is None:
                local = self._find_marker(chunk)
                if local is not None:
                    marker_offset = base + local
            if self._early_stop and marker_offset is not None and any(
                found and found == set(self._database.signature(name).tokens)
                for name, found in found_tokens.items()
            ):
                break

        identification = self._score(found_tokens)
        if (
            identification is not None
            and marker_offset is not None
            and identification.best_model in self._profiles
        ):
            image = self._read_image_at(
                marker_offset, self._profiles.get(identification.best_model)
            )
        return VariantOutcome(
            dump=None, identification=identification, image=image
        )

    def _score(self, found_tokens: dict[str, set[str]]) -> IdentificationResult | None:
        scores = {}
        for name, found in found_tokens.items():
            total = len(self._database.signature(name).tokens)
            scores[name] = len(found) / total if total else 0.0
        ranked = sorted(scores, key=lambda name: scores[name], reverse=True)
        best = ranked[0]
        if scores[best] < self._min_score:
            return None
        runner_up = scores[ranked[1]] if len(ranked) > 1 else 0.0
        return IdentificationResult(
            best_model=best,
            scores=scores,
            matched_tokens=sorted(found_tokens[best]),
            grep_hits=[],
            confident=scores[best] > runner_up,
        )

    def _find_marker(self, chunk: bytes) -> int | None:
        """Offset of the first long corruption-marker run, if any."""
        red, green, blue = self._config.corruption_marker
        if not red == green == blue:
            raise ReconstructionError("corruption marker must be grayscale")
        offset = chunk.find(bytes([red]) * 64)
        return offset if offset >= 0 else None

    def _read_image_at(self, physical: int, profile: ModelProfile) -> Image | None:
        """Re-read the image bytes at the marker's physical location.

        The corrupted band sits at the *start* of the image buffer
        (paper Fig. 4 corrupts the top rows), so the first marker byte
        is the image start.
        """
        try:
            raw = self._shell.devmem_tool.read_bytes(
                physical, profile.image_nbytes, self._shell.user
            )
        except PermissionDeniedError as error:
            raise ExtractionError(f"devmem blocked: {error}") from error
        return Image.from_raw_rgb(raw, profile.image_width, profile.image_height)
