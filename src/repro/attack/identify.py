"""Step 4.a — identifying the victim's model from dump strings.

"The adversary analyzes the FPGA DRAM data for distinct patterns or
signatures of different models.  Using criteria like keywords or known
model names (e.g. 'resnet50', 'squeezenet'), they identify the model
run by the targeted process" (§III).

The paper greps for one known name; this module generalizes that into
a signature database mined from the offline profiles: a token is a
*signature* of model M if it appears in M's profiled dump and in no
other model's.  Shared runtime strings (libvart paths and the like)
cancel out automatically, so identification keys on genuinely
model-specific evidence — names, install paths, origin strings,
kernel identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ahocorasick import AhoCorasick
from repro.attack.extraction import ScrapedDump
from repro.attack.profiling import ProfileStore
from repro.errors import IdentificationError
from repro.utils.hexdump import GrepHit


@dataclass(frozen=True)
class ModelSignature:
    """The distinctive tokens of one model."""

    model_name: str
    tokens: frozenset[str]


@dataclass
class IdentificationResult:
    """Outcome of matching a dump against the signature database."""

    best_model: str
    scores: dict[str, float]
    matched_tokens: list[str]
    grep_hits: list[GrepHit] = field(default_factory=list)
    confident: bool = True

    def describe(self) -> str:
        """One-line verdict for the attack report."""
        qualifier = "" if self.confident else " (low confidence)"
        return (
            f"identified model {self.best_model!r}{qualifier} "
            f"({len(self.matched_tokens)} signature tokens matched)"
        )


class SignatureDatabase:
    """Per-model distinctive-token sets derived from offline profiles.

    Construction compiles every token into one shared
    :class:`~repro.analysis.ahocorasick.AhoCorasick` automaton, so
    :meth:`match` scores *all* models in a single pass over the dump.
    A campaign builds the database once and shares it across every
    board worker; the compiled automaton rides along for free.
    """

    def __init__(self, signatures: list[ModelSignature]) -> None:
        if not signatures:
            raise ValueError("signature database cannot be empty")
        self._signatures = {sig.model_name: sig for sig in signatures}
        # bytes pattern -> every source token that encodes to it: with
        # errors="ignore", distinct tokens can collide on one encoding
        # (lone surrogates drop out), and the replaced ``in`` scans
        # matched all of them.
        tokens_of: dict[bytes, set[str]] = {}
        for signature in signatures:
            for token in signature.tokens:
                tokens_of.setdefault(
                    token.encode("utf-8", errors="ignore"), set()
                ).add(token)
        self._tokens_of = tokens_of
        self._automaton = AhoCorasick(tokens_of)

    @classmethod
    def from_profiles(cls, store: ProfileStore, min_token_length: int = 6) -> "SignatureDatabase":
        """Mine signatures: strings unique to each model's profiled dump."""
        profiles = store.profiles()
        if not profiles:
            raise ValueError("profile store is empty")
        signatures = []
        for profile in profiles:
            others: set[str] = set()
            for other in profiles:
                if other.model_name != profile.model_name:
                    others |= other.strings
            distinctive = frozenset(
                token
                for token in profile.strings - others
                if len(token) >= min_token_length
            )
            signatures.append(
                ModelSignature(model_name=profile.model_name, tokens=distinctive)
            )
        return cls(signatures)

    def to_payload(self) -> dict[str, list[str]]:
        """A JSON-safe snapshot of the mined signatures.

        The campaign's multiprocess executor ships this over the
        process boundary so workers reconstruct the database with
        :meth:`from_payload` instead of re-mining it from profiles —
        mining is O(models² × strings) and used to dominate worker
        startup on small fleets.
        """
        return {
            name: sorted(signature.tokens)
            for name, signature in self._signatures.items()
        }

    @classmethod
    def from_payload(cls, payload: dict[str, list[str]]) -> "SignatureDatabase":
        """Rebuild a database from :meth:`to_payload` output.

        Model order is preserved from the source database (dict order
        survives pickling), so score dictionaries and tie-breaking in
        the worker match the parent process exactly.
        """
        return cls(
            [
                ModelSignature(model_name=name, tokens=frozenset(tokens))
                for name, tokens in payload.items()
            ]
        )

    def signature(self, model_name: str) -> ModelSignature:
        """The signature for one model."""
        return self._signatures[model_name]

    def model_names(self) -> list[str]:
        """All models with signatures, sorted."""
        return sorted(self._signatures)

    def match(self, dump_data) -> dict[str, tuple[float, list[str]]]:
        """Score every model against a raw dump buffer (never copied).

        Score = fraction of the model's signature tokens present
        verbatim in the dump.  Models with empty signatures score 0.

        One automaton pass over the dump finds every token of every
        model at once (instead of one full-dump ``in`` scan per token);
        scores are identical to the scan-per-token reference kept in
        :func:`repro.analysis.reference.reference_match`.
        """
        present: set[str] = set()
        for pattern in self._automaton.find_present(dump_data):
            present |= self._tokens_of[pattern]
        results = {}
        for name, signature in self._signatures.items():
            if not signature.tokens:
                results[name] = (0.0, [])
                continue
            matched = sorted(
                token for token in signature.tokens if token in present
            )
            results[name] = (len(matched) / len(signature.tokens), matched)
        return results


class ModelIdentifier:
    """Applies a signature database to a scraped dump.

    ``min_score`` guards against misattribution from incidental token
    collisions (e.g. a generic layer name shared by an unprofiled
    architecture): a genuine match hits most of its signature tokens,
    an accidental one only a stray few.
    """

    def __init__(self, database: SignatureDatabase, min_score: float = 0.3) -> None:
        if not 0.0 <= min_score <= 1.0:
            raise ValueError(f"min_score must be in [0, 1], got {min_score}")
        self._database = database
        self._min_score = min_score

    def identify_buffer(self, data) -> IdentificationResult:
        """Attribute raw dump bytes to one model — no board required.

        The world-free core of :meth:`identify`: *data* is any
        bytes-like buffer (bytes, memoryview, an mmap-backed spool
        object), so the analysis service can attribute dumps it never
        simulated.  The winner needs a score of at least ``min_score``;
        otherwise the attribution failed and
        :class:`~repro.errors.IdentificationError` is raised (the
        expected outcome on a scrubbed dump or an unprofiled model).
        A winner whose margin over the runner-up is zero is flagged
        ``confident=False``.  ``grep_hits`` is empty here — evidence
        rows come from the dump's hexdump, which only
        :meth:`identify` has.
        """
        matches = self._database.match(data)
        scores = {name: score for name, (score, _) in matches.items()}
        ranked = sorted(scores, key=lambda name: scores[name], reverse=True)
        best = ranked[0]
        best_score, matched_tokens = matches[best]
        if best_score < self._min_score or not matched_tokens:
            raise IdentificationError(
                f"best candidate {best!r} scored {best_score:.2f} "
                f"(< {self._min_score}); cannot attribute a model"
            )
        runner_up_score = scores[ranked[1]] if len(ranked) > 1 else 0.0
        return IdentificationResult(
            best_model=best,
            scores=scores,
            matched_tokens=matched_tokens,
            confident=best_score > runner_up_score,
        )

    def identify(self, dump: ScrapedDump) -> IdentificationResult:
        """Attribute the dump to one model (attack-pipeline flavour).

        Delegates the scoring to :meth:`identify_buffer` and decorates
        the result with the paper's evidence rows — the first hexdump
        lines where the winning name appears verbatim.
        """
        result = self.identify_buffer(dump.data)
        result.grep_hits = dump.hexdump.grep(result.best_model)[:4]
        return result
