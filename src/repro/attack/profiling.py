"""Offline profiling — how the adversary learns high-value offsets.

Paper §V, step 4.b: "we conducted offline profiling by changing pixel
values to 0x555555.  We then ran the resnet50_pt model offline with
this modified image, repeating Steps 1 to 3.  By analyzing the
hexadecimal dump, we found the offset between the first occurrence of
'5555 5555' and the hexdump file's start."

The profiler does literally that, per model: launch the application as
the *attacker's own* process with a solid-marker input, run the same
steps 1-3 the live attack uses, and record where the marker lands.
Because the allocator and heap arena are deterministic, the recorded
offset transfers to any victim running the same model — the paper's
"no randomization" finding.  The profiler also keeps the dump's
printable strings, which the signature database mines for
model-identification tokens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.attack.addressing import AddressHarvester
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper, ScrapedDump
from repro.attack.polling import PidPoller
from repro.errors import ProfilingError
from repro.petalinux.shell import Shell
from repro.utils.strings import extract_strings
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image

_PAPER_ROW_BYTES = 16


@dataclass(frozen=True)
class ModelProfile:
    """Everything profiling learned about one model's memory layout."""

    model_name: str
    image_offset: int
    """Byte offset of the input image from the heap base."""
    image_height: int
    image_width: int
    heap_size: int
    strings: frozenset[str] = field(default_factory=frozenset)

    @property
    def image_nbytes(self) -> int:
        """Raw RGB24 size of the input buffer."""
        return self.image_height * self.image_width * 3

    @property
    def hexdump_row(self) -> int:
        """First hexdump row of the image — the paper's 'row 646768'."""
        return self.image_offset // _PAPER_ROW_BYTES


class ProfileStore:
    """The adversary's accumulated offline knowledge."""

    def __init__(self) -> None:
        self._profiles: dict[str, ModelProfile] = {}

    def add(self, profile: ModelProfile) -> None:
        """Insert or replace the profile for one model."""
        self._profiles[profile.model_name] = profile

    def get(self, model_name: str) -> ModelProfile:
        """The profile for *model_name*; raises ``KeyError`` if absent."""
        return self._profiles[model_name]

    def __contains__(self, model_name: str) -> bool:
        return model_name in self._profiles

    def model_names(self) -> list[str]:
        """All profiled models, sorted."""
        return sorted(self._profiles)

    def profiles(self) -> list[ModelProfile]:
        """All profiles, sorted by model name."""
        return [self._profiles[name] for name in self.model_names()]

    # -- persistence (the adversary's notebook) -----------------------------

    def to_json(self) -> str:
        """Serialize the store (strings included) to JSON."""
        payload = {
            name: {
                "image_offset": profile.image_offset,
                "image_height": profile.image_height,
                "image_width": profile.image_width,
                "heap_size": profile.heap_size,
                "strings": sorted(profile.strings),
            }
            for name, profile in self._profiles.items()
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProfileStore":
        """Rebuild a store from :meth:`to_json` output."""
        store = cls()
        for name, record in json.loads(text).items():
            store.add(
                ModelProfile(
                    model_name=name,
                    image_offset=record["image_offset"],
                    image_height=record["image_height"],
                    image_width=record["image_width"],
                    heap_size=record["heap_size"],
                    strings=frozenset(record["strings"]),
                )
            )
        return store


class OfflineProfiler:
    """Runs the marker-image pass for each model of interest."""

    def __init__(
        self,
        shell: Shell,
        input_hw: int = 32,
        config: AttackConfig | None = None,
    ) -> None:
        self._shell = shell
        self._input_hw = input_hw
        self._config = config or AttackConfig()

    def _scrape_own_run(self, model_name: str, image: Image) -> ScrapedDump:
        """Steps 2-3 against the profiler's own process.

        The profiler launched the process itself, so it addresses it by
        pid directly — pattern-matching ``ps`` here could collide with
        an unrelated process running the same model.
        """
        application = VictimApplication(self._shell, input_hw=self._input_hw)
        run = application.launch(model_name, image=image)
        poller = PidPoller(self._shell, poll_limit=self._config.poll_limit)
        harvester = AddressHarvester(self._shell.procfs, caller=self._shell.user)
        harvested = harvester.harvest(run.pid)
        run.terminate()
        poller.wait_for_termination(run.pid)
        scraper = MemoryScraper(
            self._shell.devmem_tool, caller=self._shell.user, config=self._config
        )
        return scraper.scrape(harvested)

    def profile_model(self, model_name: str) -> ModelProfile:
        """Learn the image offset and string set for one model.

        Raises :class:`~repro.errors.ProfilingError` when the marker
        never shows up in the dump (e.g. a sanitizing kernel scrubbed
        it — profiling on a defended board fails the same way the
        attack does).
        """
        marker_image = Image.solid(
            self._input_hw, self._input_hw, self._config.profiling_marker
        )
        dump = self._scrape_own_run(model_name, marker_image)
        marker_run = bytes(self._config.profiling_marker) * 16
        offset = dump.data.find(marker_run)
        if offset < 0:
            raise ProfilingError(
                f"profiling marker not found in {model_name} dump "
                f"({dump.nbytes} bytes)"
            )
        strings = frozenset(
            hit.text
            for hit in extract_strings(dump.data, self._config.string_min_length)
        )
        return ModelProfile(
            model_name=model_name,
            image_offset=offset,
            image_height=self._input_hw,
            image_width=self._input_hw,
            heap_size=dump.nbytes,
            strings=strings,
        )

    def profile_library(self, model_names: list[str]) -> ProfileStore:
        """Profile a whole model library (the adversary's prep phase)."""
        store = ProfileStore()
        for name in model_names:
            store.add(self.profile_model(name))
        return store
