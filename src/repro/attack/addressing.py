"""Step 2 — heap range from ``maps``, VA→PA through ``pagemap``.

Re-implements the paper's two artifacts:

- reading ``/proc/<pid>/maps`` and pulling out the ``[heap]`` line
  (Fig. 7), and
- the authors' ``virtual_to_physical`` C helper (Fig. 8): seek the
  pagemap file to ``(va >> 12) * 8``, read one u64, mask the PFN,
  rebuild the physical address.

Everything here runs while the victim is *alive* — after termination
the pid vanishes from /proc and translation is impossible, which is
why the attack snapshots translations ahead of time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AddressHarvestError, PermissionDeniedError
from repro.mmu.pagemap import ENTRY_SIZE, entry_from_bytes
from repro.mmu.paging import PAGE_SHIFT, PAGE_SIZE, page_offset, vpn_of
from repro.petalinux.procfs import ProcFs
from repro.petalinux.users import User

_HEAP_LINE_RE = re.compile(
    r"^([0-9a-f]+)-([0-9a-f]+)\s+(\S{4})\s+\S+\s+\S+\s+\S+\s+\[heap\]\s*$",
    re.MULTILINE,
)


@dataclass(frozen=True)
class PageTranslation:
    """One snapshotted VA page -> physical address mapping."""

    virtual_page_address: int
    physical_page_address: int
    present: bool


@dataclass
class HarvestedRange:
    """The heap range plus its per-page physical translations."""

    pid: int
    heap_start: int
    heap_end: int
    translations: list[PageTranslation] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Heap size in bytes."""
        return self.heap_end - self.heap_start

    def present_pages(self) -> list[PageTranslation]:
        """Translations for pages that were resident at snapshot time."""
        return [entry for entry in self.translations if entry.present]

    def physical_of(self, virtual_address: int) -> int:
        """Physical address of *virtual_address* (paper's Fig. 8 query)."""
        target_page = virtual_address & ~(PAGE_SIZE - 1)
        for entry in self.translations:
            if entry.virtual_page_address == target_page and entry.present:
                return entry.physical_page_address | page_offset(virtual_address)
        raise AddressHarvestError(
            f"no snapshotted translation for VA {virtual_address:#x}"
        )


class TranslationCache:
    """Per-board memo of completed heap harvests, keyed by pid.

    A fleet campaign attacks many victims per board, and each victim's
    translations are queried more than once: the campaign worker
    snapshots them the moment it claims a sighting (the earliest
    possible moment) and the attack pipeline re-harvests in its own
    step 2.  One cache per board turns every repeat into a dictionary
    hit instead of a full pagemap walk.

    Staleness contract: an entry is valid only while its pid is alive
    and its heap has not grown past the snapshotted range — callers
    must :meth:`invalidate` on termination (the attack pipeline does
    this as soon as it observes the pid vanish).  Never share a cache
    across boards: equal pids on different kernels map to different
    physical frames.
    """

    def __init__(self) -> None:
        self._harvests: dict[int, HarvestedRange] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._harvests)

    def lookup(self, pid: int) -> HarvestedRange | None:
        """The cached harvest for *pid*, counting the hit or miss."""
        cached = self._harvests.get(pid)
        if cached is None:
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def store(self, pid: int, harvested: HarvestedRange) -> None:
        """Memoize a completed harvest."""
        self._harvests[pid] = harvested

    def invalidate(self, pid: int) -> None:
        """Drop *pid*'s entry (it terminated, or its heap changed)."""
        if pid in self._harvests:
            del self._harvests[pid]
            self.invalidations += 1

    def clear(self) -> None:
        """Drop every entry (e.g. after a board reboot)."""
        self._harvests.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AddressHarvester:
    """Runs step 2 against a live victim from the attacker's user.

    Pass a :class:`TranslationCache` to memoize full harvests across
    repeated calls for the same pid (the campaign engine shares one
    cache per board).
    """

    def __init__(
        self,
        procfs: ProcFs,
        caller: User,
        cache: TranslationCache | None = None,
    ) -> None:
        self._procfs = procfs
        self._caller = caller
        self._cache = cache

    # -- maps parsing -------------------------------------------------------

    def read_heap_range(self, pid: int) -> tuple[int, int]:
        """The ``[heap]`` VA range from ``/proc/<pid>/maps``.

        Raises :class:`~repro.errors.AddressHarvestError` when the
        maps file has no heap line, and propagates
        :class:`~repro.errors.PermissionDeniedError` unchanged from
        hardened kernels — the attack caller distinguishes "no heap"
        from "blocked by isolation".
        """
        maps_text = self._procfs.read_maps(pid, caller=self._caller)
        match = _HEAP_LINE_RE.search(maps_text)
        if match is None:
            raise AddressHarvestError(f"pid {pid} has no [heap] mapping")
        start = int(match.group(1), 16)
        end = int(match.group(2), 16)
        return start, end

    # -- the virtual_to_physical helper ------------------------------------------

    def virtual_to_physical(self, pid: int, virtual_address: int) -> int | None:
        """One VA -> PA query, exactly as the paper's C code does it.

        Returns ``None`` for non-present pages (the C tool prints 0).
        """
        file_offset = vpn_of(virtual_address) * ENTRY_SIZE
        raw = self._procfs.read_pagemap(
            pid, file_offset, ENTRY_SIZE, caller=self._caller
        )
        entry = entry_from_bytes(raw)
        if not entry.present:
            return None
        return (entry.pfn << PAGE_SHIFT) | page_offset(virtual_address)

    # -- full harvest -----------------------------------------------------------

    def harvest(self, pid: int) -> HarvestedRange:
        """Snapshot the whole heap's translations for later extraction.

        One batched pagemap pread covers the heap's VPN range (the
        paper's automation loops the single-address tool; same bytes
        either way).  With a :class:`TranslationCache` attached, a
        repeated harvest of the same (still live) pid is a cache hit.
        """
        if self._cache is not None:
            cached = self._cache.lookup(pid)
            if cached is not None:
                return cached
        heap_start, heap_end = self.read_heap_range(pid)
        first_vpn = vpn_of(heap_start)
        page_total = (heap_end - heap_start) // PAGE_SIZE
        try:
            raw = self._procfs.read_pagemap(
                pid,
                first_vpn * ENTRY_SIZE,
                page_total * ENTRY_SIZE,
                caller=self._caller,
            )
        except PermissionDeniedError:
            raise
        translations = []
        for index in range(page_total):
            entry = entry_from_bytes(
                raw[index * ENTRY_SIZE : (index + 1) * ENTRY_SIZE]
            )
            translations.append(
                PageTranslation(
                    virtual_page_address=(first_vpn + index) << PAGE_SHIFT,
                    physical_page_address=entry.pfn << PAGE_SHIFT,
                    present=entry.present,
                )
            )
        harvested = HarvestedRange(
            pid=pid,
            heap_start=heap_start,
            heap_end=heap_end,
            translations=translations,
        )
        if not harvested.present_pages():
            raise AddressHarvestError(
                f"pid {pid}: no present pages in heap "
                f"[{heap_start:#x}, {heap_end:#x})"
            )
        if self._cache is not None:
            self._cache.store(pid, harvested)
        return harvested
