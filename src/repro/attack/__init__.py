"""The memory scraping attack (MSA) — the paper's contribution.

The four steps of §III map onto submodules:

1. :mod:`repro.attack.polling` — find the victim pid with ``ps -ef``.
2. :mod:`repro.attack.addressing` — heap range from ``maps``, VA→PA
   through ``pagemap``.
3. :mod:`repro.attack.extraction` — post-termination ``devmem`` reads.
4. :mod:`repro.attack.identify` / :mod:`repro.attack.reconstruct` —
   model identification and input-image recovery, powered by
   :mod:`repro.attack.profiling` (the offline marker-image pass).

:mod:`repro.attack.pipeline` ties the steps into the end-to-end
:class:`MemoryScrapingAttack`.
"""

from repro.attack.config import AttackConfig
from repro.attack.polling import PidPoller, VictimSighting
from repro.attack.addressing import (
    AddressHarvester,
    HarvestedRange,
    PageTranslation,
    TranslationCache,
)
from repro.attack.extraction import MemoryScraper, ScrapedDump
from repro.attack.identify import IdentificationResult, ModelIdentifier, SignatureDatabase
from repro.attack.profiling import ModelProfile, OfflineProfiler, ProfileStore
from repro.attack.reconstruct import ImageReconstructor, ReconstructionResult
from repro.attack.pipeline import AttackPhase, AttackReport, MemoryScrapingAttack
from repro.attack.variants import (
    FullScanAttack,
    PhysicalLayoutProfile,
    ProfiledPhysicalAttack,
    VariantOutcome,
    profile_physical_layout,
)
from repro.attack.weights import (
    ExtractedWeights,
    WeightExtractor,
    WeightLayoutProfile,
    profile_weight_layout,
)
from repro.attack.carving import DumpCartographer, Region, RegionKind

__all__ = [
    "AttackConfig",
    "PidPoller",
    "VictimSighting",
    "AddressHarvester",
    "HarvestedRange",
    "PageTranslation",
    "TranslationCache",
    "MemoryScraper",
    "ScrapedDump",
    "IdentificationResult",
    "ModelIdentifier",
    "SignatureDatabase",
    "ModelProfile",
    "OfflineProfiler",
    "ProfileStore",
    "ImageReconstructor",
    "ReconstructionResult",
    "AttackPhase",
    "AttackReport",
    "MemoryScrapingAttack",
    "FullScanAttack",
    "PhysicalLayoutProfile",
    "ProfiledPhysicalAttack",
    "VariantOutcome",
    "profile_physical_layout",
    "ExtractedWeights",
    "WeightExtractor",
    "WeightLayoutProfile",
    "profile_weight_layout",
    "DumpCartographer",
    "Region",
    "RegionKind",
]
