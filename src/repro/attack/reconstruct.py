"""Step 4.b — reconstructing the victim's input image.

Two ingredients, both from the paper:

- the **corruption marker check** (Fig. 12): the victim's known-marker
  pixels (``0xFFFFFF``) show up as solid ``FFFF FFFF`` hexdump rows,
  confirming the image survived termination un-scrubbed; and
- the **profiled offset**: the image's byte offset from the heap base,
  learned offline with the ``0x555555`` pass, is applied to the
  victim's dump to slice out the raw RGB buffer and rebuild the
  picture.

Reconstruction does not *require* the victim to have used a corrupted
image — the offset alone recovers arbitrary inputs; the marker check
is reported when present because the paper uses it as its visual
proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.config import AttackConfig
from repro.attack.extraction import ScrapedDump
from repro.attack.profiling import ModelProfile
from repro.errors import ReconstructionError
from repro.vitis.image import Image


@dataclass
class ReconstructionResult:
    """A recovered input image plus the evidence trail."""

    image: Image
    image_offset: int
    marker_rows: list[int]
    used_profile: str

    @property
    def corruption_marker_seen(self) -> bool:
        """Whether the Fig. 12 solid-marker rows were present."""
        return bool(self.marker_rows)

    def describe(self) -> str:
        """One-line summary for the attack report."""
        marker = (
            f"{len(self.marker_rows)} solid marker rows"
            if self.marker_rows
            else "no corruption marker"
        )
        return (
            f"reconstructed {self.image.width}x{self.image.height} image "
            f"from heap offset {self.image_offset:#x} ({marker})"
        )


class ImageReconstructor:
    """Applies a model profile to a victim dump."""

    def __init__(self, config: AttackConfig | None = None) -> None:
        self._config = config or AttackConfig()

    def find_marker_rows(self, dump: ScrapedDump) -> list[int]:
        """Hexdump rows that are solid corruption marker (Fig. 12).

        Meaningful only when the marker colour tiles a 32-bit word
        pattern; ``0xFFFFFF`` pixels make solid ``0xFF`` bytes, so any
        word view is solid too.
        """
        red, green, blue = self._config.corruption_marker
        if not red == green == blue:
            raise ReconstructionError(
                "corruption marker must be grayscale to tile 32-bit words"
            )
        word = int.from_bytes(bytes([red]) * 4, "little")
        return dump.hexdump.marker_run_rows(
            word, minimum_rows=self._config.marker_min_rows
        )

    def reconstruct(
        self, dump: ScrapedDump, profile: ModelProfile
    ) -> ReconstructionResult:
        """Slice the image out of the dump at the profiled offset.

        Raises :class:`~repro.errors.ReconstructionError` when the
        profiled range does not fit the dump (a profile from a
        different configuration, or a truncated scrape).
        """
        start = profile.image_offset
        end = start + profile.image_nbytes
        if end > dump.nbytes:
            raise ReconstructionError(
                f"profiled image range [{start:#x}, {end:#x}) exceeds "
                f"dump size {dump.nbytes:#x}"
            )
        image = Image.from_raw_rgb(
            dump.data[start:end], profile.image_width, profile.image_height
        )
        return ReconstructionResult(
            image=image,
            image_offset=start,
            marker_rows=self.find_marker_rows(dump),
            used_profile=profile.model_name,
        )
