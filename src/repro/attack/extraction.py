"""Step 3 — data extraction from physical addresses after termination.

"Once the targeted process is terminated or disconnected, the
adversary proceeds to access and read the contents of the previously
derived physical address locations within the FPGA's DRAM" (§III).

The scraper replays the snapshotted translations through ``devmem``.
On the vulnerable kernel the bytes come back exactly as the victim
left them; under the zero-on-free defense the same reads return the
scrub pattern, and under ``STRICT_DEVMEM`` they raise — both outcomes
flow into the defense evaluation.

Three read strategies produce byte-identical dumps at very different
devmem-invocation counts (``AttackConfig`` selects one):

- **word mode** (default) — one invocation per 32-bit word, exactly as
  the paper's automation loops the busybox tool;
- **bulk mode** (``bulk_reads``) — one invocation per page;
- **coalesced mode** (``coalesce_reads``) — physically contiguous
  present pages merge into single bulk reads, the campaign engine's
  hot path for fleet-scale scraping.

Coalesced mode is zero-copy: device bytes land directly in one
``bytearray`` dump buffer (``Devmem.read_bytes_into``), optionally
drawn from a :class:`~repro.utils.buffers.BufferPool` so campaign
waves recycle buffers instead of allocating per victim.  A pooled
dump must be handed back with :meth:`ScrapedDump.release` once its
bytes have been analyzed and spooled; after that, any access to its
``data`` raises :class:`~repro.errors.ExtractionError` instead of
silently reading a recycled buffer.
"""

from __future__ import annotations

import hashlib
import mmap
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.attack.addressing import HarvestedRange
from repro.attack.config import AttackConfig
from repro.errors import ExtractionError, PermissionDeniedError
from repro.mmu.paging import PAGE_SIZE
from repro.petalinux.devmem import Devmem
from repro.petalinux.users import User
from repro.utils.bitfield import words_to_bytes
from repro.utils.hexdump import HexDump

if TYPE_CHECKING:
    from repro.utils.buffers import BufferPool

DumpBuffer = bytes | bytearray | mmap.mmap
"""Buffer types a :class:`ScrapedDump` may be backed by.  All three
support ``find``, slicing and the buffer protocol, which is the
contract every downstream consumer (carving, identify, hexdump,
reconstruction) relies on; plain ``memoryview`` lacks ``find`` and is
therefore not a valid backing."""

_ZERO_PAGE = bytes(PAGE_SIZE)


class _ReleasedBuffer:
    """Sentinel behind a released dump: every use raises clearly.

    A released dump's buffer may already be serving another victim's
    extraction, so reading it would silently return someone else's
    bytes — this stand-in turns that bug into an immediate
    :class:`~repro.errors.ExtractionError`.
    """

    def _refuse(self, *args, **kwargs):
        raise ExtractionError(
            "dump buffer was released back to its pool; copy the bytes "
            "(or read them back from the spool by sha256) before release()"
        )

    __len__ = _refuse
    __getitem__ = _refuse
    __iter__ = _refuse
    __bytes__ = _refuse
    find = _refuse
    count = _refuse


@dataclass
class ScrapedDump:
    """The reassembled heap image of a terminated process.

    ``data`` is any :data:`DumpBuffer`: ``bytes`` from the per-page
    strategies, a (possibly pooled) ``bytearray`` from the coalesced
    path, or an ``mmap`` when a worker rehydrates a dump from the
    campaign spool.  Analysis never copies it either way.
    """

    pid: int
    heap_start: int
    data: DumpBuffer
    pages_read: int
    pages_skipped: int
    devmem_reads: int

    def __post_init__(self) -> None:
        self._hexdump: HexDump | None = None
        self._sha256: str | None = None
        self._pool: "BufferPool | None" = None

    @property
    def hexdump(self) -> HexDump:
        """Paper-format hexdump view, built lazily on first access.

        A fleet campaign scrapes far more dumps than it ever renders;
        deferring the :class:`HexDump` (and the byte copy its eager
        construction used to imply) keeps extraction allocation-free
        for victims nothing greps.
        """
        if self._hexdump is None:
            self._hexdump = HexDump(self.data)
        return self._hexdump

    @property
    def sha256(self) -> str:
        """Content digest of the residue — the dump's spool address.

        The campaign runtime files every dump in a content-addressed
        on-disk spool under this digest
        (:class:`repro.campaign.runtime.DumpSpool`), so identical
        residue — e.g. the all-zero dumps a zero-on-free kernel yields
        — is stored once fleet-wide.  Computed lazily and cached.
        """
        if self._sha256 is None:
            if self.released:
                raise ExtractionError(
                    "cannot hash a released dump; read sha256 before release()"
                )
            self._sha256 = hashlib.sha256(self.data).hexdigest()
        return self._sha256

    @property
    def released(self) -> bool:
        """Whether :meth:`release` already reclaimed the buffer."""
        return isinstance(self.data, _ReleasedBuffer)

    def release(self) -> None:
        """Detach the dump from its buffer (and return it to the pool).

        The campaign worker calls this once a victim's dump has been
        analyzed and spooled: the bytes live on in the content-
        addressed spool under :attr:`sha256`, and the in-memory buffer
        goes back to the wave's :class:`~repro.utils.buffers.BufferPool`
        for the next victim.  Afterwards any access to :attr:`data`
        raises :class:`~repro.errors.ExtractionError` — never a stale
        view of a recycled buffer.  Idempotent.
        """
        if self.released:
            return
        buffer = self.data
        self.data = _ReleasedBuffer()
        self._hexdump = None
        pool, self._pool = self._pool, None
        if pool is not None and isinstance(buffer, bytearray):
            pool.release(buffer)

    @property
    def nbytes(self) -> int:
        """Dump size in bytes."""
        return len(self.data)

    def virtual_address_of(self, dump_offset: int) -> int:
        """Map a dump offset back to the victim's virtual address."""
        if not 0 <= dump_offset < len(self.data):
            raise ValueError(f"offset {dump_offset} outside dump")
        return self.heap_start + dump_offset


class MemoryScraper:
    """Replays harvested translations through the devmem tool."""

    def __init__(
        self,
        devmem: Devmem,
        caller: User,
        config: AttackConfig | None = None,
        buffer_pool: "BufferPool | None" = None,
    ) -> None:
        self._devmem = devmem
        self._caller = caller
        self._config = config or AttackConfig()
        self._buffer_pool = buffer_pool

    def _read_page(self, physical_address: int) -> tuple[bytes, int]:
        """One page of physical memory; returns (bytes, devmem call count)."""
        if self._config.bulk_reads:
            return (
                self._devmem.read_bytes(physical_address, PAGE_SIZE, self._caller),
                1,
            )
        word_bytes = self._config.word_bits // 8
        words = self._devmem.read_range(
            physical_address, PAGE_SIZE, self._caller, self._config.word_bits
        )
        return words_to_bytes(words, word_bytes), len(words)

    def scrape(self, harvested: HarvestedRange) -> ScrapedDump:
        """Read every snapshotted heap page and reassemble the dump.

        Pages that were non-present at harvest time are filled with
        zeros so dump offsets stay congruent with heap offsets — the
        property the profiled image offset depends on.

        Raises :class:`~repro.errors.ExtractionError` when /dev/mem is
        closed to the attacker (the STRICT_DEVMEM defense).
        """
        try:
            if self._config.coalesce_reads:
                return self._scrape_coalesced(harvested)
            return self._scrape_per_page(harvested)
        except PermissionDeniedError as error:
            raise ExtractionError(
                f"devmem blocked while scraping pid {harvested.pid}: {error}"
            ) from error

    def _scrape_per_page(self, harvested: HarvestedRange) -> ScrapedDump:
        """Word or page granular reads — one translation at a time."""
        chunks: list[bytes] = []
        pages_read = 0
        pages_skipped = 0
        devmem_reads = 0
        for entry in harvested.translations:
            if not entry.present:
                chunks.append(b"\x00" * PAGE_SIZE)
                pages_skipped += 1
                continue
            page_bytes, calls = self._read_page(entry.physical_page_address)
            chunks.append(page_bytes)
            pages_read += 1
            devmem_reads += calls
        return ScrapedDump(
            pid=harvested.pid,
            heap_start=harvested.heap_start,
            data=b"".join(chunks),
            pages_read=pages_read,
            pages_skipped=pages_skipped,
            devmem_reads=devmem_reads,
        )

    def _scrape_coalesced(self, harvested: HarvestedRange) -> ScrapedDump:
        """Merge physically contiguous present pages into bulk reads.

        Walks the translations in heap order, growing a run while each
        present page's physical address extends the previous one, and
        issues a single ``read_bytes_into`` per run — device bytes
        land directly in the dump buffer, so the reassembled dump is
        byte-identical to the per-page paths without any intermediate
        chunk or join copies.  The buffer comes from the scraper's
        :class:`~repro.utils.buffers.BufferPool` when one is attached
        (campaign waves recycle buffers; pooled buffers arrive dirty,
        so skipped pages are explicitly zero-filled) and is a fresh
        pre-zeroed ``bytearray`` otherwise.
        """
        translations = harvested.translations
        total = len(translations) * PAGE_SIZE
        pooled = self._buffer_pool is not None
        buffer = (
            self._buffer_pool.acquire(total) if pooled else bytearray(total)
        )
        view = memoryview(buffer)
        pages_read = 0
        pages_skipped = 0
        devmem_reads = 0
        run_start: int | None = None
        run_first_index = 0
        run_pages = 0

        def flush() -> None:
            nonlocal run_start, run_pages, devmem_reads
            if run_start is None:
                return
            out_start = run_first_index * PAGE_SIZE
            self._devmem.read_bytes_into(
                run_start,
                self._caller,
                view[out_start : out_start + run_pages * PAGE_SIZE],
            )
            devmem_reads += 1
            run_start = None
            run_pages = 0

        try:
            for index, entry in enumerate(translations):
                if not entry.present:
                    flush()
                    if pooled:
                        offset = index * PAGE_SIZE
                        view[offset : offset + PAGE_SIZE] = _ZERO_PAGE
                    pages_skipped += 1
                    continue
                if (
                    run_start is not None
                    and entry.physical_page_address
                    == run_start + run_pages * PAGE_SIZE
                ):
                    run_pages += 1
                else:
                    flush()
                    run_start = entry.physical_page_address
                    run_first_index = index
                    run_pages = 1
                pages_read += 1
            flush()
        except BaseException:
            view.release()
            if pooled:
                self._buffer_pool.release(buffer)
            raise
        view.release()
        dump = ScrapedDump(
            pid=harvested.pid,
            heap_start=harvested.heap_start,
            data=buffer,
            pages_read=pages_read,
            pages_skipped=pages_skipped,
            devmem_reads=devmem_reads,
        )
        if pooled:
            dump._pool = self._buffer_pool
        return dump

    def spot_check(self, harvested: HarvestedRange, virtual_address: int) -> int:
        """Single ``devmem`` read at one heap VA (the Fig. 10 artifact)."""
        physical = harvested.physical_of(virtual_address)
        return self._devmem.read(physical, self._caller, self._config.word_bits)
