"""Weight extraction — the paper's "and weights" claim, made concrete.

The paper's contribution 5 demonstrates "revealing sensitive
information such as input images and weights".  Recovering *stock*
library weights is uninteresting (the adversary has the library); the
threat that matters is a victim running a **fine-tuned** variant of a
library model: same architecture, private weights.

Because the runtime's buffer layout is a pure function of the
architecture (weight *shapes*, not values), the adversary can learn
each weight buffer's heap offset from the stock model and then lift
the victim's private weights from the same offsets in the scraped
dump.

:func:`profile_weight_layout` learns the offsets (own-process run with
the stock model, locating each layer's known payload in the dump);
:class:`WeightExtractor` applies them to a victim dump.

Usage — steal a fine-tuned model's private weights:

>>> from repro.attack import MemoryScrapingAttack
>>> from repro.attack.weights import WeightExtractor, profile_weight_layout
>>> from repro.evaluation.scenarios import BoardSession
>>> from repro.vitis.zoo import build_model, fine_tune
>>> session = BoardSession.boot(input_hw=32)
>>> layout = profile_weight_layout(                  # offline, stock model
...     session.attacker_shell, "resnet50_pt", input_hw=32
... )
>>> private = fine_tune(build_model("resnet50_pt", input_hw=32), seed=9)
>>> run = session.victim_application().launch("resnet50_pt", model=private)
>>> profiles = session.profile(["resnet50_pt"])
>>> attack = MemoryScrapingAttack(session.attacker_shell, profiles)
>>> report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
>>> stolen = WeightExtractor(layout).extract(report.dump)
>>> stolen.match_fraction(private)                   # the victim's weights
1.0
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.config import AttackConfig
from repro.attack.extraction import ScrapedDump
from repro.errors import ProfilingError, ReconstructionError
from repro.petalinux.shell import Shell
from repro.vitis.xmodel import XModel
from repro.vitis.zoo import build_model


@dataclass(frozen=True)
class WeightBufferProfile:
    """One unpacked weight buffer: where it sits and what shape it has."""

    layer_name: str
    heap_offset: int
    nbytes: int
    shapes: tuple[tuple[int, ...], ...]
    """Shapes of the arrays concatenated in this buffer (a resblock
    packs two conv kernels back to back)."""


@dataclass(frozen=True)
class WeightLayoutProfile:
    """All weight buffer offsets for one model architecture."""

    model_name: str
    buffers: tuple[WeightBufferProfile, ...]

    def total_nbytes(self) -> int:
        """Total weight payload across all buffers."""
        return sum(buffer.nbytes for buffer in self.buffers)


def profile_weight_layout(
    shell: Shell,
    model_name: str,
    input_hw: int = 32,
    config: AttackConfig | None = None,
) -> WeightLayoutProfile:
    """Learn where each layer's weights live, using the stock model.

    Runs the stock library model as the adversary's own process, scrapes
    the dump, and finds each layer's (known) weight payload.  The
    offsets transfer to any victim running the same *architecture*,
    whatever its weight values, because the deterministic arena places
    buffers by size alone.
    """
    from repro.attack.addressing import AddressHarvester
    from repro.attack.extraction import MemoryScraper
    from repro.vitis.app import VictimApplication

    config = config or AttackConfig()
    stock = build_model(model_name, input_hw=input_hw)
    run = VictimApplication(shell, input_hw=input_hw).launch(model_name)
    harvester = AddressHarvester(shell.procfs, caller=shell.user)
    harvested = harvester.harvest(run.pid)
    run.terminate()
    scraper = MemoryScraper(shell.devmem_tool, caller=shell.user, config=config)
    dump = scraper.scrape(harvested)

    buffers = []
    for layer in stock.subgraph.layers:
        payload = layer.weight_bytes()
        if not payload:
            continue
        # The payload appears twice (inside the serialized xmodel file
        # and as the unpacked buffer); the unpacked buffer is the later
        # occurrence — the one whose offset generalizes.
        first = dump.data.find(payload)
        if first < 0:
            raise ProfilingError(
                f"weights of layer {layer.name!r} not found in own dump"
            )
        second = dump.data.find(payload, first + 1)
        offset = second if second >= 0 else first
        shapes = tuple(
            array.shape
            for array in (layer.weights, layer.extra_weights)
            if array is not None
        )
        buffers.append(
            WeightBufferProfile(
                layer_name=layer.name,
                heap_offset=offset,
                nbytes=len(payload),
                shapes=shapes,
            )
        )
    if not buffers:
        raise ProfilingError(f"model {model_name} has no weight buffers")
    return WeightLayoutProfile(model_name=model_name, buffers=tuple(buffers))


@dataclass(frozen=True)
class ExtractedWeights:
    """Weights lifted from a victim dump."""

    model_name: str
    arrays: dict[str, tuple[np.ndarray, ...]]

    def layer(self, name: str) -> tuple[np.ndarray, ...]:
        """The recovered arrays of one layer."""
        return self.arrays[name]

    def match_fraction(self, reference: XModel) -> float:
        """Fraction of weight bytes identical to *reference*'s layers.

        1.0 against the victim's true model proves exact recovery;
        well below 1.0 against the stock model proves the recovered
        weights are the victim's private ones, not the library's.
        """
        matched = 0
        total = 0
        for layer in reference.subgraph.layers:
            payload = layer.weight_bytes()
            if not payload or layer.name not in self.arrays:
                continue
            recovered = b"".join(
                array.tobytes() for array in self.arrays[layer.name]
            )
            total += len(payload)
            matched += sum(1 for a, b in zip(recovered, payload) if a == b)
        if total == 0:
            raise ReconstructionError("no comparable weight buffers")
        return matched / total


class WeightExtractor:
    """Applies a weight layout profile to a victim dump."""

    def __init__(self, layout: WeightLayoutProfile) -> None:
        self._layout = layout

    def extract(self, dump: ScrapedDump) -> ExtractedWeights:
        """Lift every profiled weight buffer out of the dump."""
        arrays: dict[str, tuple[np.ndarray, ...]] = {}
        for buffer in self._layout.buffers:
            end = buffer.heap_offset + buffer.nbytes
            if end > dump.nbytes:
                raise ReconstructionError(
                    f"buffer {buffer.layer_name!r} range exceeds dump"
                )
            payload = dump.data[buffer.heap_offset : end]
            pieces = []
            cursor = 0
            for shape in buffer.shapes:
                count = int(np.prod(shape))
                pieces.append(
                    np.frombuffer(
                        payload[cursor : cursor + count], dtype=np.int8
                    ).reshape(shape).copy()
                )
                cursor += count
            arrays[buffer.layer_name] = tuple(pieces)
        return ExtractedWeights(model_name=self._layout.model_name, arrays=arrays)
