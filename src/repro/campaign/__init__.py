"""Fleet-scale campaign orchestration over the single-board attack.

The paper demonstrates one attacker scraping one terminated victim on
one board; related work (*Pentimento*'s fleet-wide remanence survey,
the *Resurrection Attack*'s reuse of the same choreography) operates
at cloud scale.  This package provides that scale for the simulation:

- :mod:`repro.campaign.schedule` — :class:`CampaignSpec` and the
  seeded, deterministic victim scheduler (boards × waves × tenants);
- :mod:`repro.campaign.fleet` — provisioning N booted board twins,
  each with its tenants and translation cache;
- :mod:`repro.campaign.worker` — the per-board wave choreography:
  launch co-residents, harvest while alive, terminate, scrape;
- :mod:`repro.campaign.report` — :class:`CampaignReport` aggregation
  (per-model / per-board breakdowns, fleet throughput, the streaming
  :class:`OutcomeAccumulator`) and JSON persistence;
- :mod:`repro.campaign.engine` — :func:`run_campaign`: one offline
  prep, then every board concurrently on a worker pool;
- :mod:`repro.campaign.runtime` — the process-parallel, checkpointable
  runtime: executors (threads or a ``multiprocessing`` pool), the
  content-addressed :class:`DumpSpool`, and
  :class:`CampaignRuntime` for journaled interrupt/resume runs
  (``repro campaign run --run-dir/--resume``) — plus the distributed
  fabric (:class:`FabricCoordinator` / :class:`FabricWorker`,
  ``repro campaign serve`` / ``work``) leasing board shards to
  remote hosts under the same byte-identical report contract.

Quick use (also exposed as ``repro campaign run``):

>>> from repro.campaign import CampaignSpec, run_campaign
>>> report = run_campaign(CampaignSpec(boards=2, victims=4, seed=3))
>>> report.victims
4
"""

from repro.campaign.schedule import (
    CampaignSpec,
    VictimJob,
    build_schedule,
    jobs_by_board,
    spec_from_dict,
    spec_to_dict,
)
from repro.campaign.fleet import (
    ProvisionedBoard,
    provision_board,
    provision_fleet,
)
from repro.campaign.worker import BoardWorker, VictimOutcome
from repro.campaign.report import (
    BoardBreakdown,
    CampaignReport,
    ModelBreakdown,
    OutcomeAccumulator,
)
from repro.campaign.engine import (
    prepare_offline,
    prepare_offline_cached,
    run_campaign,
)
from repro.campaign.runtime import (
    CampaignRuntime,
    DumpSpool,
    FabricCoordinator,
    FabricWorker,
    RunDirectory,
)

__all__ = [
    "CampaignSpec",
    "VictimJob",
    "build_schedule",
    "jobs_by_board",
    "spec_from_dict",
    "spec_to_dict",
    "ProvisionedBoard",
    "provision_board",
    "provision_fleet",
    "BoardWorker",
    "VictimOutcome",
    "BoardBreakdown",
    "CampaignReport",
    "ModelBreakdown",
    "OutcomeAccumulator",
    "prepare_offline",
    "prepare_offline_cached",
    "run_campaign",
    "CampaignRuntime",
    "DumpSpool",
    "FabricCoordinator",
    "FabricWorker",
    "RunDirectory",
]
