"""The campaign engine — offline prep once, then the fleet in parallel.

:func:`run_campaign` is the top-level entry point:

1. build the deterministic schedule from the spec;
2. run the adversary's offline prep **once** — profile the model mix
   on a reference board and mine one shared
   :class:`~repro.attack.identify.SignatureDatabase` (the paper's
   attacker preps on hardware they control; a fleet attacker preps
   once, not once per victim);
3. provision the fleet and hand each board's jobs to a
   :class:`~repro.campaign.worker.BoardWorker` on a thread pool —
   boards are independent simulations, so they scrape concurrently;
4. collect every outcome into a
   :class:`~repro.campaign.report.CampaignReport`.

Two defense-injection hooks let the :mod:`repro.defense` arena run the
identical campaign under different hardening profiles: *kernel_config*
boots every fleet board with an arbitrary
:class:`~repro.petalinux.kernel.KernelConfig` (provisioning time), and
*teardown_hook* runs after each wave's victims terminate and before
extraction (process-teardown time — where the asynchronous scrub
daemon races the attacker's scrape).

>>> from repro.campaign import CampaignSpec, run_campaign
>>> report = run_campaign(CampaignSpec(boards=4, victims=8, seed=7))
>>> print(report.render())                            # doctest: +SKIP
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.attack.config import AttackConfig
from repro.attack.identify import SignatureDatabase
from repro.attack.profiling import ProfileStore
from repro.campaign.fleet import provision_fleet
from repro.campaign.report import CampaignReport
from repro.campaign.schedule import CampaignSpec, build_schedule, jobs_by_board
from repro.campaign.worker import BoardWorker, TeardownHook
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.kernel import KernelConfig


def prepare_offline(spec: CampaignSpec) -> tuple[ProfileStore, SignatureDatabase]:
    """The adversary's one-time prep: profiles + signature database.

    Runs on a dedicated reference board (the fleet never sees the
    marker images), covering every model in the campaign mix.
    """
    reference = BoardSession.boot(input_hw=spec.input_hw)
    profiles = reference.profile(sorted(set(spec.model_mix)))
    return profiles, SignatureDatabase.from_profiles(profiles)


def run_campaign(
    spec: CampaignSpec,
    profiles: ProfileStore | None = None,
    database: SignatureDatabase | None = None,
    *,
    kernel_config: KernelConfig | None = None,
    teardown_hook: TeardownHook | None = None,
) -> CampaignReport:
    """Run one full fleet campaign and aggregate the results.

    Pass *profiles*/*database* to reuse prep across campaigns (e.g. a
    parameter sweep); by default :func:`prepare_offline` builds both.
    Offline prep always runs on a vulnerable reference board — only
    the fleet boots *kernel_config*, because the adversary preps on
    hardware they control while the defense protects the victims'
    boards.  *teardown_hook* fires per wave after termination (see
    :data:`~repro.campaign.worker.TeardownHook`).
    """
    started = time.perf_counter()
    schedule = build_schedule(spec)
    if profiles is None:
        prepped_profiles, prepped_database = prepare_offline(spec)
        profiles = prepped_profiles
        database = database or prepped_database
    elif database is None:
        database = SignatureDatabase.from_profiles(profiles)
    fleet = provision_fleet(spec, kernel_config=kernel_config)
    config = AttackConfig(coalesce_reads=spec.coalesce_reads)

    grouped = jobs_by_board(schedule)
    workers = {
        board.index: BoardWorker(
            board, profiles, database, config, teardown_hook=teardown_hook
        )
        for board in fleet
    }
    max_workers = spec.max_workers or spec.boards
    outcomes = []
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(workers[index].run_jobs, jobs)
            for index, jobs in sorted(grouped.items())
        ]
        for future in futures:
            outcomes.extend(future.result())
    outcomes.sort(key=lambda outcome: outcome.job_id)
    return CampaignReport(
        spec=spec,
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - started,
    )
