"""The campaign engine — offline prep once, then the fleet in parallel.

:func:`run_campaign` is the top-level entry point:

1. build the deterministic schedule from the spec;
2. run the adversary's offline prep **once** — profile the model mix
   on a reference board and mine one shared
   :class:`~repro.attack.identify.SignatureDatabase` (the paper's
   attacker preps on hardware they control; a fleet attacker preps
   once, not once per victim);
3. hand the fleet's boards to an executor from
   :mod:`repro.campaign.runtime.executors` — threads sharing the prep
   by reference for small fleets, a ``multiprocessing`` worker pool
   sharding boards across cores for large ones (``executor="auto"``
   picks; both stream outcomes back wave by wave and produce
   identical results);
4. collect every outcome into a
   :class:`~repro.campaign.report.CampaignReport`.

Two defense-injection hooks let the :mod:`repro.defense` arena run the
identical campaign under different hardening profiles: *kernel_config*
boots every fleet board with an arbitrary
:class:`~repro.petalinux.kernel.KernelConfig` (provisioning time), and
*teardown_hook* runs after each wave's victims terminate and before
extraction (process-teardown time — where the asynchronous scrub
daemon races the attacker's scrape).  A live hook cannot cross a
process boundary, so campaigns with a *teardown_hook* always run
in-process.

For checkpointable runs — journal, dump spool, interrupt/resume — use
:class:`~repro.campaign.runtime.runner.CampaignRuntime`, which drives
these same executors under a run directory.

>>> from repro.campaign import CampaignSpec, run_campaign
>>> report = run_campaign(CampaignSpec(boards=4, victims=8, seed=7))
>>> print(report.render())                            # doctest: +SKIP
"""

from __future__ import annotations

import threading
import time

from repro.attack.identify import SignatureDatabase
from repro.attack.profiling import ProfileStore
from repro.campaign.report import CampaignReport
from repro.campaign.runtime.executors import resolve_executor
from repro.campaign.runtime.spool import DumpSpool
from repro.campaign.schedule import CampaignSpec
from repro.campaign.worker import TeardownHook, VictimOutcome
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.kernel import KernelConfig


def prepare_offline(spec: CampaignSpec) -> tuple[ProfileStore, SignatureDatabase]:
    """The adversary's one-time prep: profiles + signature database.

    Runs on a dedicated reference board (the fleet never sees the
    marker images), covering every model in the campaign mix.
    """
    reference = BoardSession.boot(input_hw=spec.input_hw)
    profiles = reference.profile(sorted(set(spec.model_mix)))
    return profiles, SignatureDatabase.from_profiles(profiles)


_PREP_CACHE: dict[
    tuple[tuple[str, ...], int], tuple[ProfileStore, SignatureDatabase]
] = {}
_PREP_CACHE_LOCK = threading.Lock()


def prepare_offline_cached(
    spec: CampaignSpec,
) -> tuple[ProfileStore, SignatureDatabase]:
    """:func:`prepare_offline`, memoized on what prep depends on.

    Offline prep is a pure function of the (deduplicated, sorted)
    model mix and the input resolution — nothing else in the spec
    reaches the reference board.  Harnesses that run many campaigns
    over overlapping mixes (the fuzz lab, the fabric's in-process
    drills, parameter sweeps) share one profile notebook per distinct
    key instead of re-profiling per campaign.  The cached objects are
    read-only in every consumer, so sharing by reference is safe.
    """
    key = (tuple(sorted(set(spec.model_mix))), spec.input_hw)
    with _PREP_CACHE_LOCK:
        cached = _PREP_CACHE.get(key)
    if cached is not None:
        return cached
    prepped = prepare_offline(spec)
    with _PREP_CACHE_LOCK:
        return _PREP_CACHE.setdefault(key, prepped)


def run_campaign(
    spec: CampaignSpec,
    profiles: ProfileStore | None = None,
    database: SignatureDatabase | None = None,
    *,
    kernel_config: KernelConfig | None = None,
    teardown_hook: TeardownHook | None = None,
    executor: str = "auto",
    processes: int | None = None,
    spool: DumpSpool | None = None,
) -> CampaignReport:
    """Run one full fleet campaign and aggregate the results.

    Pass *profiles*/*database* to reuse prep across campaigns (e.g. a
    parameter sweep); by default :func:`prepare_offline` builds both.
    Offline prep always runs on a vulnerable reference board — only
    the fleet boots *kernel_config*, because the adversary preps on
    hardware they control while the defense protects the victims'
    boards.  *teardown_hook* fires per wave after termination (see
    :data:`~repro.campaign.worker.TeardownHook`).

    *executor* selects board placement: ``"inprocess"`` (threads),
    ``"multiprocess"`` (*processes* workers sharding the fleet), or
    ``"auto"``.  *spool* files every scraped dump in a
    content-addressed store as soon as it is analyzed, so only wave-
    local dumps are ever resident.
    """
    started = time.perf_counter()
    if profiles is None:
        prepped_profiles, prepped_database = prepare_offline(spec)
        profiles = prepped_profiles
        database = database or prepped_database
    elif database is None:
        database = SignatureDatabase.from_profiles(profiles)

    chosen = resolve_executor(
        spec, executor, processes=processes, teardown_hook=teardown_hook
    )
    outcomes: list[VictimOutcome] = []
    lock = threading.Lock()

    def on_wave(board: int, wave: int, batch: list[VictimOutcome]) -> None:
        del board, wave
        with lock:
            outcomes.extend(batch)

    chosen.run(
        spec,
        range(spec.boards),
        profiles,
        database,
        kernel_config=kernel_config,
        teardown_hook=teardown_hook,
        spool=spool,
        on_wave=on_wave,
        on_board_complete=lambda board: None,
    )
    outcomes.sort(key=lambda outcome: outcome.job_id)
    return CampaignReport(
        spec=spec,
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - started,
    )
