"""Campaign results — per-victim outcomes rolled up to fleet stats.

:class:`CampaignReport` is the campaign analogue of the single-attack
:class:`~repro.attack.pipeline.AttackReport`: it keeps every
:class:`~repro.campaign.worker.VictimOutcome`, aggregates them per
model and per board, and renders one text summary.  Reports serialize
to JSON (spec included) so ``repro campaign run -o fleet.json`` and a
later ``repro campaign report fleet.json`` see identical numbers.

Aggregation is incremental: :class:`OutcomeAccumulator` folds outcomes
in one at a time, which is how the checkpointable runtime keeps fleet
totals live while outcomes stream out of worker processes — and the
report's own breakdowns are the same tallies, so streamed and batch
numbers can never disagree:

>>> outcome = VictimOutcome(
...     job_id=0, board_index=0, board_name="ZCU104",
...     model_name="resnet50_pt", tenant_index=0, launch_wave=0,
...     pid=871, identified_model="resnet50_pt", pixel_match_rate=1.0,
...     nbytes=4096, devmem_reads=1, pages_read=1, wall_seconds=0.0)
>>> tally = OutcomeAccumulator()
>>> tally.add(outcome)
>>> tally.victims, tally.succeeded
(1, 1)
>>> tally.per_model()[0].identification_rate
1.0
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.campaign.schedule import CampaignSpec, spec_from_dict
from repro.campaign.worker import VictimOutcome
from repro.evaluation.metrics import ThroughputStats


@dataclass(frozen=True)
class ModelBreakdown:
    """Aggregate outcomes for one model across the fleet."""

    model_name: str
    victims: int
    identified: int
    images_recovered: int

    @property
    def identification_rate(self) -> float:
        """Fraction of this model's victims correctly attributed."""
        return self.identified / self.victims if self.victims else 0.0


@dataclass(frozen=True)
class BoardBreakdown:
    """Aggregate outcomes for one fleet member."""

    board_index: int
    board_name: str
    victims: int
    succeeded: int
    nbytes: int
    devmem_reads: int


class OutcomeAccumulator:
    """Streaming fleet aggregation — outcomes fold in one at a time.

    The runtime adds each outcome the moment it is journaled, so
    fleet-wide tallies (and operator progress) never require holding
    more than the outcomes themselves; :class:`CampaignReport` builds
    its breakdowns through the same accumulator, so the incremental
    and batch views are one code path.
    """

    def __init__(self) -> None:
        self._victims = 0
        self._succeeded = 0
        self._models: dict[str, list[int]] = {}
        self._boards: dict[int, list] = {}

    @classmethod
    def of(cls, outcomes: list[VictimOutcome]) -> "OutcomeAccumulator":
        """An accumulator pre-folded over *outcomes*."""
        accumulator = cls()
        accumulator.extend(outcomes)
        return accumulator

    def add(self, outcome: VictimOutcome) -> None:
        """Fold one outcome into the running tallies."""
        self._victims += 1
        self._succeeded += outcome.succeeded
        model = self._models.setdefault(outcome.model_name, [0, 0, 0])
        model[0] += 1
        model[1] += outcome.identified_correctly
        model[2] += outcome.image_recovered
        board = self._boards.setdefault(
            outcome.board_index, [outcome.board_name, 0, 0, 0, 0]
        )
        board[1] += 1
        board[2] += outcome.succeeded
        board[3] += outcome.nbytes
        board[4] += outcome.devmem_reads

    def extend(self, outcomes: list[VictimOutcome]) -> None:
        """Fold a batch of outcomes in."""
        for outcome in outcomes:
            self.add(outcome)

    @property
    def victims(self) -> int:
        """Outcomes folded in so far."""
        return self._victims

    @property
    def succeeded(self) -> int:
        """Victims that leaked anything at all, so far."""
        return self._succeeded

    def per_model(self) -> list[ModelBreakdown]:
        """Running per-model aggregates, sorted by model name."""
        return [
            ModelBreakdown(
                model_name=name,
                victims=tally[0],
                identified=tally[1],
                images_recovered=tally[2],
            )
            for name, tally in sorted(self._models.items())
        ]

    def per_board(self) -> list[BoardBreakdown]:
        """Running per-board aggregates, by board index."""
        return [
            BoardBreakdown(
                board_index=index,
                board_name=tally[0],
                victims=tally[1],
                succeeded=tally[2],
                nbytes=tally[3],
                devmem_reads=tally[4],
            )
            for index, tally in sorted(self._boards.items())
        ]


@dataclass
class CampaignReport:
    """Everything a finished campaign learned, fleet-wide."""

    spec: CampaignSpec
    outcomes: list[VictimOutcome]
    wall_seconds: float

    # -- fleet-level rates ---------------------------------------------------

    @property
    def victims(self) -> int:
        """Victims attacked (scheduled and attempted)."""
        return len(self.outcomes)

    @property
    def identification_rate(self) -> float:
        """Fraction of victims whose model was correctly attributed."""
        if not self.outcomes:
            return 0.0
        return sum(
            1 for outcome in self.outcomes if outcome.identified_correctly
        ) / len(self.outcomes)

    @property
    def image_recovery_rate(self) -> float:
        """Fraction of victims whose secret input was recovered."""
        if not self.outcomes:
            return 0.0
        return sum(
            1 for outcome in self.outcomes if outcome.image_recovered
        ) / len(self.outcomes)

    @property
    def success_rate(self) -> float:
        """Fraction of victims that leaked anything at all."""
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.succeeded) / len(
            self.outcomes
        )

    @property
    def total_bytes(self) -> int:
        """Residue bytes scraped across the whole fleet."""
        return sum(outcome.nbytes for outcome in self.outcomes)

    @property
    def total_devmem_reads(self) -> int:
        """devmem invocations across the whole fleet."""
        return sum(outcome.devmem_reads for outcome in self.outcomes)

    @property
    def throughput(self) -> ThroughputStats:
        """Fleet scraping throughput over the campaign's wall time."""
        return ThroughputStats(
            nbytes=self.total_bytes,
            victims=self.victims,
            wall_seconds=self.wall_seconds,
        )

    # -- breakdowns ----------------------------------------------------------

    def per_model(self) -> list[ModelBreakdown]:
        """Outcome aggregates per model, sorted by model name."""
        return OutcomeAccumulator.of(self.outcomes).per_model()

    def per_board(self) -> list[BoardBreakdown]:
        """Outcome aggregates per fleet member, by board index."""
        return OutcomeAccumulator.of(self.outcomes).per_board()

    def failures(self) -> list[VictimOutcome]:
        """Victims whose attack died mid-pipeline."""
        return [o for o in self.outcomes if o.failed_step is not None]

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The fleet-wide text report ``repro campaign`` prints."""
        lines = [
            "=== Campaign report ===",
            (
                f"fleet: {self.spec.boards} boards "
                f"({', '.join(self.spec.board_names)}), "
                f"{self.victims} victims, "
                f"{self.spec.tenants_per_board} tenants/board, "
                f"wave size {self.spec.wave_size}, seed {self.spec.seed}"
            ),
            f"throughput: {self.throughput.describe()}",
            (
                f"success: {self.success_rate:.1%} overall "
                f"({self.identification_rate:.1%} models attributed, "
                f"{self.image_recovery_rate:.1%} images recovered)"
            ),
            f"devmem reads: {self.total_devmem_reads}",
            "",
            f"{'model':<18} {'victims':>7} {'identified':>10} {'images':>7}",
        ]
        for row in self.per_model():
            lines.append(
                f"{row.model_name:<18} {row.victims:>7} "
                f"{row.identified:>10} {row.images_recovered:>7}"
            )
        lines.append("")
        lines.append(
            f"{'board':<10} {'spec':<8} {'victims':>7} {'leaked':>7} "
            f"{'MiB':>8} {'reads':>8}"
        )
        for row in self.per_board():
            lines.append(
                f"board {row.board_index:<4} {row.board_name:<8} "
                f"{row.victims:>7} {row.succeeded:>7} "
                f"{row.nbytes / 1024**2:>8.1f} {row.devmem_reads:>8}"
            )
        failures = self.failures()
        if failures:
            lines.append("")
            lines.append(f"failures ({len(failures)}):")
            for outcome in failures:
                lines.append(
                    f"  job {outcome.job_id} ({outcome.model_name} on board "
                    f"{outcome.board_index}): {outcome.failed_step} — "
                    f"{outcome.detail}"
                )
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the report (spec and all outcomes) to JSON."""
        return json.dumps(
            {
                "spec": asdict(self.spec),
                "wall_seconds": self.wall_seconds,
                "outcomes": [asdict(outcome) for outcome in self.outcomes],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        """Rebuild a report from :meth:`to_json` output."""
        payload = json.loads(text)
        return cls(
            spec=spec_from_dict(payload["spec"]),
            outcomes=[
                VictimOutcome(**record) for record in payload["outcomes"]
            ],
            wall_seconds=payload["wall_seconds"],
        )
