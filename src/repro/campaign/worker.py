"""The per-board campaign worker — waves of co-resident victims.

One :class:`BoardWorker` owns one provisioned board and plays its
schedule wave by wave:

1. **launch** every victim of the wave (different tenants, secret
   images seeded by the scheduler) so they are co-resident;
2. **claim + snapshot** each victim while all are alive: observe it
   in ``ps`` (claimed pids are excluded from later sightings, so two
   victims running the same model never collide) and harvest its
   translations immediately — the earliest possible snapshot, stored
   in the board's translation cache;
3. **re-harvest** through the attack pipeline right before the wave
   ends — served from the cache, since the snapshot is still valid;
4. **terminate** the whole wave (the kernel's sanitize policy runs
   here; its wall cost and sync-scrub work are attributed per victim),
   then fire the optional *teardown hook* — the defense arena's
   injection point for attacker latency, during which the asynchronous
   scrub daemon gets to shrink the window of vulnerability;
5. **extract + analyze** each victim's residue, scoring the recovered
   image against the ground truth the worker launched with.

Workers share the campaign-wide :class:`ProfileStore` and
:class:`SignatureDatabase` (built once, offline — and carrying the
compiled Aho–Corasick signature automaton, so identification is one
pass per dump fleet-wide) and reuse the board's translation cache
across every attack they mount.  Dump analysis routes through the
shared scan core of :mod:`repro.analysis`, whose scratch tables warm
once per process and serve every wave of every board.  Boards are
fully independent simulations, so the engine runs one worker per
thread without any cross-board locking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.attack.addressing import AddressHarvester
from repro.attack.config import AttackConfig
from repro.attack.identify import SignatureDatabase
from repro.attack.pipeline import MemoryScrapingAttack
from repro.attack.profiling import ProfileStore
from repro.campaign.fleet import ProvisionedBoard
from repro.campaign.schedule import VictimJob
from repro.errors import (
    AttackError,
    IdentificationError,
    PermissionDeniedError,
)
from repro.evaluation.metrics import image_fidelity, nonzero_bytes
from repro.petalinux.kernel import PetaLinuxKernel
from repro.utils.buffers import BufferPool
from repro.vitis.app import VictimApplication, VictimRun
from repro.vitis.image import Image

if TYPE_CHECKING:
    from repro.campaign.runtime.spool import DumpSpool

TeardownHook = Callable[[PetaLinuxKernel], None]
"""Called once per wave, after every victim of the wave terminated and
before extraction starts.  The defense arena injects attacker latency
here (``kernel.tick(n)``) so the background scrubber races the scrape."""


@dataclass(frozen=True)
class VictimOutcome:
    """Everything one victim attack produced, plus ground truth."""

    job_id: int
    board_index: int
    board_name: str
    model_name: str
    tenant_index: int
    launch_wave: int
    pid: int
    identified_model: str | None
    pixel_match_rate: float | None
    nbytes: int
    devmem_reads: int
    pages_read: int
    wall_seconds: float
    """Attack time spent on *this* victim only (steps 1-2 plus 3-4);
    waiting on the wave's other victims is not attributed here."""
    failed_step: str | None = None
    detail: str = ""
    residue_nbytes: int = 0
    """Nonzero bytes in the scraped dump — the residue that actually
    leaked.  A zero-on-free kernel scrapes the same page count but
    this drops to 0; it is the defense matrix's leakage axis."""
    teardown_seconds: float = 0.0
    """Wall time the kernel spent terminating this victim.  Includes
    the synchronous scrub under ``ZERO_ON_FREE`` — the defense's
    latency cost at teardown time."""
    frames_scrubbed_sync: int = 0
    """Frames scrubbed synchronously during this victim's teardown."""
    dump_sha256: str | None = None
    """Content digest of the scraped dump when a spool filed it —
    the key to read the raw residue back from the run directory's
    content-addressed store.  ``None`` for unspooled runs and for
    victims whose attack failed before extraction."""

    @property
    def identified_correctly(self) -> bool:
        """Whether step 4a attributed the model the victim ran."""
        return self.identified_model == self.model_name

    @property
    def image_recovered(self) -> bool:
        """Whether step 4b recovered the input essentially intact."""
        return (
            self.pixel_match_rate is not None and self.pixel_match_rate > 0.99
        )

    @property
    def succeeded(self) -> bool:
        """Success = private data leaked (model name or input image)."""
        return self.identified_correctly or self.image_recovered


@dataclass
class _WaveAttack:
    """Bookkeeping for one victim between harvest and analysis."""

    job: VictimJob
    run: VictimRun
    secret: Image
    attack: MemoryScrapingAttack
    pid: int = -1
    elapsed: float = 0.0
    teardown_seconds: float = 0.0
    frames_scrubbed_sync: int = 0


class BoardWorker:
    """Runs one board's share of the campaign schedule."""

    def __init__(
        self,
        board: ProvisionedBoard,
        profiles: ProfileStore,
        database: SignatureDatabase,
        config: AttackConfig,
        teardown_hook: TeardownHook | None = None,
        spool: "DumpSpool | None" = None,
    ) -> None:
        self._board = board
        self._profiles = profiles
        self._database = database
        self._config = config
        self._teardown_hook = teardown_hook
        self._spool = spool
        self._claimed_pids: set[int] = set()
        # One extraction-buffer pool per board: victims of the same
        # model have identical heap sizes, so after the first wave
        # scraping recycles buffers instead of allocating per victim.
        self._buffer_pool = BufferPool()
        # Early-snapshot harvester: shares the board cache with every
        # attack pipeline, so the pipeline's own harvest is a hit.
        self._harvester = AddressHarvester(
            board.session.attacker_shell.procfs,
            caller=board.session.attacker_shell.user,
            cache=board.translation_cache,
        )

    def run_jobs(self, jobs: list[VictimJob]) -> list[VictimOutcome]:
        """Play every wave of this board's schedule; returns outcomes."""
        outcomes: list[VictimOutcome] = []
        for _, wave_outcomes in self.iter_waves(jobs):
            outcomes.extend(wave_outcomes)
        return outcomes

    def iter_waves(
        self, jobs: list[VictimJob]
    ) -> Iterator[tuple[int, list[VictimOutcome]]]:
        """Play the schedule wave by wave, yielding each wave's outcomes.

        This is the campaign runtime's streaming interface: outcomes
        reach the journal (and the incremental aggregator) as soon as
        their wave completes, and the dump bytes behind them are
        already spooled to disk — nothing accumulates in the worker
        between waves.
        """
        waves: dict[int, list[VictimJob]] = {}
        for job in jobs:
            waves.setdefault(job.launch_wave, []).append(job)
        for wave in sorted(waves):
            yield wave, self._run_wave(waves[wave])

    def _run_wave(self, jobs: list[VictimJob]) -> list[VictimOutcome]:
        session = self._board.session
        in_flight: list[_WaveAttack] = []
        for job in jobs:
            secret = Image.test_pattern(
                session.input_hw, session.input_hw, seed=job.image_seed
            )
            # A zero fraction schedules an *uncorrupted* secret;
            # Image.corrupted rejects it because corrupting zero rows
            # is not a corruption.  (Found by the fuzzlab shrinker:
            # CampaignSpec allows 0.0 but this call used to crash the
            # whole board worker on it.)
            if job.corruption_fraction > 0.0:
                secret = secret.corrupted(job.corruption_fraction)
            run = VictimApplication(
                self._board.tenant(job.tenant_index),
                input_hw=session.input_hw,
            ).launch(job.model_name, image=secret)
            attack = MemoryScrapingAttack(
                session.attacker_shell,
                self._profiles,
                config=self._config,
                database=self._database,
                translation_cache=self._board.translation_cache,
                buffer_pool=self._buffer_pool,
            )
            in_flight.append(
                _WaveAttack(job=job, run=run, secret=secret, attack=attack)
            )

        # Failed entries are recorded *after* the wave terminates, so
        # their outcomes still carry real teardown cost (a victim that
        # dodged observation is torn down — and scrubbed — all the same).
        failed: list[tuple[_WaveAttack, str, Exception]] = []
        claimed: list[_WaveAttack] = []
        for entry in in_flight:
            started = time.perf_counter()
            try:
                sighting = entry.attack.observe_victim(
                    entry.job.model_name,
                    exclude_pids=frozenset(self._claimed_pids),
                )
                entry.pid = sighting.pid
                self._claimed_pids.add(sighting.pid)
                # Snapshot translations as early as possible; the
                # board cache keeps them for the pipeline's step 2.
                self._harvester.harvest(sighting.pid)
            except (AttackError, PermissionDeniedError) as error:
                entry.elapsed += time.perf_counter() - started
                failed.append((entry, "step 1-2 (observe/harvest)", error))
                continue
            entry.elapsed += time.perf_counter() - started
            claimed.append(entry)

        live: list[_WaveAttack] = []
        for entry in claimed:
            started = time.perf_counter()
            try:
                entry.attack.harvest_addresses()
            except (AttackError, PermissionDeniedError) as error:
                entry.elapsed += time.perf_counter() - started
                failed.append((entry, "step 1-2 (observe/harvest)", error))
                continue
            entry.elapsed += time.perf_counter() - started
            live.append(entry)

        sanitizer = session.kernel.sanitizer
        for entry in in_flight:
            if entry.run.alive:
                scrubbed_before = sanitizer.stats.frames_scrubbed_sync
                started = time.perf_counter()
                entry.run.terminate()
                entry.teardown_seconds = time.perf_counter() - started
                entry.frames_scrubbed_sync = (
                    sanitizer.stats.frames_scrubbed_sync - scrubbed_before
                )
        if self._teardown_hook is not None:
            self._teardown_hook(session.kernel)

        outcomes = [
            self._failed(entry, step, error) for entry, step, error in failed
        ]
        for entry in live:
            outcomes.append(self._extract_and_analyze(entry))
        return outcomes

    def _extract_and_analyze(self, entry: _WaveAttack) -> VictimOutcome:
        started = time.perf_counter()
        try:
            dump = entry.attack.extract()
        except (AttackError, PermissionDeniedError) as error:
            entry.elapsed += time.perf_counter() - started
            return self._failed(entry, "step 3 (extract)", error)
        identification = None
        fidelity = None
        detail = ""
        try:
            report = entry.attack.analyze()
        except (IdentificationError, AttackError) as error:
            # The dump was scraped but attributes to no model (e.g. a
            # scrub defense): not a machinery failure — record the
            # real extraction stats with an empty attribution.
            detail = str(error)
        else:
            identification = report.identification
            if report.reconstruction is not None:
                fidelity = image_fidelity(
                    report.reconstruction.image, entry.secret
                )
        entry.elapsed += time.perf_counter() - started
        # Spool handoff: the dump's bytes go to the content-addressed
        # store now, so the outcome (a few scalars) is all that stays
        # resident once this wave ends.
        dump_sha256 = (
            self._spool.put(dump).sha256 if self._spool is not None else None
        )
        residue_nbytes = nonzero_bytes(dump.data)
        nbytes = dump.nbytes
        # Everything the outcome needs has been read; hand the
        # extraction buffer back for the next victim.  Any later
        # access to dump.data raises instead of aliasing a recycled
        # buffer; the raw residue lives on in the spool.
        dump.release()
        return VictimOutcome(
            job_id=entry.job.job_id,
            board_index=self._board.index,
            board_name=self._board.name,
            model_name=entry.job.model_name,
            tenant_index=entry.job.tenant_index,
            launch_wave=entry.job.launch_wave,
            pid=entry.pid,
            identified_model=(
                identification.best_model if identification else None
            ),
            pixel_match_rate=(
                fidelity.pixel_match_rate if fidelity is not None else None
            ),
            nbytes=nbytes,
            devmem_reads=dump.devmem_reads,
            pages_read=dump.pages_read,
            wall_seconds=entry.elapsed,
            detail=detail,
            residue_nbytes=residue_nbytes,
            teardown_seconds=entry.teardown_seconds,
            frames_scrubbed_sync=entry.frames_scrubbed_sync,
            dump_sha256=dump_sha256,
        )

    def _failed(
        self, entry: _WaveAttack, step: str, error: Exception
    ) -> VictimOutcome:
        return VictimOutcome(
            job_id=entry.job.job_id,
            board_index=self._board.index,
            board_name=self._board.name,
            model_name=entry.job.model_name,
            tenant_index=entry.job.tenant_index,
            launch_wave=entry.job.launch_wave,
            pid=entry.pid,
            identified_model=None,
            pixel_match_rate=None,
            nbytes=0,
            devmem_reads=0,
            pages_read=0,
            wall_seconds=entry.elapsed,
            failed_step=step,
            detail=str(error),
            teardown_seconds=entry.teardown_seconds,
            frames_scrubbed_sync=entry.frames_scrubbed_sync,
        )
