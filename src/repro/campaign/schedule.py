"""Campaign specification and the deterministic victim scheduler.

A campaign is *N* boards times *M* victims: the scheduler decides
which board runs which model, under which tenant, in which launch
wave.  Everything is a pure function of :class:`CampaignSpec` — two
schedules built from equal specs are equal element for element, which
is what makes fleet experiments reproducible and lets the regression
tests pin exact assignments.

Victims on the same board and wave are *co-resident*: they are
launched together, live simultaneously (multi-tenant occupancy), and
terminate together before the next wave starts — the staggered
launch/terminate choreography one board of a busy cloud region sees.

Two equal specs always yield element-for-element equal schedules, and
a spec round-trips losslessly through :func:`spec_to_dict` /
:func:`spec_from_dict` — which is what lets the checkpointable runtime
rebuild the exact schedule from a run directory's ``spec.json`` and
lets multiprocess workers rebuild their own jobs from the spec alone:

>>> spec = CampaignSpec(boards=2, victims=4, seed=7)
>>> jobs = build_schedule(spec)
>>> [(j.job_id, j.board_index, j.launch_wave) for j in jobs]
[(0, 0, 0), (1, 1, 0), (2, 0, 0), (3, 1, 0)]
>>> build_schedule(spec_from_dict(spec_to_dict(spec))) == jobs
True
>>> sorted(jobs_by_board(jobs))
[0, 1]
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.vitis.zoo import MODEL_NAMES

DEFAULT_MODEL_MIX = ("resnet50_pt", "squeezenet_pt", "inception_v1_tf")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that defines one fleet campaign.

    The spec is hashable and JSON-trivial so reports can embed it and
    a schedule can always be rebuilt from a report.
    """

    boards: int = 4
    victims: int = 8
    model_mix: tuple[str, ...] = DEFAULT_MODEL_MIX
    tenants_per_board: int = 2
    """Distinct victim-side users per board; co-resident victims cycle
    through them, so one wave genuinely spans user accounts."""
    wave_size: int = 2
    """Victims launched (and later terminated) together per board."""
    seed: int = 0
    input_hw: int = 32
    corruption_fraction: float = 0.2
    board_names: tuple[str, ...] = ("ZCU104", "ZCU102")
    max_workers: int | None = None
    """Worker threads over the fleet; ``None`` = one per board."""
    coalesce_reads: bool = True
    """Campaigns default to the batched extraction hot path."""

    def __post_init__(self) -> None:
        if self.boards <= 0:
            raise ValueError(f"boards must be positive, got {self.boards}")
        if self.victims <= 0:
            raise ValueError(f"victims must be positive, got {self.victims}")
        if self.tenants_per_board <= 0:
            raise ValueError("tenants_per_board must be positive")
        if self.wave_size <= 0:
            raise ValueError("wave_size must be positive")
        if not self.model_mix:
            raise ValueError("model_mix cannot be empty")
        unknown = sorted(set(self.model_mix) - set(MODEL_NAMES))
        if unknown:
            raise ValueError(f"unknown models in mix: {unknown}")
        if not 0.0 <= self.corruption_fraction <= 1.0:
            raise ValueError("corruption_fraction must be in [0, 1]")


@dataclass(frozen=True)
class VictimJob:
    """One scheduled victim: where it runs, what it runs, when."""

    job_id: int
    board_index: int
    tenant_index: int
    launch_wave: int
    model_name: str
    image_seed: int
    corruption_fraction: float


def build_schedule(spec: CampaignSpec) -> list[VictimJob]:
    """Assign every victim a board, tenant, wave, model, and image.

    Boards are filled round-robin (even fleet utilization); the model
    and the secret-image seed come from one ``random.Random(seed)``
    stream, so a fixed spec seed reproduces the identical campaign.
    Returned jobs are ordered by ``job_id``.
    """
    rng = random.Random(spec.seed)
    jobs = []
    per_board_count = [0] * spec.boards
    for job_id in range(spec.victims):
        board_index = job_id % spec.boards
        sequence = per_board_count[board_index]
        per_board_count[board_index] += 1
        jobs.append(
            VictimJob(
                job_id=job_id,
                board_index=board_index,
                tenant_index=sequence % spec.tenants_per_board,
                launch_wave=sequence // spec.wave_size,
                model_name=rng.choice(spec.model_mix),
                image_seed=rng.randrange(1, 1 << 20),
                corruption_fraction=spec.corruption_fraction,
            )
        )
    return jobs


def jobs_by_board(jobs: list[VictimJob]) -> dict[int, list[VictimJob]]:
    """Group a schedule per board, preserving job order."""
    grouped: dict[int, list[VictimJob]] = {}
    for job in jobs:
        grouped.setdefault(job.board_index, []).append(job)
    return grouped


def spec_to_dict(spec: CampaignSpec) -> dict:
    """The spec as a JSON-trivial dict (tuples become lists)."""
    return asdict(spec)


def spec_from_dict(payload: dict) -> CampaignSpec:
    """Rebuild a spec from :func:`spec_to_dict` output (or its JSON)."""
    fields = dict(payload)
    for key in ("model_mix", "board_names"):
        fields[key] = tuple(fields[key])
    return CampaignSpec(**fields)
