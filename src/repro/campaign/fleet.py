"""Fleet provisioning — booting N board twins for one campaign.

Each provisioned board is a full :class:`BoardSession` (SoC + kernel +
attacker terminal) plus the campaign extras: one victim-side shell per
tenant and one :class:`~repro.attack.addressing.TranslationCache`
shared by every attack mounted on that board.  Board specs cycle
through the spec's ``board_names`` the way a cloud region mixes
instance types, and each board boots with its own DRAM fill seed so
power-up residue differs across the fleet.

Boards boot the vulnerable default kernel unless the caller injects a
:class:`~repro.petalinux.kernel.KernelConfig` — the provisioning-time
half of the defense-injection hook the :mod:`repro.defense` arena uses
to run the same campaign under different hardening profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.addressing import TranslationCache
from repro.campaign.schedule import CampaignSpec
from repro.evaluation.scenarios import BoardSession
from repro.hw.board import fleet_specs
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.shell import Shell

# The standard terminals take uids 1001/1002 and pts/0-1; extra
# tenants slot in above both ranges.
_EXTRA_TENANT_UID_BASE = 1100


def tenant_uids(spec: CampaignSpec) -> tuple[int, ...]:
    """The victim-side uids a provisioned board will host.

    Tenant 0 is the standard victim account (uid 1002); extras get
    uids above :data:`_EXTRA_TENANT_UID_BASE`.  Exposed so defense
    profiles can pin Xen domains to exactly the users the campaign
    will run.
    """
    uids = [1002]
    for extra in range(1, spec.tenants_per_board):
        uids.append(_EXTRA_TENANT_UID_BASE + extra)
    return tuple(uids)


@dataclass
class ProvisionedBoard:
    """One booted fleet member, ready to run victims and attacks."""

    index: int
    session: BoardSession
    tenant_shells: list[Shell]
    translation_cache: TranslationCache

    @property
    def name(self) -> str:
        """The underlying board spec name (``ZCU104``/``ZCU102``)."""
        return self.session.soc.board.name

    def tenant(self, tenant_index: int) -> Shell:
        """The victim-side shell for one tenant slot."""
        return self.tenant_shells[tenant_index]


def provision_board(
    spec: CampaignSpec,
    index: int,
    kernel_config: KernelConfig | None = None,
) -> ProvisionedBoard:
    """Boot fleet member *index* of the campaign described by *spec*.

    Each board is a pure function of ``(spec, index)``: the spec picks
    the board model, the index seeds the power-up DRAM fill, and the
    kernel boots fresh — which is what lets the campaign runtime
    provision boards lazily, in any process, and still get the exact
    simulation an up-front :func:`provision_fleet` would have built.

    Tenant 0 is the session's standard victim terminal; additional
    tenants log in as fresh users on their own pseudo-terminals, so
    co-resident victims in one wave genuinely run under different
    uids (the multi-tenant threat model).
    """
    board_spec = fleet_specs(spec.boards, spec.board_names)[index]
    session = BoardSession.boot(
        config=kernel_config,
        board=board_spec,
        input_hw=spec.input_hw,
        fill_seed=index,
    )
    tenants = [session.victim_shell]
    for extra, extra_uid in enumerate(tenant_uids(spec)[1:], start=1):
        tenants.append(
            session.add_tenant(
                name=f"guest{extra}",
                uid=extra_uid,
                tty=f"pts/{1 + extra}",
            )
        )
    return ProvisionedBoard(
        index=index,
        session=session,
        tenant_shells=tenants,
        translation_cache=TranslationCache(),
    )


def provision_fleet(
    spec: CampaignSpec, kernel_config: KernelConfig | None = None
) -> list[ProvisionedBoard]:
    """Boot the whole fleet described by *spec*.

    *kernel_config* boots every board hardened (or differently
    misconfigured) instead of with the vulnerable default — the
    defense arena's provisioning hook.
    """
    return [
        provision_board(spec, index, kernel_config)
        for index in range(spec.boards)
    ]
