"""The dump spool — a content-addressed on-disk store for residue.

A long campaign scrapes one dump per victim; keeping them all resident
would grow memory linearly with campaign size.  The spool instead
files each :class:`~repro.attack.extraction.ScrapedDump` on disk the
moment step-4 analysis finishes, addressed by the dump's own SHA-256
(:attr:`ScrapedDump.sha256 <repro.attack.extraction.ScrapedDump.sha256>`),
and the worker drops its reference — peak resident dump memory is
bounded by one wave per board, regardless of how many victims the
campaign schedules.

Layout on disk::

    <root>/
      objects/<aa>/<sha256>.bin   raw dump bytes (aa = first digest byte)
      manifest.json               job_id -> digest map, written by the
                                  runtime when the campaign completes

Content addressing buys three operational properties:

- **deduplication** — identical residue (every all-zero dump a
  zero-on-free kernel yields, co-residents with identical heaps) is
  stored once fleet-wide;
- **idempotent writes** — re-running a board after a crash re-puts the
  same objects under the same names, so resume never corrupts or
  duplicates the store (writes go through a temp file + atomic
  ``os.replace``, safe under concurrent multiprocess workers);
- **verifiability** — any object can be checked against its own file
  name.

>>> import tempfile
>>> from repro.attack.extraction import ScrapedDump
>>> spool = DumpSpool(tempfile.mkdtemp() + "/spool")
>>> dump = ScrapedDump(pid=871, heap_start=0, data=b"residue",
...                    pages_read=1, pages_skipped=0, devmem_reads=1)
>>> entry = spool.put(dump)
>>> spool.read(entry.sha256)
b'residue'
>>> spool.put(dump).deduplicated  # identical residue is stored once
True
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.attack.extraction import ScrapedDump
from repro.errors import SpoolClosedError


@dataclass(frozen=True)
class SpoolEntry:
    """Receipt for one spooled dump."""

    sha256: str
    nbytes: int
    deduplicated: bool
    """True when an identical dump was already in the store."""


class MappedDump:
    """A read-only memory-mapped view of one spooled object.

    Obtained from :meth:`DumpSpool.open`.  ``data`` is the raw mmap
    (``b""`` for zero-length objects — empty files cannot be mapped),
    which every analysis path consumes zero-copy: carving, entropy and
    identification scan the page cache directly, never a slurped copy.

    The lifecycle is explicit: :meth:`close` (or the context manager)
    unmaps and closes the file descriptor, and any access afterwards
    raises :class:`~repro.errors.SpoolClosedError` instead of touching
    a stale mapping.  Closing while a live buffer export exists (e.g.
    a numpy array still aliasing the map) raises ``BufferError`` —
    drop the arrays first; the scan paths only hold views for the
    duration of a call.

    >>> with spool.open(digest) as mapped:          # doctest: +SKIP
    ...     regions = cartographer.map_dump(mapped.data)
    """

    def __init__(self, path: Path, sha256: str) -> None:
        self._sha256 = sha256
        self._closed = False
        size = path.stat().st_size
        if size == 0:
            self._file = None
            self._map: mmap.mmap | bytes = b""
        else:
            self._file = path.open("rb")
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        self._nbytes = size

    @property
    def sha256(self) -> str:
        """The content digest this handle was opened under."""
        return self._sha256

    @property
    def nbytes(self) -> int:
        """Object size in bytes (valid even after close)."""
        return self._nbytes

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def data(self) -> "mmap.mmap | bytes":
        """The mapped bytes, zero-copy; raises once closed."""
        if self._closed:
            raise SpoolClosedError(
                f"spool object {self._sha256[:12]}… was closed; "
                "re-open it via DumpSpool.open() before reading"
            )
        return self._map

    def to_dump(self, pid: int = -1, heap_start: int = 0) -> ScrapedDump:
        """Rehydrate the object as an mmap-backed :class:`ScrapedDump`.

        Extraction bookkeeping (page/read counters) is not stored in
        the spool, so those fields are zero; the analysis paths only
        touch ``data``.
        """
        return ScrapedDump(
            pid=pid,
            heap_start=heap_start,
            data=self.data,
            pages_read=0,
            pages_skipped=0,
            devmem_reads=0,
        )

    def close(self) -> None:
        """Unmap and release the file descriptor.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            if isinstance(self._map, mmap.mmap):
                self._map.close()
        finally:
            self._map = b""
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "MappedDump":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Last-resort cleanup; the explicit close()/with-block is the
        # contract (and what the fd-leak tests pin).
        try:
            self.close()
        except BufferError:  # pragma: no cover — exports still alive
            pass


class DumpSpool:
    """Content-addressed dump store rooted at one directory."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = Path(root)
        (self._root / "objects").mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        self._put_hits = 0
        self._put_misses = 0

    @property
    def root(self) -> Path:
        """The spool's root directory."""
        return self._root

    @property
    def manifest_path(self) -> Path:
        """Where the runtime files the job → digest manifest."""
        return self._root / "manifest.json"

    def object_path(self, sha256: str) -> Path:
        """Where a digest's bytes live (whether or not they exist yet)."""
        return self._root / "objects" / sha256[:2] / f"{sha256}.bin"

    def put(self, dump: ScrapedDump) -> SpoolEntry:
        """File one dump's bytes; a no-op when the content is known.

        The write lands in a temp file first and is published with an
        atomic rename, so concurrent workers (threads or processes)
        racing on the same digest converge on one valid object.
        """
        return self._publish(dump.sha256, dump.data, dump.nbytes)

    def put_bytes(self, data: bytes) -> SpoolEntry:
        """File raw bytes under their own SHA-256.

        The transport-side twin of :meth:`put` — the distributed
        fabric receives dump payloads off the wire as plain bytes with
        no :class:`ScrapedDump` around them, hashes them itself, and
        files them here; the returned entry's digest is therefore
        always trustworthy regardless of what the sender claimed.
        """
        digest = hashlib.sha256(data).hexdigest()
        return self._publish(digest, data, len(data))

    def _publish(
        self, digest: str, data: "bytes | mmap.mmap", nbytes: int
    ) -> SpoolEntry:
        path = self.object_path(digest)
        if path.exists():
            with self._stats_lock:
                self._put_hits += 1
            return SpoolEntry(digest, nbytes, deduplicated=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Scratch name is unique per writer (pid *and* thread: the
        # in-process executor runs one board per thread on one pid),
        # so racing writers never share a temp file and both renames
        # publish identical content.
        scratch = path.parent / (
            f"{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        scratch.write_bytes(data)
        os.replace(scratch, path)
        with self._stats_lock:
            self._put_misses += 1
        return SpoolEntry(digest, nbytes, deduplicated=False)

    def put_stats(self) -> dict:
        """Dedup telemetry for this handle's lifetime.

        ``hits`` counts puts satisfied by an already-filed object,
        ``misses`` counts fresh writes; ``hit_rate`` is hits over all
        puts (0.0 before the first put).  Feeds the analysis service's
        ``/stats`` surface — a high hit rate on an ingest daemon means
        clients keep re-uploading residue the store already holds.
        """
        with self._stats_lock:
            total = self._put_hits + self._put_misses
            return {
                "hits": self._put_hits,
                "misses": self._put_misses,
                "hit_rate": (self._put_hits / total) if total else 0.0,
            }

    def read(self, sha256: str) -> bytes:
        """The raw dump bytes filed under *sha256*, slurped into memory.

        Raises :class:`FileNotFoundError` for digests never spooled.
        For large objects prefer :meth:`open`, which maps the file
        instead of copying it.
        """
        return self.object_path(sha256).read_bytes()

    def open(self, sha256: str) -> MappedDump:
        """Memory-map the object filed under *sha256* — a zero-copy read.

        The returned :class:`MappedDump` exposes the object's bytes
        straight from the page cache; close it (or use it as a context
        manager) when done.  Because spool objects are immutable once
        published (content-addressed, atomic rename), a read-only map
        is always coherent.  Raises :class:`FileNotFoundError` for
        digests never spooled.
        """
        path = self.object_path(sha256)
        if not path.exists():
            raise FileNotFoundError(
                f"no spooled object {sha256} under {self._root}"
            )
        return MappedDump(path, sha256)

    def __contains__(self, sha256: str) -> bool:
        return self.object_path(sha256).exists()

    def digests(self) -> list[str]:
        """Every object in the store, sorted."""
        return sorted(
            path.stem
            for path in (self._root / "objects").glob("*/*.bin")
        )

    def total_bytes(self) -> int:
        """Bytes the store holds on disk (deduplicated)."""
        return sum(
            path.stat().st_size
            for path in (self._root / "objects").glob("*/*.bin")
        )

    # -- manifest ------------------------------------------------------------

    def write_manifest(self, records: list[dict]) -> Path:
        """Write the job → digest manifest (one record per outcome).

        *records* is the runtime's deterministic view of which spooled
        object belongs to which ``(job_id, board, wave)``; orphaned
        objects from interrupted runs may exist on disk beyond it —
        harmless, and reclaimed the next time the digest recurs.
        """
        payload = {"format": 1, "dumps": records}
        self.manifest_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return self.manifest_path

    def load_manifest(self) -> list[dict]:
        """The manifest's dump records ([] when never written)."""
        if not self.manifest_path.exists():
            return []
        return json.loads(self.manifest_path.read_text())["dumps"]
