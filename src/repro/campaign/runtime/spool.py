"""The dump spool — a content-addressed on-disk store for residue.

A long campaign scrapes one dump per victim; keeping them all resident
would grow memory linearly with campaign size.  The spool instead
files each :class:`~repro.attack.extraction.ScrapedDump` on disk the
moment step-4 analysis finishes, addressed by the dump's own SHA-256
(:attr:`ScrapedDump.sha256 <repro.attack.extraction.ScrapedDump.sha256>`),
and the worker drops its reference — peak resident dump memory is
bounded by one wave per board, regardless of how many victims the
campaign schedules.

Layout on disk::

    <root>/
      objects/<aa>/<sha256>.bin   raw dump bytes (aa = first digest byte)
      manifest.json               job_id -> digest map, written by the
                                  runtime when the campaign completes

Content addressing buys three operational properties:

- **deduplication** — identical residue (every all-zero dump a
  zero-on-free kernel yields, co-residents with identical heaps) is
  stored once fleet-wide;
- **idempotent writes** — re-running a board after a crash re-puts the
  same objects under the same names, so resume never corrupts or
  duplicates the store (writes go through a temp file + atomic
  ``os.replace``, safe under concurrent multiprocess workers);
- **verifiability** — any object can be checked against its own file
  name.

>>> import tempfile
>>> from repro.attack.extraction import ScrapedDump
>>> spool = DumpSpool(tempfile.mkdtemp() + "/spool")
>>> dump = ScrapedDump(pid=871, heap_start=0, data=b"residue",
...                    pages_read=1, pages_skipped=0, devmem_reads=1)
>>> entry = spool.put(dump)
>>> spool.read(entry.sha256)
b'residue'
>>> spool.put(dump).deduplicated  # identical residue is stored once
True
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.attack.extraction import ScrapedDump


@dataclass(frozen=True)
class SpoolEntry:
    """Receipt for one spooled dump."""

    sha256: str
    nbytes: int
    deduplicated: bool
    """True when an identical dump was already in the store."""


class DumpSpool:
    """Content-addressed dump store rooted at one directory."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = Path(root)
        (self._root / "objects").mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The spool's root directory."""
        return self._root

    @property
    def manifest_path(self) -> Path:
        """Where the runtime files the job → digest manifest."""
        return self._root / "manifest.json"

    def object_path(self, sha256: str) -> Path:
        """Where a digest's bytes live (whether or not they exist yet)."""
        return self._root / "objects" / sha256[:2] / f"{sha256}.bin"

    def put(self, dump: ScrapedDump) -> SpoolEntry:
        """File one dump's bytes; a no-op when the content is known.

        The write lands in a temp file first and is published with an
        atomic rename, so concurrent workers (threads or processes)
        racing on the same digest converge on one valid object.
        """
        digest = dump.sha256
        path = self.object_path(digest)
        if path.exists():
            return SpoolEntry(digest, dump.nbytes, deduplicated=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Scratch name is unique per writer (pid *and* thread: the
        # in-process executor runs one board per thread on one pid),
        # so racing writers never share a temp file and both renames
        # publish identical content.
        scratch = path.parent / (
            f"{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        scratch.write_bytes(dump.data)
        os.replace(scratch, path)
        return SpoolEntry(digest, dump.nbytes, deduplicated=False)

    def read(self, sha256: str) -> bytes:
        """The raw dump bytes filed under *sha256*.

        Raises :class:`FileNotFoundError` for digests never spooled.
        """
        return self.object_path(sha256).read_bytes()

    def __contains__(self, sha256: str) -> bool:
        return self.object_path(sha256).exists()

    def digests(self) -> list[str]:
        """Every object in the store, sorted."""
        return sorted(
            path.stem
            for path in (self._root / "objects").glob("*/*.bin")
        )

    def total_bytes(self) -> int:
        """Bytes the store holds on disk (deduplicated)."""
        return sum(
            path.stat().st_size
            for path in (self._root / "objects").glob("*/*.bin")
        )

    # -- manifest ------------------------------------------------------------

    def write_manifest(self, records: list[dict]) -> Path:
        """Write the job → digest manifest (one record per outcome).

        *records* is the runtime's deterministic view of which spooled
        object belongs to which ``(job_id, board, wave)``; orphaned
        objects from interrupted runs may exist on disk beyond it —
        harmless, and reclaimed the next time the digest recurs.
        """
        payload = {"format": 1, "dumps": records}
        self.manifest_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return self.manifest_path

    def load_manifest(self) -> list[dict]:
        """The manifest's dump records ([] when never written)."""
        if not self.manifest_path.exists():
            return []
        return json.loads(self.manifest_path.read_text())["dumps"]
