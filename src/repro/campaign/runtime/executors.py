"""Campaign executors — how board shards actually get scheduled.

Both executors present one contract: given a spec and a set of board
indices, run each board's waves and stream results through two
callbacks — ``on_wave(board, wave, outcomes)`` as each wave completes
and ``on_board_complete(board)`` once a board's whole schedule has
been delivered.  The caller (the engine for plain runs, the
:class:`~repro.campaign.runtime.runner.CampaignRuntime` for
checkpointed ones) owns ordering, journaling, and aggregation; the
executor owns only placement and transport.

- :class:`InProcessExecutor` — one thread per board in the calling
  process, sharing the prepped :class:`ProfileStore` and the compiled
  signature automaton by reference.  The right choice for small
  fleets and the only one that supports ``teardown_hook`` (a live
  callable cannot cross a process boundary).
- :class:`MultiprocessExecutor` — boards sharded round-robin across a
  ``multiprocessing`` worker pool.  Each worker receives the spec and
  the offline prep *by value* (spec dict + profiles JSON + the mined
  signature database as a token payload — re-mining signatures per
  worker is quadratic in the model mix and was the dominant cost of
  worker startup), provisions only its own boards, and streams wave
  outcomes back over a queue as plain dicts.  Because a board
  simulation is a pure function of ``(spec, board_index)`` and both
  the profile notebook and the database payload round-trip
  losslessly, the outcomes are **identical** to the in-process
  executor's — the regression suite pins this.

:func:`resolve_executor` applies the default placement policy: fleets
of :data:`MULTIPROCESS_AUTO_BOARDS` boards or more go multiprocess,
smaller ones stay in-process where thread startup is free and the
shared automaton is warm.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Callable, Iterable, Sequence

from repro.attack.config import AttackConfig
from repro.attack.identify import SignatureDatabase
from repro.attack.profiling import ProfileStore
from repro.campaign.fleet import provision_board
from repro.campaign.runtime.spool import DumpSpool
from repro.campaign.schedule import (
    CampaignSpec,
    build_schedule,
    jobs_by_board,
    spec_from_dict,
    spec_to_dict,
)
from repro.campaign.worker import BoardWorker, TeardownHook, VictimOutcome
from repro.petalinux.kernel import KernelConfig

WaveSink = Callable[[int, int, list[VictimOutcome]], None]
"""``on_wave(board_index, wave, outcomes)`` — invoked as each wave
completes.  May be called from several threads at once (in-process
executor); the multiprocess executor serializes calls through its
parent-side queue drain.  Raising
:class:`~repro.errors.CampaignInterrupted` from the sink aborts the
run (the runtime's fault-injection point)."""

BoardSink = Callable[[int], None]
"""``on_board_complete(board_index)`` — every wave of the board has
been delivered to the wave sink."""

MULTIPROCESS_AUTO_BOARDS = 8
"""Fleet size at which ``executor="auto"`` switches to processes."""

_QUEUE_POLL_SECONDS = 1.0


class CampaignExecutionError(RuntimeError):
    """A worker process died; carries its formatted traceback."""


def resolve_executor(
    spec: CampaignSpec,
    executor: "str | InProcessExecutor | MultiprocessExecutor" = "auto",
    *,
    processes: int | None = None,
    teardown_hook: TeardownHook | None = None,
) -> "InProcessExecutor | MultiprocessExecutor":
    """Turn an executor name (or instance) into a ready executor.

    ``"auto"`` picks processes for fleets of
    :data:`MULTIPROCESS_AUTO_BOARDS`+ boards, threads otherwise — and
    always threads when a *teardown_hook* is present, since a live
    callable cannot be shipped to a worker process.  Passing an
    executor instance returns it unchanged (after the hook check).
    """
    if not isinstance(executor, str):
        if isinstance(executor, MultiprocessExecutor) and teardown_hook:
            raise ValueError(
                "teardown_hook requires the in-process executor"
            )
        return executor
    name = executor
    if name == "auto":
        name = (
            "multiprocess"
            if spec.boards >= MULTIPROCESS_AUTO_BOARDS
            and teardown_hook is None
            else "inprocess"
        )
    if name == "inprocess":
        return InProcessExecutor()
    if name == "multiprocess":
        if teardown_hook is not None:
            raise ValueError("teardown_hook requires the in-process executor")
        return MultiprocessExecutor(processes=processes)
    raise ValueError(
        f"unknown executor {executor!r} "
        f"(expected 'auto', 'inprocess', or 'multiprocess')"
    )


def _populated_boards(
    spec: CampaignSpec,
    board_indices: Iterable[int],
    on_board_complete: BoardSink,
) -> tuple[list[int], dict[int, list]]:
    """The requested boards that actually have jobs, plus the grouping.

    Boards the schedule assigned nothing to are reported complete
    immediately — no provisioning, no worker.
    """
    grouped = jobs_by_board(build_schedule(spec))
    populated = [index for index in board_indices if grouped.get(index)]
    populated_set = set(populated)
    for index in board_indices:
        if index not in populated_set:
            on_board_complete(index)
    return populated, grouped


class InProcessExecutor:
    """One thread per board, sharing the prep objects by reference."""

    name = "inprocess"

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers

    def run(
        self,
        spec: CampaignSpec,
        board_indices: Sequence[int],
        profiles: ProfileStore,
        database: SignatureDatabase,
        *,
        kernel_config: KernelConfig | None = None,
        teardown_hook: TeardownHook | None = None,
        spool: DumpSpool | None = None,
        on_wave: WaveSink,
        on_board_complete: BoardSink,
    ) -> None:
        """Run the boards on a thread pool, streaming waves out.

        When a sink raises (the runtime's interrupt point), boards not
        yet started are cancelled, boards already running finish their
        current schedule — journal writes for those still land, which
        only gives a later resume more to reuse.
        """
        populated, grouped = _populated_boards(
            spec, board_indices, on_board_complete
        )
        if not populated:
            return
        config = AttackConfig(coalesce_reads=spec.coalesce_reads)

        def run_board(index: int) -> None:
            board = provision_board(spec, index, kernel_config)
            worker = BoardWorker(
                board,
                profiles,
                database,
                config,
                teardown_hook=teardown_hook,
                spool=spool,
            )
            for wave, outcomes in worker.iter_waves(grouped[index]):
                on_wave(index, wave, outcomes)
            on_board_complete(index)

        max_workers = (
            self._max_workers or spec.max_workers or len(populated)
        )
        pool = ThreadPoolExecutor(max_workers=max_workers)
        futures = [pool.submit(run_board, index) for index in populated]
        try:
            for future in futures:
                future.result()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


def _run_shard(
    spec_payload: dict,
    profiles_json: str,
    database_payload: dict[str, list[str]],
    kernel_config: KernelConfig | None,
    board_indices: tuple[int, ...],
    spool_root: str | None,
    queue: "multiprocessing.Queue",
) -> None:
    """Run one shard of boards and stream results onto *queue*.

    Everything arrives by value (spec dict, profiles JSON, signature
    database payload) so the worker is self-sufficient under any start
    method; outcomes leave as ``asdict`` payloads and are rebuilt
    parent-side.  Rehydrating the database from its payload skips the
    per-worker signature re-mining that used to dominate startup.
    """
    board = -1
    try:
        spec = spec_from_dict(spec_payload)
        profiles = ProfileStore.from_json(profiles_json)
        database = SignatureDatabase.from_payload(database_payload)
        config = AttackConfig(coalesce_reads=spec.coalesce_reads)
        spool = DumpSpool(spool_root) if spool_root is not None else None
        grouped = jobs_by_board(build_schedule(spec))
        for board in board_indices:
            provisioned = provision_board(spec, board, kernel_config)
            worker = BoardWorker(
                provisioned, profiles, database, config, spool=spool
            )
            for wave, outcomes in worker.iter_waves(grouped.get(board, [])):
                queue.put(
                    (
                        "wave",
                        board,
                        wave,
                        [asdict(outcome) for outcome in outcomes],
                    )
                )
            queue.put(("board_complete", board))
    except Exception:  # noqa: BLE001 — ship the traceback to the parent
        queue.put(("error", board, traceback.format_exc()))


def _worker_main(
    worker_index: int,
    tasks: "multiprocessing.Queue",
    results: "multiprocessing.Queue",
) -> None:
    """Long-lived worker loop: run shard tasks until told to stop.

    Keeping the process alive across :meth:`MultiprocessExecutor.run`
    calls amortizes worker startup — fork/spawn, interpreter bring-up,
    and (under ``fork``) the copy-on-write faulting of the parent's
    heap — across every campaign an executor instance runs.  Each task
    is one shard; ``shard_done`` answers it so the parent can await a
    run without confusing it with the next one.
    """
    while True:
        message = tasks.get()
        if message[0] == "stop":
            break
        _, payload, board_indices = message
        spec_payload, profiles_json, database_payload, kernel_config, \
            spool_root = payload
        _run_shard(
            spec_payload,
            profiles_json,
            database_payload,
            kernel_config,
            board_indices,
            spool_root,
            results,
        )
        results.put(("shard_done", worker_index))


class MultiprocessExecutor:
    """Boards sharded round-robin across a persistent process pool.

    Workers are forked lazily on the first :meth:`run` and stay alive
    for follow-up runs (a parameter sweep, the bench's repeat loop, a
    resumed campaign), so worker startup is paid once per executor
    instance, not once per campaign.  :meth:`close` (or the context
    manager, or garbage collection — workers are daemons) retires the
    pool; a run that aborts also retires it, since the queues may hold
    stale messages.
    """

    name = "multiprocess"

    def __init__(
        self,
        processes: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._processes = processes
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._context = multiprocessing.get_context(self._start_method)
        self._workers: list[multiprocessing.Process] = []
        self._task_queues: list[multiprocessing.Queue] = []
        self._results: multiprocessing.Queue | None = None

    def _ensure_workers(self, count: int) -> None:
        """Grow the pool to at least *count* live workers."""
        self._workers = [w for w in self._workers if w.is_alive()]
        if len(self._workers) != len(self._task_queues):
            # A worker died outside a run; rebuild from scratch.
            self._shutdown(terminate=True)
        if self._results is None:
            self._results = self._context.Queue()
        while len(self._workers) < count:
            tasks: multiprocessing.Queue = self._context.Queue()
            worker = self._context.Process(
                target=_worker_main,
                args=(len(self._workers), tasks, self._results),
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
            self._task_queues.append(tasks)

    def _shutdown(self, terminate: bool) -> None:
        """Retire the pool — politely or by force."""
        if not terminate:
            for tasks in self._task_queues:
                tasks.put(("stop",))
        for worker in self._workers:
            if terminate and worker.is_alive():
                worker.terminate()
            worker.join(timeout=10)
        for tasks in self._task_queues:
            tasks.close()
        if self._results is not None:
            self._results.close()
        self._workers = []
        self._task_queues = []
        self._results = None

    def close(self) -> None:
        """Stop the worker pool.  Idempotent; the executor may be
        reused afterwards (a new pool forks on the next run)."""
        self._shutdown(terminate=False)

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            if self._workers:
                self._shutdown(terminate=True)
        except Exception:  # pragma: no cover — interpreter teardown
            pass

    def run(
        self,
        spec: CampaignSpec,
        board_indices: Sequence[int],
        profiles: ProfileStore,
        database: SignatureDatabase,
        *,
        kernel_config: KernelConfig | None = None,
        teardown_hook: TeardownHook | None = None,
        spool: DumpSpool | None = None,
        on_wave: WaveSink,
        on_board_complete: BoardSink,
    ) -> None:
        """Shard the boards over worker processes and drain the queue.

        The parent provisions nothing: workers rebuild the schedule,
        the profile notebook, and the signature database from the
        values shipped to them, boot only their own boards, and write
        dumps straight into the shared spool (content-addressed writes
        are concurrency-safe).  Sinks run on the parent thread in
        queue-arrival order; a sink raising aborts the run and
        terminates the workers — exactly the crash the checkpoint
        journal is designed to survive.
        """
        if teardown_hook is not None:
            raise ValueError("teardown_hook requires the in-process executor")
        populated, _ = _populated_boards(
            spec, board_indices, on_board_complete
        )
        if not populated:
            return

        shard_count = min(
            self._processes or os.cpu_count() or 1, len(populated)
        )
        shards = [populated[offset::shard_count] for offset in range(shard_count)]
        self._ensure_workers(shard_count)
        results = self._results
        assert results is not None
        payload = (
            spec_to_dict(spec),
            profiles.to_json(),
            database.to_payload(),
            kernel_config,
            str(spool.root) if spool is not None else None,
        )
        for shard_index, shard in enumerate(shards):
            self._task_queues[shard_index].put(
                ("run", payload, tuple(shard))
            )
        done_shards: set[int] = set()
        completed = False
        try:
            while len(done_shards) < len(shards):
                # Poll in short slices so a worker that died without a
                # word (OOM kill, spawn bootstrap failure) is detected
                # promptly.  A slow-but-alive fleet is never timed
                # out — only a dead worker with an unfinished shard
                # aborts the run.
                try:
                    message = results.get(timeout=_QUEUE_POLL_SECONDS)
                except queue_module.Empty:
                    dead = [
                        shard_index
                        for shard_index in range(len(shards))
                        if shard_index not in done_shards
                        and not self._workers[shard_index].is_alive()
                    ]
                    if dead:
                        raise CampaignExecutionError(
                            f"board-shard worker(s) {dead} exited "
                            f"without reporting completion (killed "
                            f"before or outside the shard loop)"
                        ) from None
                    continue
                kind = message[0]
                if kind == "wave":
                    _, board, wave, records = message
                    on_wave(
                        board,
                        wave,
                        [VictimOutcome(**record) for record in records],
                    )
                elif kind == "board_complete":
                    on_board_complete(message[1])
                elif kind == "error":
                    raise CampaignExecutionError(
                        f"board shard died around board {message[1]}:\n"
                        f"{message[2]}"
                    )
                elif kind == "shard_done":
                    done_shards.add(message[1])
            completed = True
        finally:
            if not completed:
                # An aborted run leaves in-flight messages (and maybe
                # wedged workers) behind; retire the pool so the next
                # run starts from a clean fork.
                self._shutdown(terminate=True)


class AnalysisPool:
    """A bounded worker pool for service analysis jobs.

    The board executors above schedule *simulations*; this pool
    schedules the service daemon's *pure analysis* callables
    (:func:`repro.service.analysis.analyze_dump` closures) with the
    one property the daemon's admission control needs: a **bounded**
    queue whose fullness is observable at submit time.
    :meth:`try_submit` never blocks and never buffers beyond
    ``capacity`` — a full queue returns ``False`` and the daemon
    answers ``retry-after`` instead of eating memory.

    Completion is delivered by calling ``on_done(result, error)`` from
    the worker thread (exactly one of the two is ``None``); the daemon
    bridges that back onto its event loop with
    ``loop.call_soon_threadsafe``.  :meth:`drain` blocks until every
    accepted job has completed — the SIGTERM path's "no lost accepted
    jobs" guarantee.
    """

    def __init__(self, workers: int = 2, capacity: int = 8) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._queue: queue_module.Queue = queue_module.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._accepted = 0
        self._completed = 0
        self._in_flight = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"analysis-pool-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, on_done = item
            with self._lock:
                self._in_flight += 1
            result, error = None, None
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
                error = exc
            try:
                on_done(result, error)
            finally:
                with self._idle:
                    self._in_flight -= 1
                    self._completed += 1
                    self._idle.notify_all()

    def try_submit(self, fn: Callable[[], object], on_done) -> bool:
        """Enqueue ``fn`` without blocking; ``False`` means queue full.

        ``on_done(result, error)`` fires from a worker thread once the
        job finishes (or raises).  A ``False`` return is the explicit
        backpressure signal — nothing was buffered, nothing is owed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("analysis pool is closed")
        try:
            self._queue.put_nowait((fn, on_done))
        except queue_module.Full:
            return False
        with self._lock:
            self._accepted += 1
        return True

    def stats(self) -> dict:
        """Queue depth, in-flight count, accepted/completed totals."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "queued": self._queue.qsize(),
                "in_flight": self._in_flight,
                "accepted": self._accepted,
                "completed": self._completed,
            }

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted job completed; ``False`` on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._completed >= self._accepted, timeout=timeout
            )

    def close(self) -> None:
        """Stop the workers after the queue empties.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=10)

    def __enter__(self) -> "AnalysisPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
