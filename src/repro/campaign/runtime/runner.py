"""The checkpointable campaign runtime — run, crash, resume, same report.

:class:`CampaignRuntime` wraps one campaign in a
:class:`~repro.campaign.runtime.checkpoint.RunDirectory`: every wave's
outcomes are canonicalized and journaled the moment they stream out of
an executor, every dump is spooled to disk before its outcome is
reported, and a :meth:`~CampaignRuntime.resume` after any interruption
reuses completed boards from the journal and re-runs the rest —
producing a ``report.json`` byte-identical to an uninterrupted run's.

The determinism chain, end to end:

1. the spec fully determines the schedule
   (:func:`~repro.campaign.schedule.build_schedule` is seeded);
2. each board simulation is a pure function of ``(spec, board_index)``
   (:func:`~repro.campaign.fleet.provision_board`);
3. outcomes are canonicalized before journaling
   (:func:`~repro.campaign.runtime.checkpoint.canonical_outcome`
   zeroes the wall-clock fields, the only nondeterministic ones);
4. the final report sorts outcomes by ``job_id`` and carries
   ``wall_seconds=0.0`` — real timings go to ``telemetry.json``.

So the canonical report is invariant across executors (threads vs
processes), across interruption points, and across resumes — the
property the regression suite pins byte for byte.

``interrupt_after=N`` injects a crash once N outcomes have been
journaled — the operator's fire-drill knob (``repro campaign run
--interrupt-after N``) and the test suite's way of killing a campaign
after wave N without racing a real signal.

A runtime may also run a *hardened* fleet (``kernel_config=``, the
same provisioning hook the defense arena uses) and reuse offline prep
across runs (``prep=``); both are pure functions of their inputs, so
neither weakens the determinism chain — the fuzz harness in
:mod:`repro.fuzzlab` leans on exactly this to replay interrupted,
defended campaigns cheaply.
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING

from repro.campaign.report import CampaignReport, OutcomeAccumulator
from repro.campaign.runtime.checkpoint import (
    JournalState,
    RunDirectory,
    canonical_outcome,
    manifest_records,
)
from repro.campaign.runtime.executors import resolve_executor
from repro.campaign.schedule import CampaignSpec
from repro.campaign.worker import VictimOutcome
from repro.errors import CampaignInterrupted

if TYPE_CHECKING:
    from repro.attack.identify import SignatureDatabase
    from repro.attack.profiling import ProfileStore
    from repro.petalinux.kernel import KernelConfig


class CampaignRuntime:
    """One checkpointable campaign bound to a run directory."""

    def __init__(
        self,
        spec: CampaignSpec,
        run_dir: "RunDirectory | str | os.PathLike[str]",
        *,
        executor: str = "auto",
        processes: int | None = None,
        interrupt_after: int | None = None,
        prep: "tuple[ProfileStore, SignatureDatabase] | None" = None,
        kernel_config: "KernelConfig | None" = None,
    ) -> None:
        if not isinstance(run_dir, RunDirectory):
            run_dir = RunDirectory.create(run_dir, spec)
        self._run_dir = run_dir
        self._spec = spec
        self._executor = executor
        self._processes = processes
        self._interrupt_after = interrupt_after
        self._prep = prep
        self._kernel_config = kernel_config

    @classmethod
    def resume(
        cls,
        run_dir: "str | os.PathLike[str]",
        *,
        executor: str = "auto",
        processes: int | None = None,
        interrupt_after: int | None = None,
        prep: "tuple[ProfileStore, SignatureDatabase] | None" = None,
        kernel_config: "KernelConfig | None" = None,
    ) -> "CampaignRuntime":
        """Reopen an interrupted run; the spec comes from ``spec.json``.

        The resumed run may use a different executor or process count
        than the original — placement never affects the canonical
        outcomes.  *prep* (offline profiles + signature database) may
        be passed to skip re-profiling; because offline prep is itself
        a pure function of the spec, a resumed run reprepping from
        scratch produces the identical report.  *kernel_config*, when
        the original run hardened its fleet, must be re-supplied by
        the caller — the defense is part of the simulated world, and a
        resume under a different kernel would (detectably) break the
        byte-identity contract.
        """
        directory = RunDirectory.open(run_dir)
        return cls(
            directory.load_spec(),
            directory,
            executor=executor,
            processes=processes,
            interrupt_after=interrupt_after,
            prep=prep,
            kernel_config=kernel_config,
        )

    @property
    def run_dir(self) -> RunDirectory:
        """The run's on-disk home."""
        return self._run_dir

    @property
    def spec(self) -> CampaignSpec:
        """The campaign being run."""
        return self._spec

    def run(self) -> CampaignReport:
        """Run (or continue) the campaign to completion.

        Boards whose ``board_complete`` marker is already journaled
        are reused verbatim; the rest run on the configured executor,
        journaling wave by wave.  Raises
        :class:`~repro.errors.CampaignInterrupted` at the configured
        fault-injection point, with everything so far safely on disk.
        """
        # Imported here: the engine imports this package for its
        # executor plumbing, so a module-level import would be cyclic.
        from repro.campaign.engine import prepare_offline

        started = time.perf_counter()
        spec = self._spec
        journal = self._run_dir.load_journal()
        pending = [
            index
            for index in range(spec.boards)
            if index not in journal.complete_boards
        ]
        reused = journal.reusable_outcomes()

        if self._prep is not None:
            profiles, database = self._prep
        else:
            profiles, database = prepare_offline(spec)
        executor = resolve_executor(
            spec,
            self._executor,
            processes=self._processes,
            teardown_hook=None,
        )

        accumulator = OutcomeAccumulator.of(reused)
        fresh: list[VictimOutcome] = []
        journaled = 0
        interrupted = False
        lock = threading.Lock()

        def on_wave(
            board: int, wave: int, outcomes: list[VictimOutcome]
        ) -> None:
            nonlocal journaled, interrupted
            canonical = [canonical_outcome(outcome) for outcome in outcomes]
            with lock:
                self._run_dir.append_wave(board, wave, canonical)
                accumulator.extend(canonical)
                fresh.extend(canonical)
                journaled += len(canonical)
                if (
                    self._interrupt_after is not None
                    and journaled >= self._interrupt_after
                    and not interrupted
                ):
                    interrupted = True
                    raise CampaignInterrupted(
                        str(self._run_dir.root), journaled
                    )

        def on_board_complete(board: int) -> None:
            with lock:
                self._run_dir.mark_board_complete(board)

        try:
            executor.run(
                spec,
                pending,
                profiles,
                database,
                kernel_config=self._kernel_config,
                spool=self._run_dir.spool,
                on_wave=on_wave,
                on_board_complete=on_board_complete,
            )
        except CampaignInterrupted:
            self._write_telemetry(
                started,
                executor.name,
                journal,
                journaled,
                accumulator,
                complete=False,
            )
            raise

        outcomes = sorted(reused + fresh, key=lambda o: o.job_id)
        report = CampaignReport(spec=spec, outcomes=outcomes, wall_seconds=0.0)
        self._run_dir.write_report(report)
        self._write_manifest(outcomes)
        self._write_telemetry(
            started,
            executor.name,
            journal,
            journaled,
            accumulator,
            complete=True,
        )
        return report

    # -- internals -----------------------------------------------------------

    def _write_manifest(self, outcomes: list[VictimOutcome]) -> None:
        self._run_dir.spool.write_manifest(manifest_records(outcomes))

    def _write_telemetry(
        self,
        started: float,
        executor_name: str,
        journal: JournalState,
        journaled: int,
        accumulator: OutcomeAccumulator,
        complete: bool,
    ) -> None:
        # The accumulator's running tallies make the telemetry useful
        # even for an interrupted run: how much had leaked by the time
        # the process died, without replaying the journal.
        self._run_dir.write_telemetry(
            {
                "complete": complete,
                "executor": executor_name,
                "processes": self._processes,
                "wall_seconds": round(time.perf_counter() - started, 6),
                "boards_reused": sorted(journal.complete_boards),
                "outcomes_reused": len(journal.reusable_outcomes()),
                "outcomes_journaled_this_run": journaled,
                "victims_attacked": accumulator.victims,
                "victims_leaked": accumulator.succeeded,
                "spool_bytes": self._run_dir.spool.total_bytes(),
                "spool_objects": len(self._run_dir.spool.digests()),
            }
        )
