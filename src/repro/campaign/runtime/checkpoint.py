"""The run directory — spec, journal, spool, telemetry, report.

A checkpointable campaign lives in one directory::

    <run_dir>/
      spec.json        the CampaignSpec the run was started with
      journal.jsonl    append-only outcome journal (one line per wave)
      spool/           content-addressed dump store (see spool.py)
      telemetry.json   real wall-clock numbers (non-canonical)
      report.json      the final CampaignReport, written at completion
      leases.json      per-board lease-epoch watermarks (fabric only)

**Journal format** — one JSON object per line, flushed and fsynced per
wave so a kill at any instant loses at most the wave in flight::

    {"type": "wave", "board": 1, "wave": 0, "outcomes": [...]}
    {"type": "board_complete", "board": 1}

**Canonical outcomes.**  A restartable runtime cannot promise
wall-clock identity across a crash, so everything it journals is
*canonicalized* first: :func:`canonical_outcome` zeroes the two
wall-clock fields (``wall_seconds``, ``teardown_seconds``), which are
the only nondeterministic bits of a
:class:`~repro.campaign.worker.VictimOutcome`.  Every other field —
pids, byte counts, scores, scrub work, dump digests — is a pure
function of the spec, so an interrupted-and-resumed campaign produces
a ``report.json`` byte-identical to an uninterrupted one.  Real
timings are not lost; they land in ``telemetry.json``.

**Resume unit = the board.**  Waves on one board share kernel state
(scheduler ticks, the frame allocator, pid numbering, DRAM residue),
so a wave cannot be replayed in isolation; boards are fully
independent simulations.  The journal therefore records per wave (for
progress observability — ``tail -f journal.jsonl``) but resume reuses
only boards whose ``board_complete`` marker landed, and re-runs the
rest from scratch — deterministically, because each board's simulation
is a pure function of ``(spec, board_index)``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.campaign.report import CampaignReport
from repro.campaign.schedule import (
    CampaignSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.campaign.runtime.spool import DumpSpool
from repro.campaign.worker import VictimOutcome

SPEC_FORMAT = 1


def canonical_outcome(outcome: VictimOutcome) -> VictimOutcome:
    """Zero the wall-clock fields — the only nondeterministic ones."""
    return replace(outcome, wall_seconds=0.0, teardown_seconds=0.0)


def manifest_records(outcomes: list[VictimOutcome]) -> list[dict]:
    """The spool-manifest records for a final outcome list.

    One record per outcome that produced a dump, mapping the job back
    to its content digest.  Shared by every completion path — the
    local :class:`~repro.campaign.runtime.runner.CampaignRuntime` and
    the distributed fabric coordinator — so a run directory's
    ``spool/manifest.json`` looks the same however the campaign ran.
    """
    return [
        {
            "job_id": outcome.job_id,
            "board": outcome.board_index,
            "wave": outcome.launch_wave,
            "model": outcome.model_name,
            "sha256": outcome.dump_sha256,
            "nbytes": outcome.nbytes,
        }
        for outcome in outcomes
        if outcome.dump_sha256 is not None
    ]


@dataclass
class JournalState:
    """What a journal says happened so far."""

    complete_boards: set[int] = field(default_factory=set)
    outcomes_by_board: dict[int, list[VictimOutcome]] = field(
        default_factory=dict
    )
    journaled_outcomes: int = 0

    def reusable_outcomes(self) -> list[VictimOutcome]:
        """Outcomes of boards that finished — what resume keeps."""
        return [
            outcome
            for board in sorted(self.complete_boards)
            for outcome in self.outcomes_by_board.get(board, [])
        ]


class RunDirectory:
    """One checkpointable campaign's on-disk home."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = Path(root)

    # -- creation / opening --------------------------------------------------

    @classmethod
    def create(
        cls, root: str | os.PathLike[str], spec: CampaignSpec
    ) -> "RunDirectory":
        """Initialize a fresh run directory for *spec*.

        Refuses a directory that already holds a campaign (resume it
        instead — silently restarting would orphan its journal).
        """
        run_dir = cls(root)
        if run_dir.spec_path.exists():
            raise ValueError(
                f"{run_dir._root} already holds a campaign "
                f"(spec.json exists); resume it or pick a fresh directory"
            )
        run_dir._root.mkdir(parents=True, exist_ok=True)
        run_dir.spec_path.write_text(
            json.dumps(
                {"format": SPEC_FORMAT, "spec": spec_to_dict(spec)},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return run_dir

    @classmethod
    def open(cls, root: str | os.PathLike[str]) -> "RunDirectory":
        """Open an existing run directory (for resume or inspection)."""
        run_dir = cls(root)
        if not run_dir.spec_path.exists():
            raise FileNotFoundError(
                f"{run_dir._root} is not a run directory (no spec.json)"
            )
        return run_dir

    # -- paths ---------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The run directory itself."""
        return self._root

    @property
    def spec_path(self) -> Path:
        """``spec.json`` — the campaign spec the run was started with."""
        return self._root / "spec.json"

    @property
    def journal_path(self) -> Path:
        """``journal.jsonl`` — the append-only outcome journal."""
        return self._root / "journal.jsonl"

    @property
    def report_path(self) -> Path:
        """``report.json`` — the canonical final report."""
        return self._root / "report.json"

    @property
    def telemetry_path(self) -> Path:
        """``telemetry.json`` — real wall-clock numbers, non-canonical."""
        return self._root / "telemetry.json"

    @property
    def lease_epochs_path(self) -> Path:
        """``leases.json`` — per-board lease-epoch watermarks.

        Fencing tokens must stay unique across *coordinator* restarts,
        not just within one coordinator's lifetime: a restarted
        coordinator that restarted epoch numbering from zero would
        re-issue a token some fenced-off worker still holds.  The
        fabric persists each board's highest issued epoch here and
        resumes numbering above it.
        """
        return self._root / "leases.json"

    @property
    def spool(self) -> DumpSpool:
        """The run's content-addressed dump store."""
        return DumpSpool(self._root / "spool")

    # -- spec ----------------------------------------------------------------

    def load_spec(self) -> CampaignSpec:
        """The spec this run was started with."""
        payload = json.loads(self.spec_path.read_text())
        if payload.get("format") != SPEC_FORMAT:
            raise ValueError(
                f"{self.spec_path}: unsupported format "
                f"{payload.get('format')!r} (expected {SPEC_FORMAT})"
            )
        return spec_from_dict(payload["spec"])

    # -- journal -------------------------------------------------------------

    def append_wave(
        self, board: int, wave: int, outcomes: list[VictimOutcome]
    ) -> None:
        """Journal one completed wave (already canonicalized).

        The line is flushed and fsynced before returning, so a crash
        immediately after a wave never loses it.
        """
        line = json.dumps(
            {
                "type": "wave",
                "board": board,
                "wave": wave,
                "outcomes": [asdict(outcome) for outcome in outcomes],
            },
            sort_keys=True,
        )
        self._append_line(line)

    def mark_board_complete(self, board: int) -> None:
        """Journal that every wave of *board* has been recorded."""
        self._append_line(
            json.dumps({"type": "board_complete", "board": board})
        )

    def _append_line(self, line: str) -> None:
        with open(self.journal_path, "a+b") as handle:
            # A previous run killed mid-write can leave a torn final
            # line with no newline; terminate it first so the fragment
            # stays its own (skipped) line instead of corrupting this
            # record.  (Append mode: every write lands at the end.)
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_journal(self) -> JournalState:
        """Replay the journal into a :class:`JournalState`.

        A truncated trailing line (crash mid-write) is ignored — the
        wave it described is simply re-run.  A job journaled twice
        (an interrupted attempt left partial waves, and the resume
        re-ran that board from scratch) is kept once: canonical
        outcomes are deterministic, so the copies are identical and
        the first wins.
        """
        state = JournalState()
        if not self.journal_path.exists():
            return state
        seen_jobs: set[int] = set()
        for line in self.journal_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing write; its wave re-runs
            if record["type"] == "wave":
                outcomes = state.outcomes_by_board.setdefault(
                    record["board"], []
                )
                for payload in record["outcomes"]:
                    if payload["job_id"] in seen_jobs:
                        continue  # re-run of a partially journaled board
                    seen_jobs.add(payload["job_id"])
                    outcomes.append(VictimOutcome(**payload))
                    state.journaled_outcomes += 1
            elif record["type"] == "board_complete":
                state.complete_boards.add(record["board"])
        return state

    # -- lease epochs --------------------------------------------------------

    def load_lease_epochs(self) -> dict[int, int]:
        """Per-board epoch watermarks from a previous coordinator.

        Empty when the run never served leases (fresh directory, or a
        single-host run) — epoch numbering then starts at 1 as usual.
        An *empty file* is treated the same way: ``save_lease_epochs``
        never writes one (atomic rename), but a crashed pre-rename
        writer or an operator ``touch`` can leave one behind, and it
        carries the same information as no file at all.

        Anything else unreadable — torn JSON, a non-object payload,
        non-numeric entries — raises ``ValueError`` naming the file.
        Epochs are fencing tokens: silently treating a corrupt
        watermark file as empty would restart numbering at 1 and
        re-issue tokens some fenced-off worker may still hold, so
        corruption here must stop the resume, not be papered over.
        Entries for boards the spec no longer knows are preserved
        as-is; the fabric only consults watermarks for boards it
        actually leases, so stale extras are harmless.
        """
        if not self.lease_epochs_path.exists():
            return {}
        text = self.lease_epochs_path.read_text()
        if not text.strip():
            return {}
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("epochs", {}), dict
            ):
                raise ValueError("payload is not an epochs object")
            return {
                int(board): int(epoch)
                for board, epoch in payload.get("epochs", {}).items()
            }
        except (json.JSONDecodeError, TypeError, ValueError) as error:
            raise ValueError(
                f"{self.lease_epochs_path}: corrupt lease-epoch "
                f"watermarks ({error}); refusing to resume — restarting "
                f"epoch numbering could re-issue a fencing token a "
                f"partitioned worker still holds.  Restore the file or "
                f"delete it only if no worker from the previous "
                f"coordinator can still be alive."
            ) from None

    def save_lease_epochs(self, epochs: dict[int, int]) -> None:
        """Persist the highest epoch issued per board (atomic rename).

        Written on every lease issue; the write-then-rename keeps a
        coordinator killed mid-save from leaving a torn file that a
        resume would misread as "no epochs ever issued".
        """
        tmp_path = self.lease_epochs_path.with_suffix(".json.tmp")
        tmp_path.write_text(
            json.dumps(
                {
                    "epochs": {
                        str(board): epoch
                        for board, epoch in sorted(epochs.items())
                    }
                },
                sort_keys=True,
            )
            + "\n"
        )
        os.replace(tmp_path, self.lease_epochs_path)

    # -- results -------------------------------------------------------------

    def write_report(self, report: CampaignReport) -> Path:
        """Persist the canonical final report."""
        self.report_path.write_text(report.to_json() + "\n")
        return self.report_path

    def write_telemetry(self, telemetry: dict) -> Path:
        """Persist the run's real (non-canonical) operational numbers."""
        self.telemetry_path.write_text(
            json.dumps(telemetry, indent=2, sort_keys=True) + "\n"
        )
        return self.telemetry_path
