"""The distributed campaign fabric — one campaign, many hosts.

:class:`CampaignRuntime` shards boards across local threads or
processes; the fabric shards them across *hosts*.  A
:class:`FabricCoordinator` owns the run directory (spec, journal,
spool, report) and exposes the campaign's boards as **leases** over a
line-delimited JSON/TCP protocol; any number of
:class:`FabricWorker` processes connect, claim leases, run their
boards through the ordinary :class:`~repro.campaign.worker.BoardWorker`
stack, and stream canonicalized
:class:`~repro.campaign.worker.VictimOutcome` waves back.  Dumps never
ride inside outcome messages: they travel by content digest
(``dump_sha256``) with explicit upload/fetch ops against the
coordinator's content-addressed :class:`~repro.campaign.runtime.spool.
DumpSpool`, which becomes the campaign's shared artifact store.

**Wire protocol.**  One JSON object per line, UTF-8, over a plain TCP
socket.  Requests carry ``{"op": ...}``; responses carry
``{"ok": true, ...}`` or ``{"ok": false, "code": ..., "error": ...}``.
Ops::

    hello           -> spec + offline prep + defense profile + lease TTL
    claim           -> a board lease (or "nothing pending" / "done")
    heartbeat       -> extend a lease's deadline
    wave            -> journal one wave of outcomes under a lease
    board_complete  -> mark a leased board finished
    put_dump        -> upload dump bytes (verified against their digest)
    has_dump        -> digest presence probe (skip redundant uploads)
    fetch_dump      -> download dump bytes by digest (verified client-side)
    status          -> observability snapshot (never mutates state)

**Lease state machine.**  Every populated, incomplete board is either
*pending*, *leased*, or *complete*.  ``claim`` moves the lowest
pending board to leased and returns a fencing token ``b<board>e<epoch>``
(the epoch increments on every re-issue).  Any authenticated op —
heartbeat, wave, board_complete — extends the lease's deadline; a
lease whose deadline passes is lazily reclaimed (board returns to
pending, epoch retired) the next time any claim or token resolution
runs, so a dead or partitioned worker's shard is simply re-issued.
Ops arriving under a retired token raise
:class:`~repro.errors.StaleLeaseError` — the fenced-off worker can
never corrupt the journal, no matter how late its messages arrive.

**Why the report is byte-identical to a single-host run.**  The
coordinator journals exactly what :class:`CampaignRuntime` journals:
canonicalized outcomes (wall-clock fields zeroed), deduplicated by
``job_id`` against everything already seen, plus ``board_complete``
markers.  Each board's simulation is a pure function of ``(spec,
board_index, kernel_config)``, so re-running a reclaimed board on a
different worker reproduces the identical outcomes, and replayed or
duplicate messages are no-ops.  The final report is rebuilt from the
journal — completed boards' outcomes sorted by ``job_id``,
``wall_seconds=0.0`` — which is the same construction the single-host
resume path uses.  Worker count, claim order, crashes, re-claims, and
duplicate deliveries therefore cannot perturb a single byte of
``report.json``; the chaos suite (``tests/fabric_chaos.py``) pins
this under scripted kills, heartbeat loss, duplicate claims, and torn
streams.

**Self-healing.**  The transport is assumed flaky.
:class:`ResilientFabricClient` wraps every worker exchange in a
:class:`~repro.utils.resilience.RetryPolicy`-driven
reconnect-and-replay loop (safe because every op is idempotent,
deduplicated, fenced, or convergent — see its docstring), the worker's
heartbeat thread flags lease loss to the claim loop instead of dying
silently, and lease epochs are persisted to the run directory so a
*restarted* coordinator (:meth:`FabricCoordinator.resume`) re-admits
workers under fresh epochs without ever re-minting a fencing token.
Transport-level drills (``repro.campaign.runtime.netchaos.FlakyProxy``
injecting drops, torn frames, stalls, and partitions) pin the same
byte-identity contract under network chaos.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import socket
import socketserver
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.attack.config import AttackConfig
from repro.attack.identify import SignatureDatabase
from repro.attack.profiling import ProfileStore
from repro.campaign.fleet import provision_board
from repro.campaign.report import CampaignReport, OutcomeAccumulator
from repro.campaign.runtime.checkpoint import (
    RunDirectory,
    canonical_outcome,
    manifest_records,
)
from repro.campaign.runtime.spool import DumpSpool
from repro.campaign.schedule import (
    CampaignSpec,
    build_schedule,
    jobs_by_board,
    spec_from_dict,
    spec_to_dict,
)
from repro.campaign.worker import BoardWorker, VictimOutcome
from repro.errors import (
    DumpTransferError,
    FabricConnectionError,
    FabricError,
    FabricProtocolError,
    FabricTimeoutError,
    RetryExhaustedError,
    StaleLeaseError,
)
from repro.utils.resilience import ManualClock, RetryPolicy

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_RETRY_POLICY",
    "FABRIC_FORMAT",
    "FabricClient",
    "FabricCoordinator",
    "FabricWorker",
    "Lease",
    "LeaseTable",
    "ManualClock",  # re-exported; now lives in repro.utils.resilience
    "ResilientFabricClient",
]

if TYPE_CHECKING:
    from repro.campaign.schedule import VictimJob

FABRIC_FORMAT = 1
"""Wire-protocol version; ``hello`` refuses mismatched peers."""

DEFAULT_LEASE_TTL = 30.0
"""Seconds a lease survives without any authenticated op."""

DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=6,
    base_delay=0.5,
    multiplier=2.0,
    max_delay=8.0,
    jitter=0.25,
)
"""The worker's default tolerance for a flaky or restarting
coordinator: ~16 s of exponential backoff across 6 attempts, jittered
so a restarted coordinator is not hit by every worker at once."""


@dataclass
class Lease:
    """One issued board lease — a fencing token with a deadline."""

    board: int
    epoch: int
    worker: str
    token: str
    deadline: float


class LeaseTable:
    """Board leases with fencing epochs and lazy deadline expiry.

    Not thread-safe on its own; the coordinator serializes access
    under its dispatch lock.  Expiry is *lazy*: there is no reaper
    thread — every claim or token resolution first sweeps expired
    leases back to pending, which keeps the table's behaviour a pure
    function of the injected clock (what the chaos drills rely on).
    """

    def __init__(
        self,
        boards: Iterable[int],
        ttl: float,
        clock: Callable[[], float],
        *,
        epoch_floor: dict[int, int] | None = None,
    ) -> None:
        self._pending: set[int] = set(boards)
        self._active: dict[int, Lease] = {}
        self._complete: set[int] = set()
        # *epoch_floor* seeds numbering above a previous coordinator's
        # watermarks, so fencing stays sound across restarts: a token
        # issued before the crash can never be re-minted after it.
        self._epochs: dict[int, int] = dict(epoch_floor or {})
        self._ttl = ttl
        self._clock = clock
        self.leases_issued = 0
        self.reclaims = 0
        self.stale_rejections = 0

    def expire(self) -> list[int]:
        """Reclaim every lease whose deadline has passed."""
        now = self._clock()
        reclaimed = [
            board
            for board, lease in self._active.items()
            if now >= lease.deadline
        ]
        for board in reclaimed:
            del self._active[board]
            self._pending.add(board)
            self.reclaims += 1
        return sorted(reclaimed)

    def claim(self, worker: str) -> Lease | None:
        """Issue the lowest pending board to *worker* (None if none).

        Each issue bumps the board's epoch, so a lease token is never
        reused: a board reclaimed from a dead worker goes back out
        under a token its previous holder does not have.
        """
        self.expire()
        if not self._pending:
            return None
        board = min(self._pending)
        self._pending.remove(board)
        epoch = self._epochs.get(board, 0) + 1
        self._epochs[board] = epoch
        lease = Lease(
            board=board,
            epoch=epoch,
            worker=worker,
            token=f"b{board}e{epoch}",
            deadline=self._clock() + self._ttl,
        )
        self._active[board] = lease
        self.leases_issued += 1
        return lease

    def resolve(self, token: str) -> Lease:
        """The live lease behind *token*; raises when fenced off."""
        self.expire()
        for lease in self._active.values():
            if lease.token == token:
                return lease
        self.stale_rejections += 1
        raise StaleLeaseError(
            token, "expired, completed, or re-issued to another worker"
        )

    def touch(self, token: str) -> Lease:
        """Resolve *token* and push its deadline out by one TTL."""
        lease = self.resolve(token)
        lease.deadline = self._clock() + self._ttl
        return lease

    def complete(self, token: str) -> int:
        """Retire *token*'s board as finished; returns the board."""
        lease = self.resolve(token)
        del self._active[lease.board]
        self._complete.add(lease.board)
        return lease.board

    @property
    def done(self) -> bool:
        """Every tracked board has completed."""
        return not self._pending and not self._active

    def epochs(self) -> dict[int, int]:
        """Highest epoch issued per board — the restart watermarks."""
        return dict(self._epochs)

    def snapshot(self) -> dict:
        """Counts for the ``status`` op and telemetry."""
        return {
            "pending": sorted(self._pending),
            "leased": {
                lease.token: lease.board for lease in self._active.values()
            },
            "complete": sorted(self._complete),
            "leases_issued": self.leases_issued,
            "reclaims": self.reclaims,
            "stale_rejections": self.stale_rejections,
        }


class _FabricServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    coordinator: "FabricCoordinator"


class _FabricHandler(socketserver.StreamRequestHandler):
    """One connected peer: read a request line, write a response line.

    An unparseable line (a torn stream, a peer speaking some other
    protocol) gets one ``bad-request`` response and the connection is
    dropped — resynchronizing inside a corrupt byte stream is not
    worth guessing at.  Coordinator state is untouched either way.
    """

    def handle(self) -> None:
        while True:
            try:
                line = self.rfile.readline()
            except OSError:
                return
            if not line:
                return  # peer closed the stream
            if not line.strip():
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except (ValueError, UnicodeDecodeError):
                self._reply(
                    {
                        "ok": False,
                        "code": "bad-request",
                        "error": "unparseable request line",
                    }
                )
                return
            response = self.server.coordinator.handle_request(request)
            try:
                self._reply(response)
            except OSError:
                return  # peer died mid-reply; its lease will expire

    def _reply(self, payload: dict) -> None:
        self.wfile.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        self.wfile.flush()


class FabricCoordinator:
    """One campaign's lease server, journal keeper, and artifact store.

    Owns a :class:`RunDirectory` exactly like
    :class:`~repro.campaign.runtime.runner.CampaignRuntime` does — the
    same journal, the same spool, the same canonical report — but
    instead of driving executors it serves the board set to remote
    claimants.  Start it with :meth:`serve` (or the context manager),
    point workers at :attr:`address`, and :meth:`run_until_complete`
    returns the final report once every board's completion marker has
    landed.

    *clock* is injectable (see :class:`ManualClock`) so lease expiry
    is testable without real time; *defense_profile* is a profile
    *name* (kernel configs are not wire-safe — workers rebuild the
    config from the name, a pure function of name and spec);
    *prep* short-circuits offline profiling when the caller already
    has it.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        run_dir: "RunDirectory | str | os.PathLike[str]",
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.monotonic,
        prep: "tuple[ProfileStore, SignatureDatabase] | None" = None,
        defense_profile: str | None = None,
    ) -> None:
        if not isinstance(run_dir, RunDirectory):
            run_dir = RunDirectory.create(run_dir, spec)
        self._run_dir = run_dir
        self._spec = spec
        self._spool = run_dir.spool
        self._lease_ttl = lease_ttl
        self._prep = prep
        self._defense_profile = defense_profile
        self._started = time.perf_counter()

        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._report: CampaignReport | None = None
        self._server: _FabricServer | None = None
        self._server_thread: threading.Thread | None = None

        journal = run_dir.load_journal()
        journaled = [
            outcome
            for outcomes in journal.outcomes_by_board.values()
            for outcome in outcomes
        ]
        self._seen_jobs = {outcome.job_id for outcome in journaled}
        self._accumulator = OutcomeAccumulator.of(journaled)
        self._journaled_this_run = 0
        self._duplicates_rejected = 0
        self._dumps_received = 0
        self._dumps_deduplicated = 0
        self._workers: set[str] = set()

        # Boards the schedule assigned nothing to complete immediately,
        # exactly as the local executors report them — the lease table
        # only ever covers populated, incomplete boards.
        grouped = jobs_by_board(build_schedule(spec))
        complete = set(journal.complete_boards)
        for board in range(spec.boards):
            if board not in complete and not grouped.get(board):
                run_dir.mark_board_complete(board)
                complete.add(board)
        self._boards_done = complete
        self._table = LeaseTable(
            (
                board
                for board in range(spec.boards)
                if board not in complete
            ),
            lease_ttl,
            clock,
            epoch_floor=run_dir.load_lease_epochs(),
        )
        if self._table.done:
            self._finalize()

    @classmethod
    def resume(
        cls,
        run_dir: "str | os.PathLike[str]",
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.monotonic,
        prep: "tuple[ProfileStore, SignatureDatabase] | None" = None,
        defense_profile: str | None = None,
    ) -> "FabricCoordinator":
        """Reopen an interrupted run's directory and serve the rest.

        Identical to :meth:`CampaignRuntime.resume
        <repro.campaign.runtime.runner.CampaignRuntime.resume>`:
        completed boards are reused from the journal, the rest are
        leased out again, and the final report is byte-identical to
        what the uninterrupted run would have written.
        """
        directory = RunDirectory.open(run_dir)
        return cls(
            directory.load_spec(),
            directory,
            lease_ttl=lease_ttl,
            clock=clock,
            prep=prep,
            defense_profile=defense_profile,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def run_dir(self) -> RunDirectory:
        """The run's on-disk home (journal, spool, report)."""
        return self._run_dir

    @property
    def spec(self) -> CampaignSpec:
        """The campaign being served."""
        return self._spec

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the coordinator is listening on."""
        if self._server is None:
            raise FabricError("coordinator is not serving")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def done(self) -> bool:
        """Whether every board has completed and the report is written."""
        return self._finished.is_set()

    def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start listening (``port=0`` binds an ephemeral port).

        Returns the bound address.  The accept loop runs on a daemon
        thread; call :meth:`close` (or leave the ``with`` block) to
        stop it.
        """
        if self._server is not None:
            raise FabricError("coordinator is already serving")
        server = _FabricServer((host, port), _FabricHandler)
        server.coordinator = self
        self._server = server
        self._server_thread = threading.Thread(
            target=server.serve_forever,
            name="fabric-coordinator",
            daemon=True,
        )
        self._server_thread.start()
        return self.address

    def close(self) -> None:
        """Stop accepting connections.  Idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10)
            self._server_thread = None

    def __enter__(self) -> "FabricCoordinator":
        if self._server is None:
            self.serve()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_until_complete(
        self, timeout: float | None = None
    ) -> CampaignReport:
        """Block until every board completes; returns the final report.

        **Clean-timeout contract.**  A timeout raises
        :class:`~repro.errors.FabricTimeoutError` and nothing else
        happens: the server keeps accepting connections, the journal,
        spool, and lease table are exactly as the last request left
        them, and outstanding leases keep expiring on the injected
        clock.  The caller may wait again, keep serving, or
        :meth:`close` — and after a close, the run directory resumes
        via :meth:`resume` to a byte-identical report.
        """
        if not self._finished.wait(timeout):
            raise FabricTimeoutError(
                f"campaign did not complete within {timeout} seconds "
                f"({self.status()['boards_pending']} board(s) pending); "
                f"the run directory remains resumable"
            )
        assert self._report is not None
        return self._report

    def status(self) -> dict:
        """A point-in-time observability snapshot (also the wire op)."""
        with self._lock:
            leases = self._table.snapshot()
            return {
                "boards": self._spec.boards,
                "boards_complete": len(self._boards_done),
                "boards_pending": len(leases["pending"]),
                "boards_leased": len(leases["leased"]),
                "leases_issued": leases["leases_issued"],
                "reclaims": leases["reclaims"],
                "stale_rejections": leases["stale_rejections"],
                "outcomes_journaled": self._journaled_this_run,
                "duplicates_rejected": self._duplicates_rejected,
                "dumps_received": self._dumps_received,
                "dumps_deduplicated": self._dumps_deduplicated,
                "workers": sorted(self._workers),
                "done": self._finished.is_set(),
            }

    # -- request dispatch ----------------------------------------------------

    def handle_request(self, request: dict) -> dict:
        """Serve one protocol request; never raises to the transport."""
        op = str(request.get("op", ""))
        handler = self._OPS.get(op)
        if handler is None:
            return {
                "ok": False,
                "code": "unknown-op",
                "error": f"unknown op {op!r}",
            }
        try:
            response = handler(self, request)
        except StaleLeaseError as exc:
            return {"ok": False, "code": "stale-lease", "error": str(exc)}
        except DumpTransferError as exc:
            return {
                "ok": False,
                "code": "digest-mismatch",
                "error": str(exc),
            }
        except FileNotFoundError as exc:
            return {"ok": False, "code": "unknown-digest", "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {
                "ok": False,
                "code": "bad-request",
                "error": f"malformed {op!r} request: {exc!r}",
            }
        response["ok"] = True
        return response

    def _op_hello(self, request: dict) -> dict:
        worker = str(request.get("worker", ""))
        profiles, database = self._offline_prep()
        with self._lock:
            if worker:
                self._workers.add(worker)
        return {
            "format": FABRIC_FORMAT,
            "spec": spec_to_dict(self._spec),
            "profiles": profiles.to_json(),
            "database": database.to_payload(),
            "defense_profile": self._defense_profile,
            "lease_ttl": self._lease_ttl,
            "run_dir": str(self._run_dir.root),
        }

    def _op_claim(self, request: dict) -> dict:
        worker = str(request["worker"])
        with self._lock:
            self._workers.add(worker)
            if self._table.done:
                return {"board": None, "lease": None, "done": True}
            lease = self._table.claim(worker)
            if lease is None:
                # Everything is leased out; the claimant may poll again
                # (a lease may yet expire) or exit if it won't wait.
                return {"board": None, "lease": None, "done": False}
            # Persist the watermark before the token leaves the
            # coordinator: once a worker holds it, no restart may ever
            # re-issue it.
            self._run_dir.save_lease_epochs(self._table.epochs())
            return {
                "board": lease.board,
                "lease": lease.token,
                "done": False,
            }

    def _op_heartbeat(self, request: dict) -> dict:
        with self._lock:
            lease = self._table.touch(str(request["lease"]))
            return {"board": lease.board}

    def _op_wave(self, request: dict) -> dict:
        records = request["outcomes"]
        wave = int(request["wave"])
        outcomes = [
            canonical_outcome(VictimOutcome(**record)) for record in records
        ]
        with self._lock:
            lease = self._table.touch(str(request["lease"]))
            for outcome in outcomes:
                if outcome.board_index != lease.board:
                    raise ValueError(
                        f"outcome for board {outcome.board_index} sent "
                        f"under a lease for board {lease.board}"
                    )
                if (
                    outcome.dump_sha256 is not None
                    and outcome.dump_sha256 not in self._spool
                ):
                    # Dumps must land before the outcomes that cite
                    # them, so the journal never names an object the
                    # artifact store cannot serve.
                    raise DumpTransferError(
                        f"wave cites dump {outcome.dump_sha256[:12]}… "
                        f"but it was never uploaded"
                    )
            fresh = [
                outcome
                for outcome in outcomes
                if outcome.job_id not in self._seen_jobs
            ]
            if fresh:
                self._run_dir.append_wave(lease.board, wave, fresh)
                self._seen_jobs.update(
                    outcome.job_id for outcome in fresh
                )
                self._accumulator.extend(fresh)
                self._journaled_this_run += len(fresh)
            duplicates = len(outcomes) - len(fresh)
            self._duplicates_rejected += duplicates
            return {"accepted": len(fresh), "duplicates": duplicates}

    def _op_board_complete(self, request: dict) -> dict:
        with self._lock:
            board = self._table.complete(str(request["lease"]))
            if board not in self._boards_done:
                self._run_dir.mark_board_complete(board)
                self._boards_done.add(board)
            done = self._table.done
            if done and not self._finished.is_set():
                self._finalize()
            return {"board": board, "done": done}

    def _op_put_dump(self, request: dict) -> dict:
        claimed = str(request["sha256"])
        data = base64.b64decode(request["data"])
        digest = hashlib.sha256(data).hexdigest()
        if digest != claimed:
            raise DumpTransferError(
                f"uploaded payload hashes to {digest[:12]}… but claims "
                f"to be {claimed[:12]}…"
            )
        entry = self._spool.put_bytes(data)
        with self._lock:
            self._dumps_received += 1
            if entry.deduplicated:
                self._dumps_deduplicated += 1
        return {"deduplicated": entry.deduplicated, "nbytes": entry.nbytes}

    def _op_has_dump(self, request: dict) -> dict:
        return {"present": str(request["sha256"]) in self._spool}

    def _op_fetch_dump(self, request: dict) -> dict:
        digest = str(request["sha256"])
        # Zero-copy on the read side: the object is mapped, encoded,
        # and unmapped — the explicit close keeps the coordinator's fd
        # table flat no matter how many fetches a campaign serves.
        with self._spool.open(digest) as mapped:
            payload = base64.b64encode(bytes(mapped.data)).decode("ascii")
            nbytes = mapped.nbytes
        return {"data": payload, "nbytes": nbytes}

    def _op_status(self, request: dict) -> dict:
        del request
        return self.status()

    _OPS: dict[str, Callable[["FabricCoordinator", dict], dict]] = {
        "hello": _op_hello,
        "claim": _op_claim,
        "heartbeat": _op_heartbeat,
        "wave": _op_wave,
        "board_complete": _op_board_complete,
        "put_dump": _op_put_dump,
        "has_dump": _op_has_dump,
        "fetch_dump": _op_fetch_dump,
        "status": _op_status,
    }

    # -- internals -----------------------------------------------------------

    def _offline_prep(self) -> tuple[ProfileStore, SignatureDatabase]:
        if self._prep is None:
            # Imported here: the engine imports this package for its
            # executor plumbing, so a module-level import would be
            # cyclic (same shape as the runtime's runner).
            from repro.campaign.engine import prepare_offline_cached

            self._prep = prepare_offline_cached(self._spec)
        return self._prep

    def _finalize(self) -> None:
        """Rebuild the canonical report from the journal and persist it.

        The journal is the single source of truth: completed boards'
        outcomes, deduplicated by ``job_id``, sorted, wall clock
        zeroed — the identical construction the single-host resume
        path uses, which is what makes the fabric's report
        byte-identical to :class:`CampaignRuntime`'s.
        """
        journal = self._run_dir.load_journal()
        outcomes = sorted(
            journal.reusable_outcomes(), key=lambda o: o.job_id
        )
        report = CampaignReport(
            spec=self._spec, outcomes=outcomes, wall_seconds=0.0
        )
        self._run_dir.write_report(report)
        self._spool.write_manifest(manifest_records(outcomes))
        leases = self._table.snapshot()
        self._run_dir.write_telemetry(
            {
                "complete": True,
                "executor": "fabric",
                "workers": sorted(self._workers),
                "lease_ttl": self._lease_ttl,
                "leases_issued": leases["leases_issued"],
                "lease_reclaims": leases["reclaims"],
                "stale_rejections": leases["stale_rejections"],
                "duplicates_rejected": self._duplicates_rejected,
                "outcomes_journaled_this_run": self._journaled_this_run,
                "dumps_received": self._dumps_received,
                "dumps_deduplicated": self._dumps_deduplicated,
                "victims_attacked": self._accumulator.victims,
                "victims_leaked": self._accumulator.succeeded,
                "wall_seconds": round(
                    time.perf_counter() - self._started, 6
                ),
                "spool_bytes": self._spool.total_bytes(),
                "spool_objects": len(self._spool.digests()),
            }
        )
        self._report = report
        self._finished.set()


class _DumpWireOps:
    """Digest-verified dump transfer, shared by both client flavours.

    Anything with a ``request(op, **fields)`` method gets uploads and
    downloads with content verification on the untrusted-transport
    side; :class:`ResilientFabricClient` inherits these unchanged, so
    a dump fetched across a reconnect is still re-hashed on arrival.
    """

    def request(self, op: str, **fields) -> dict:
        raise NotImplementedError

    def put_dump(self, data: bytes) -> dict:
        """Upload raw dump bytes under their own digest."""
        digest = hashlib.sha256(data).hexdigest()
        return self.request(
            "put_dump",
            sha256=digest,
            data=base64.b64encode(data).decode("ascii"),
        )

    def fetch_dump(self, sha256: str) -> bytes:
        """Download an object by digest, verifying it client-side.

        The coordinator's store is trusted but the transport is not:
        the payload is re-hashed on arrival and a mismatch raises
        :class:`DumpTransferError` instead of returning corrupt bytes.
        """
        response = self.request("fetch_dump", sha256=sha256)
        data = base64.b64decode(response["data"])
        digest = hashlib.sha256(data).hexdigest()
        if digest != sha256:
            raise DumpTransferError(
                f"fetched payload hashes to {digest[:12]}… but "
                f"{sha256[:12]}… was requested"
            )
        return data


class FabricClient(_DumpWireOps):
    """One line-oriented JSON connection to a coordinator.

    Thread-safe: a lock serializes request/response pairs, so a
    worker's heartbeat thread can share its main loop's connection.
    Error responses map back onto the fabric exception hierarchy
    (``stale-lease`` → :class:`StaleLeaseError`, digest trouble →
    :class:`DumpTransferError`, everything else →
    :class:`FabricProtocolError`), and *transport* deaths — refused,
    reset, timed out, or closed mid-frame — raise the retryable
    subclass :class:`~repro.errors.FabricConnectionError` so a policy
    layer can tell "the wire died" from "the coordinator said no".
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
    ) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise FabricConnectionError(
                f"cannot reach coordinator at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._closed = False

    def request(self, op: str, **fields) -> dict:
        """Send one op and return its decoded ``ok`` response."""
        payload = {"op": op, **fields}
        line = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        with self._lock:
            if self._closed:
                raise FabricProtocolError(
                    f"client already closed (sending {op!r})"
                )
            try:
                self._file.write(line)
                self._file.flush()
                answer = self._file.readline()
            except OSError as exc:
                raise FabricConnectionError(
                    f"connection lost during {op!r}: {exc}"
                ) from exc
        if not answer:
            raise FabricConnectionError(
                f"coordinator closed the stream during {op!r}"
            )
        if not answer.endswith(b"\n"):
            # The stream died mid-frame: a response prefix arrived and
            # then EOF.  Retryable — the reply was lost, not malformed.
            raise FabricConnectionError(
                f"response to {op!r} cut off mid-frame"
            )
        try:
            response = json.loads(answer)
        except ValueError as exc:
            raise FabricProtocolError(
                f"unparseable response to {op!r}"
            ) from exc
        if not response.get("ok"):
            code = response.get("code")
            error = str(response.get("error", "unspecified fabric error"))
            if code == "stale-lease":
                raise StaleLeaseError(
                    str(fields.get("lease", "?")), error
                )
            if code in ("digest-mismatch", "unknown-digest"):
                raise DumpTransferError(error)
            raise FabricProtocolError(f"{code}: {error}")
        return response

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes to the stream — the chaos harness's torn-
        stream injection point.  No response is read."""
        with self._lock:
            if self._closed:
                raise FabricProtocolError(
                    "client already closed (sending raw bytes)"
                )
            try:
                self._file.write(data)
                self._file.flush()
            except OSError as exc:
                raise FabricConnectionError(
                    f"connection lost during raw send: {exc}"
                ) from exc

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "FabricClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ResilientFabricClient(_DumpWireOps):
    """A fabric client that survives the wire: redial, re-handshake,
    replay.

    Wraps :class:`FabricClient` with a
    :class:`~repro.utils.resilience.RetryPolicy`-driven
    reconnect-and-replay loop.  When an op dies with
    :class:`~repro.errors.FabricConnectionError` — dial refused,
    reset mid-exchange, reply lost — the client drops the dead
    connection, backs off per the policy, redials, runs the
    *handshake* hook on the fresh connection, and re-sends the
    in-flight op.

    **Why replay is safe.**  Every fabric op is either idempotent
    (``hello``, ``heartbeat``, ``has_dump``, ``fetch_dump``,
    ``status``), deduplicated by content (``put_dump`` by digest,
    ``wave`` by ``job_id``), or fenced (``board_complete`` under a
    lease token — a replay after the first copy landed gets a benign
    :class:`StaleLeaseError`).  The one non-idempotent op, ``claim``,
    is *convergent*: if the original claim landed but its reply was
    lost, the orphaned lease simply expires and the board re-issues.
    So at-least-once delivery can never corrupt the journal — the
    property the chaos drills pin.

    Non-retryable errors — :class:`StaleLeaseError`,
    :class:`DumpTransferError`, protocol violations — propagate
    immediately: the coordinator *answered*; retrying would just
    repeat the answer.  When the retry budget runs out the last
    connection error surfaces as
    :class:`~repro.errors.RetryExhaustedError`.

    Thread-safe like :class:`FabricClient`: a worker's heartbeat
    thread shares the connection, and redials are serialized so
    concurrent failures produce one reconnect, not a stampede.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        timeout: float = 60.0,
        handshake: "Callable[[FabricClient], None] | None" = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        on_reconnect: Callable[[int], None] | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._policy = policy
        self._timeout = timeout
        self._handshake = handshake
        self._clock = clock
        self._sleep = sleep
        self._on_reconnect = on_reconnect
        self._conn_lock = threading.Lock()
        self._client: FabricClient | None = None
        self._dialed_once = False
        self._closed = False
        self.reconnects = 0
        self.replays = 0

    def connect(self) -> None:
        """Dial (and handshake) eagerly, under the retry policy.

        Optional — the first :meth:`request` dials lazily — but a
        worker calls this up front so "coordinator never reachable"
        surfaces before any lease is claimed.
        """
        self._policy.call(
            self._ensure_connected,
            retry_on=(FabricConnectionError,),
            clock=self._clock,
            sleep=self._sleep,
            op=f"connect to {self._host}:{self._port}",
        )

    def request(self, op: str, **fields) -> dict:
        """Send one op, reconnecting and replaying until it lands.

        Raises :class:`~repro.errors.RetryExhaustedError` (with the
        final :class:`FabricConnectionError` as ``__cause__``) once
        the policy's attempt or deadline budget is spent.
        """
        sent_once = [False]

        def attempt() -> dict:
            client = self._ensure_connected()
            if sent_once[0]:
                with self._conn_lock:
                    self.replays += 1
            sent_once[0] = True
            try:
                return client.request(op, **fields)
            except FabricConnectionError:
                self._drop(client)
                raise

        return self._policy.call(
            attempt,
            retry_on=(FabricConnectionError,),
            clock=self._clock,
            sleep=self._sleep,
            op=f"fabric op {op!r}",
        )

    def send_raw(self, data: bytes) -> None:
        """Raw bytes onto the *current* connection — chaos injection
        point; never retried (raw bytes are not a replayable op)."""
        self._ensure_connected().send_raw(data)

    def stats(self) -> dict:
        """Reconnect/replay counters for telemetry and drills."""
        with self._conn_lock:
            return {"reconnects": self.reconnects, "replays": self.replays}

    def close(self) -> None:
        with self._conn_lock:
            self._closed = True
            client, self._client = self._client, None
        if client is not None:
            client.close()

    def __enter__(self) -> "ResilientFabricClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _ensure_connected(self) -> FabricClient:
        with self._conn_lock:
            if self._closed:
                raise FabricProtocolError("client already closed")
            if self._client is not None:
                return self._client
            reconnecting = self._dialed_once
        client = FabricClient(
            self._host, self._port, timeout=self._timeout
        )
        try:
            if self._handshake is not None:
                self._handshake(client)
        except BaseException:
            client.close()
            raise
        with self._conn_lock:
            if self._closed:
                client.close()
                raise FabricProtocolError("client already closed")
            if self._client is not None:
                # Another thread won the redial race; use its link.
                client.close()
                return self._client
            self._client = client
            self._dialed_once = True
            if reconnecting:
                self.reconnects += 1
                count = self.reconnects
            else:
                count = 0
        if reconnecting and self._on_reconnect is not None:
            self._on_reconnect(count)
        return client

    def _drop(self, client: FabricClient) -> None:
        """Discard a connection an op just died on."""
        with self._conn_lock:
            if self._client is client:
                self._client = None
        client.close()


class _SimulatedWorkerDeath(Exception):
    """Internal: the worker's scripted death point fired."""


class FabricWorker:
    """A remote board runner: claim leases, run boards, stream waves.

    ``run()`` connects, learns the campaign from ``hello`` (spec,
    offline prep, defense profile name — everything a board simulation
    needs travels by value, the same contract the multiprocess
    executor uses), then loops: claim a board, play its waves through
    a local :class:`BoardWorker`, upload each wave's dumps *before*
    the wave itself, and mark the board complete.  Outcomes are
    canonicalized before they leave the worker.

    Fault-injection knobs, mirroring ``interrupt_after`` on the local
    runtime: *die_after_waves* kills the worker (stops everything,
    completes nothing further) once it has shipped that many waves of
    its current board — ``0`` dies mid-wave, after the wave's dumps
    uploaded but before the outcomes ship.  The chaos harness
    subclasses this class and overrides the ``_before_*`` hooks for
    sharper faults (torn streams, duplicate sends, heartbeat loss).

    *poll_interval=None* makes ``run()`` return as soon as no lease is
    claimable (drain-and-exit — what in-process drills want);
    otherwise the worker polls until the campaign is done.

    **Self-healing.**  All traffic flows through a
    :class:`ResilientFabricClient` under *retry_policy*: connection
    loss and coordinator restarts are outages to ride out
    (redial, re-handshake, replay), not fatal errors.  A board whose
    lease was lost during an outage — observed as
    :class:`StaleLeaseError` on the next op, or flagged by the
    heartbeat thread — is abandoned cleanly and the worker claims
    fresh work.  When the coordinator stays unreachable past the
    policy's budget, ``run()`` raises
    :class:`~repro.errors.RetryExhaustedError`, which ``repro
    campaign work`` maps to its documented exit code 4.  *clock* and
    *sleep* are injectable so retry drills run on
    :class:`ManualClock` with zero wall-clock waits.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: str | None = None,
        spool_dir: str | os.PathLike[str] | None = None,
        poll_interval: float | None = 0.2,
        heartbeat: bool = True,
        die_after_waves: int | None = None,
        timeout: float = 60.0,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._host = host
        self._port = port
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}"
        )
        self._spool_dir = spool_dir
        self._poll_interval = poll_interval
        self._heartbeat = heartbeat
        self._die_after_waves = die_after_waves
        self._timeout = timeout
        self._retry_policy = retry_policy
        self._clock = clock
        self._sleep = sleep
        self._uploaded: set[str] = set()
        self._lease_lock = threading.Lock()
        self._current_lease: str | None = None
        self._stop_heartbeat = threading.Event()
        self._heartbeat_failed = threading.Event()
        self._heartbeat_failed_token: str | None = None
        self._last_hello: dict | None = None

    def run(self) -> dict:
        """Work the campaign until drained, done, or scripted death.

        Returns a stats dict (boards completed/abandoned, waves and
        dumps shipped, reconnects/replays survived, whether the
        scripted death fired) — the chaos tests and the CLI both read
        it.  Raises :class:`~repro.errors.RetryExhaustedError` when
        the coordinator stays unreachable past the retry budget.
        """
        stats = {
            "worker": self.worker_id,
            "boards_completed": [],
            "boards_abandoned": [],
            "waves_sent": 0,
            "outcomes_sent": 0,
            "dumps_uploaded": 0,
            "dumps_deduplicated": 0,
            "stale_leases": 0,
            "reconnects": 0,
            "replays": 0,
            "heartbeat_failures": 0,
            "died": False,
        }
        scratch: tempfile.TemporaryDirectory | None = None
        if self._spool_dir is None:
            scratch = tempfile.TemporaryDirectory(prefix="fabric-worker-")
            spool_root = scratch.name
        else:
            spool_root = os.fspath(self._spool_dir)
        heartbeat_thread: threading.Thread | None = None
        client = ResilientFabricClient(
            self._host,
            self._port,
            policy=self._retry_policy,
            timeout=self._timeout,
            handshake=self._verify_peer,
            clock=self._clock,
            sleep=self._sleep,
        )
        try:
            with client:
                # Eager dial: "coordinator never reachable" surfaces
                # here, before any lease is claimed.  The handshake
                # hook re-runs on every redial, so a restarted
                # coordinator re-admits this worker automatically.
                client.connect()
                assert self._last_hello is not None
                world = self._build_world(self._last_hello)
                if self._heartbeat:
                    heartbeat_thread = threading.Thread(
                        target=self._heartbeat_loop,
                        args=(client, world["lease_ttl"] / 3.0, stats),
                        name=f"fabric-heartbeat-{self.worker_id}",
                        daemon=True,
                    )
                    heartbeat_thread.start()
                self._claim_loop(
                    client, world, DumpSpool(spool_root), stats
                )
        except _SimulatedWorkerDeath:
            stats["died"] = True
        finally:
            self._stop_heartbeat.set()
            if heartbeat_thread is not None:
                heartbeat_thread.join(timeout=5)
            if scratch is not None:
                scratch.cleanup()
            stats.update(client.stats())
        return stats

    # -- the work loop -------------------------------------------------------

    def _verify_peer(self, client: FabricClient) -> None:
        """The (re)handshake: runs on every dial, first and redials.

        Registers the worker, refuses a format-incompatible
        coordinator, and keeps the latest ``hello`` payload for
        :meth:`_build_world`.
        """
        hello = client.request("hello", worker=self.worker_id)
        if hello["format"] != FABRIC_FORMAT:
            raise FabricProtocolError(
                f"coordinator speaks fabric format {hello['format']}, "
                f"this worker speaks {FABRIC_FORMAT}"
            )
        self._last_hello = hello

    def _build_world(self, hello: dict) -> dict:
        spec = spec_from_dict(hello["spec"])
        kernel_config = None
        if hello.get("defense_profile"):
            # Imported here to keep the defense arena optional for
            # undefended fleets (and the import graph acyclic).
            from repro.defense.profiles import defense_profile

            kernel_config = defense_profile(
                hello["defense_profile"]
            ).kernel_config(spec)
        return {
            "spec": spec,
            "profiles": ProfileStore.from_json(hello["profiles"]),
            "database": SignatureDatabase.from_payload(hello["database"]),
            "kernel_config": kernel_config,
            "config": AttackConfig(coalesce_reads=spec.coalesce_reads),
            "grouped": jobs_by_board(build_schedule(spec)),
            "lease_ttl": float(hello["lease_ttl"]),
        }

    def _claim_loop(
        self,
        client: "ResilientFabricClient",
        world: dict,
        spool: DumpSpool,
        stats: dict,
    ) -> None:
        while True:
            claim = client.request("claim", worker=self.worker_id)
            if claim["board"] is None:
                if claim["done"] or self._poll_interval is None:
                    return
                self._sleep(self._poll_interval)
                continue
            board, token = int(claim["board"]), str(claim["lease"])
            with self._lease_lock:
                self._current_lease = token
                # A failure flagged against some *previous* lease must
                # not poison this fresh one.
                self._heartbeat_failed_token = None
                self._heartbeat_failed.clear()
            try:
                self._run_board(
                    client, world, spool, board, token, stats
                )
                stats["boards_completed"].append(board)
            except StaleLeaseError:
                # Fenced off: the lease expired (or the harness raced
                # us) and the board belongs to someone else now.  Drop
                # it and claim fresh work; the journal never saw our
                # late messages.
                stats["stale_leases"] += 1
                stats["boards_abandoned"].append(board)
            finally:
                with self._lease_lock:
                    self._current_lease = None

    def _run_board(
        self,
        client: "ResilientFabricClient",
        world: dict,
        spool: DumpSpool,
        board: int,
        token: str,
        stats: dict,
    ) -> None:
        jobs: "list[VictimJob]" = world["grouped"].get(board, [])
        provisioned = provision_board(
            world["spec"], board, world["kernel_config"]
        )
        worker = BoardWorker(
            provisioned,
            world["profiles"],
            world["database"],
            world["config"],
            spool=spool,
        )
        waves_sent = 0
        for wave, outcomes in worker.iter_waves(jobs):
            self._check_heartbeat(token)
            canonical = [
                canonical_outcome(outcome) for outcome in outcomes
            ]
            self._ship_dumps(client, spool, canonical, stats)
            if (
                self._die_after_waves is not None
                and waves_sent >= self._die_after_waves
            ):
                # Mid-wave death: this wave's dumps are uploaded but
                # its outcomes never ship — the orphaned objects are
                # harmless (content-addressed, reclaimed on re-run).
                raise _SimulatedWorkerDeath()
            self._before_wave_send(client, token, board, wave, canonical)
            client.request(
                "wave",
                lease=token,
                wave=wave,
                outcomes=[asdict(outcome) for outcome in canonical],
            )
            waves_sent += 1
            stats["waves_sent"] += 1
            stats["outcomes_sent"] += len(canonical)
        self._before_board_complete(client, token, board)
        client.request("board_complete", lease=token)

    def _check_heartbeat(self, token: str) -> None:
        """Abandon the board when the heartbeat thread lost its lease.

        Without this check a worker whose heartbeats were silently
        failing would grind through an entire board the coordinator
        already re-leased, discover the fencing only at the final op,
        and waste the whole shard's work.  The event turns that into a
        deliberate, early abandon.
        """
        if not self._heartbeat_failed.is_set():
            return
        with self._lease_lock:
            failed = self._heartbeat_failed_token
        if failed == token:
            raise StaleLeaseError(
                token, "heartbeat failure observed by the claim loop"
            )

    def _ship_dumps(
        self,
        client: "ResilientFabricClient",
        spool: DumpSpool,
        outcomes: "list[VictimOutcome]",
        stats: dict,
    ) -> None:
        for outcome in outcomes:
            digest = outcome.dump_sha256
            if digest is None or digest in self._uploaded:
                continue
            if client.request("has_dump", sha256=digest)["present"]:
                self._uploaded.add(digest)
                stats["dumps_deduplicated"] += 1
                continue
            response = client.put_dump(spool.read(digest))
            self._uploaded.add(digest)
            stats["dumps_uploaded"] += 1
            if response["deduplicated"]:
                stats["dumps_deduplicated"] += 1

    def _heartbeat_loop(
        self,
        client: "ResilientFabricClient",
        interval: float,
        stats: dict,
    ) -> None:
        while not self._stop_heartbeat.wait(max(interval, 0.05)):
            with self._lease_lock:
                token = self._current_lease
            if token is None:
                continue
            try:
                client.request("heartbeat", lease=token)
            except (FabricError, RetryExhaustedError):
                # The lease is stale, or the coordinator stayed
                # unreachable past the retry budget — either way this
                # lease cannot be trusted anymore.  Flag it so the
                # claim loop abandons the board *deliberately* instead
                # of silently working a shard the coordinator may
                # already have re-issued to someone else.
                with self._lease_lock:
                    if self._current_lease == token:
                        self._heartbeat_failed_token = token
                        self._heartbeat_failed.set()
                stats["heartbeat_failures"] += 1

    # -- chaos hooks ---------------------------------------------------------

    def _before_wave_send(
        self,
        client: "ResilientFabricClient",
        token: str,
        board: int,
        wave: int,
        outcomes: "list[VictimOutcome]",
    ) -> None:
        """Called after a wave's dumps are uploaded, before its
        outcomes ship.  The chaos harness overrides this to tear
        streams, duplicate sends, or die at exact points."""

    def _before_board_complete(
        self, client: "ResilientFabricClient", token: str, board: int
    ) -> None:
        """Called after a board's last wave shipped, before its
        completion marker.  Chaos override point."""
