"""Transport-level fault injection — a scriptable flaky TCP proxy.

The chaos harness in ``tests/fabric_chaos.py`` injects faults at the
*application* layer (a worker that dies, duplicates, or replays).
:class:`FlakyProxy` injects them at the *transport* layer instead: it
sits between fabric clients and a coordinator, forwards bytes in both
directions, and — on a script keyed by global request ordinal — cuts
connections, tears frames mid-byte, stalls past the client's socket
timeout, or drops into a full partition.  The DAVOS-style premise:
resilience claims are proven with injected faults, not hoped about.

Everything here is plain byte plumbing with no knowledge of the
fabric's JSON protocol beyond "requests are newline-terminated", so
the proxy can front any newline-framed peer.  It lives in ``src`` (not
the test tree) because three consumers share it: the fabric chaos
tests, the fuzzlab's ``fabric_drop_after_ops`` /
``fabric_partition_ticks`` scenario axes, and the ``fabric-smoke``
drill's proxied worker.

Fault semantics, by scripted request ordinal (1-based, counted across
*all* proxied connections):

- **drop** — the request is swallowed and both sides of the
  connection are cut: the client wrote an op and will read EOF, the
  classic lost-in-flight exchange reconnect-and-replay exists for.
- **tear** — a truncated prefix of the request is forwarded (no
  newline) and the connection is cut: the coordinator sees a torn
  frame (answers ``bad-request`` into a dead socket, drops the
  conn), the client sees EOF.
- **stall** — forwarding pauses for ``stall_seconds`` before the
  request goes through: a client whose socket timeout is shorter
  gives up (``socket.timeout`` → retryable) and replays on a fresh
  connection while the stalled op may *still arrive later* — the
  at-least-once duplication the journal's dedup must absorb.
- **partition** (:meth:`FlakyProxy.partition`) — every live
  connection is cut and new ones are accepted-then-closed until
  :meth:`FlakyProxy.heal`; the upstream is unreachable through the
  proxy, full stop.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ChaosScript:
    """Which request ordinals misbehave, and how.

    Ordinals are 1-based and global across every connection the proxy
    carries — "drop the 4th request this proxy ever sees", not "the
    4th on some connection" — which keeps a multi-worker drill's total
    fault count exact even though thread interleaving decides *which*
    worker absorbs each fault (the byte-identity contract must hold
    regardless, so that nondeterminism is part of the drill).
    """

    drop_after_requests: tuple[int, ...] = ()
    tear_after_requests: tuple[int, ...] = ()
    stall_after_requests: tuple[int, ...] = ()
    stall_seconds: float = 1.0

    def __post_init__(self) -> None:
        claimed: set[int] = set()
        for name in (
            "drop_after_requests",
            "tear_after_requests",
            "stall_after_requests",
        ):
            ordinals = getattr(self, name)
            if any(ordinal < 1 for ordinal in ordinals):
                raise ValueError(f"{name}: ordinals are 1-based")
            overlap = claimed & set(ordinals)
            if overlap:
                raise ValueError(
                    f"request ordinal(s) {sorted(overlap)} scripted for "
                    f"more than one fault"
                )
            claimed |= set(ordinals)
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be non-negative, got "
                f"{self.stall_seconds}"
            )


@dataclass(eq=False)
class _Link:
    """One proxied connection: the client/upstream socket pair.

    ``eq=False`` keeps identity semantics (and hashability) so links
    can live in the proxy's tracking set.
    """

    client: socket.socket
    upstream: socket.socket
    lock: threading.Lock = field(default_factory=threading.Lock)
    dead: bool = False

    def kill(self) -> None:
        """Cut both sides.  Idempotent; safe from any thread."""
        with self.lock:
            if self.dead:
                return
            self.dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class FlakyProxy:
    """A scriptable flaky TCP proxy in front of one upstream address.

    >>> # proxy = FlakyProxy(("127.0.0.1", 4000),
    >>> #                    script=ChaosScript(drop_after_requests=(3,)))
    >>> # host, port = proxy.start()   # point FabricWorkers here

    ``start()`` binds an ephemeral listening port and returns it; every
    accepted connection is piped to the upstream with the script
    applied to the client→upstream request stream.  ``stats()`` counts
    what was injected so drills can assert their faults actually
    fired — a chaos test whose chaos silently failed to happen proves
    nothing.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        *,
        script: ChaosScript | None = None,
    ) -> None:
        self._upstream = upstream
        self._script = script or ChaosScript()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._partitioned = threading.Event()
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._links: set[_Link] = set()
        self._requests_seen = 0
        self._stats = {
            "connections": 0,
            "requests_forwarded": 0,
            "drops_injected": 0,
            "tears_injected": 0,
            "stalls_injected": 0,
            "partition_rejects": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Listen on an ephemeral port; returns ``(host, port)``."""
        if self._listener is not None:
            raise RuntimeError("proxy is already started")
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="flaky-proxy", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The proxy's listening address."""
        if self._listener is None:
            raise RuntimeError("proxy is not started")
        host, port = self._listener.getsockname()[:2]
        return str(host), int(port)

    def close(self) -> None:
        """Stop listening and cut every live connection.  Idempotent."""
        self._closed.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                # close() alone does not wake a thread blocked in
                # accept(2); shutdown() does (the accept raises), so
                # the join below returns immediately instead of eating
                # its full timeout on every proxy teardown.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        self._kill_links()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "FlakyProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- partition control ---------------------------------------------------

    def partition(self) -> None:
        """Full partition: cut live links, refuse new ones until healed."""
        self._partitioned.set()
        self._kill_links()

    def heal(self) -> None:
        """End the partition; new connections flow again."""
        self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        """Whether the proxy is currently refusing all traffic."""
        return self._partitioned.is_set()

    def stats(self) -> dict:
        """Counts of connections carried and faults actually injected."""
        with self._lock:
            return dict(self._stats)

    # -- internals -----------------------------------------------------------

    def _kill_links(self) -> None:
        with self._lock:
            links = list(self._links)
        for link in links:
            link.kill()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        listener = self._listener
        while not self._closed.is_set():
            try:
                client, _ = listener.accept()
            except OSError:
                return  # listener closed
            if self._partitioned.is_set():
                with self._lock:
                    self._stats["partition_rejects"] += 1
                try:
                    client.close()
                except OSError:
                    pass
                continue
            try:
                upstream = socket.create_connection(self._upstream)
            except OSError:
                # The upstream itself is down (e.g. a coordinator
                # mid-restart); to the client that is the same outage.
                try:
                    client.close()
                except OSError:
                    pass
                continue
            link = _Link(client=client, upstream=upstream)
            with self._lock:
                self._links.add(link)
                self._stats["connections"] += 1
            threading.Thread(
                target=self._pump_requests, args=(link,), daemon=True
            ).start()
            threading.Thread(
                target=self._pump_responses, args=(link,), daemon=True
            ).start()

    def _next_ordinal(self) -> int:
        with self._lock:
            self._requests_seen += 1
            return self._requests_seen

    def _pump_requests(self, link: _Link) -> None:
        """client → upstream, one newline-framed request at a time."""
        buffer = b""
        try:
            while True:
                data = link.client.recv(65536)
                if not data:
                    break
                buffer += data
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    ordinal = self._next_ordinal()
                    if ordinal in self._script.drop_after_requests:
                        with self._lock:
                            self._stats["drops_injected"] += 1
                        return
                    if ordinal in self._script.tear_after_requests:
                        with self._lock:
                            self._stats["tears_injected"] += 1
                        # A frame cut mid-byte: valid prefix, no
                        # newline, then the wire goes dead.
                        link.upstream.sendall(line[: max(1, len(line) // 2)])
                        return
                    if ordinal in self._script.stall_after_requests:
                        with self._lock:
                            self._stats["stalls_injected"] += 1
                        time.sleep(self._script.stall_seconds)
                    link.upstream.sendall(line + b"\n")
                    with self._lock:
                        self._stats["requests_forwarded"] += 1
        except OSError:
            pass
        finally:
            link.kill()
            with self._lock:
                self._links.discard(link)

    def _pump_responses(self, link: _Link) -> None:
        """upstream → client, raw bytes (responses are never faulted:
        every scripted fault models the *request* path so each fault
        maps to exactly one lost-or-delayed op)."""
        try:
            while True:
                data = link.upstream.recv(65536)
                if not data:
                    break
                link.client.sendall(data)
        except OSError:
            pass
        finally:
            link.kill()
