"""Process-parallel, checkpointable campaign runtime.

PR 1's engine ran every board on one thread pool in one process and
kept everything in memory until the end — fine for a demo fleet,
fragile for the fleet-scale scraping scenario the paper implies (and
the Resurrection-Attack / Pentimento-style long-horizon variants in
PAPERS.md demand).  This package turns the engine into a restartable,
service-grade runtime:

- :mod:`~repro.campaign.runtime.executors` — the placement layer:
  boards on threads (:class:`InProcessExecutor`) or sharded across a
  ``multiprocessing`` pool (:class:`MultiprocessExecutor`), streaming
  wave outcomes back over a queue; :func:`resolve_executor` applies
  the small-fleet fallback policy.
- :mod:`~repro.campaign.runtime.spool` — :class:`DumpSpool`, the
  content-addressed on-disk store every scraped dump lands in the
  moment step-4 analysis finishes, keeping resident memory flat
  regardless of campaign size.
- :mod:`~repro.campaign.runtime.checkpoint` — :class:`RunDirectory`:
  the spec, the per-wave outcome journal, telemetry, and the final
  report, with :func:`canonical_outcome` making journaled results
  deterministic.
- :mod:`~repro.campaign.runtime.runner` — :class:`CampaignRuntime`,
  which ties the three together so ``repro campaign run --resume``
  continues an interrupted campaign to a byte-identical report.
- :mod:`~repro.campaign.runtime.fabric` — the distributed fabric:
  :class:`FabricCoordinator` serves board shards as heartbeat-carrying
  leases over a JSON/TCP protocol, :class:`FabricWorker` claims and
  runs them remotely (``repro campaign serve`` / ``work``), and the
  journaled run directory keeps the final report byte-identical to a
  single-host run across crashes, reclaims, and replays.

See ``docs/campaigns.md`` for the operator runbook and
``docs/distributed.md`` for the fabric protocol and failure drills.
"""

from repro.campaign.runtime.checkpoint import (
    JournalState,
    RunDirectory,
    canonical_outcome,
    manifest_records,
)
from repro.campaign.runtime.executors import (
    MULTIPROCESS_AUTO_BOARDS,
    CampaignExecutionError,
    InProcessExecutor,
    MultiprocessExecutor,
    resolve_executor,
)
from repro.campaign.runtime.runner import CampaignRuntime
from repro.campaign.runtime.spool import DumpSpool, MappedDump, SpoolEntry
from repro.campaign.runtime.fabric import (
    DEFAULT_LEASE_TTL,
    FABRIC_FORMAT,
    FabricClient,
    FabricCoordinator,
    FabricWorker,
    Lease,
    LeaseTable,
    ManualClock,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FABRIC_FORMAT",
    "MULTIPROCESS_AUTO_BOARDS",
    "CampaignExecutionError",
    "CampaignRuntime",
    "DumpSpool",
    "FabricClient",
    "FabricCoordinator",
    "FabricWorker",
    "InProcessExecutor",
    "JournalState",
    "Lease",
    "LeaseTable",
    "ManualClock",
    "MappedDump",
    "MultiprocessExecutor",
    "RunDirectory",
    "SpoolEntry",
    "canonical_outcome",
    "manifest_records",
    "resolve_executor",
]
