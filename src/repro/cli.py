"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the evaluation entry points:

- ``demo``      — run the paper's end-to-end attack and print the report
- ``figures``   — regenerate Figs. 4-12 with claim checks
- ``defenses``  — the defense ablation matrix
- ``zoo``       — list the model library (name, framework, weights)
- ``boards``    — list the supported evaluation boards
- ``profile``   — run offline profiling and emit the JSON notebook
- ``campaign``  — fleet-scale orchestration: ``campaign run`` executes a
  multi-board, multi-victim campaign (``--executor multiprocess``
  shards boards across worker processes; ``--run-dir`` makes the run
  checkpointable and ``--resume`` continues an interrupted one);
  ``campaign report`` re-renders a saved JSON report
- ``defense``   — the attack/defense arena: ``defense sweep`` runs the
  fleet campaign under each hardening profile and prints the
  leakage-vs-overhead matrix; ``defense report`` re-renders a saved
  matrix (``defenses`` above is the older single-board ablation)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.evaluation.figures import generate_all_figures, render_figure_report
from repro.evaluation.scenarios import BoardSession, run_paper_attack
from repro.hw.board import BOARDS, board_by_name


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--input-hw",
        type=int,
        default=32,
        help="square input edge in pixels (default: 32)",
    )
    parser.add_argument(
        "--board",
        default="ZCU104",
        choices=sorted(BOARDS),
        help="evaluation board (default: ZCU104)",
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    session = BoardSession.boot(
        board=board_by_name(args.board), input_hw=args.input_hw
    )
    outcome = run_paper_attack(session, victim_model=args.model)
    print(outcome.report.render())
    print()
    if outcome.fidelity is not None:
        print(
            f"reconstruction fidelity: "
            f"{outcome.fidelity.pixel_match_rate:.1%} pixel match"
        )
    return 0 if outcome.model_identified_correctly else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    figures = generate_all_figures(input_hw=args.input_hw)
    print(render_figure_report(figures))
    failing = [
        figure_id
        for figure_id, artifact in figures.items()
        if not artifact.all_claims_hold
    ]
    if failing:
        print(f"\nFAILING figures: {failing}", file=sys.stderr)
        return 1
    print(f"\nall {len(figures)} figures reproduced.")
    return 0


def _cmd_defenses(args: argparse.Namespace) -> int:
    from repro.evaluation.scenarios import attack_under_config
    from repro.petalinux.kernel import KernelConfig
    from repro.petalinux.sanitizer import SanitizePolicy

    configs = [
        ("vulnerable-default", KernelConfig()),
        (
            "zero-on-free",
            KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
        ),
        ("pagemap-lockdown", KernelConfig(pagemap_world_readable=False)),
        ("strict-devmem", KernelConfig(devmem_unrestricted=False)),
        ("fully-hardened", KernelConfig().hardened()),
    ]
    print(f"{'config':<22} {'steps':<6} {'stopped at':<26} leaked?")
    for label, config in configs:
        outcome = attack_under_config(config, label, input_hw=args.input_hw)
        print(
            f"{label:<22} {outcome.steps_completed:<6} "
            f"{outcome.failed_step or '-':<26} "
            f"{'YES' if outcome.attack_succeeded else 'no'}"
        )
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.vitis.zoo import MODEL_NAMES, build_model

    print(f"{'model':<18} {'framework':<12} {'layers':<7} weight bytes")
    for name in MODEL_NAMES:
        model = build_model(name, input_hw=args.input_hw)
        print(
            f"{name:<18} {model.framework:<12} "
            f"{len(model.subgraph.layers):<7} {model.weight_nbytes()}"
        )
    return 0


def _cmd_boards(args: argparse.Namespace) -> int:
    del args
    for name in sorted(BOARDS):
        print(BOARDS[name].describe())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    session = BoardSession.boot(
        board=board_by_name(args.board), input_hw=args.input_hw
    )
    profiles = session.profile(args.models)
    text = profiles.to_json()
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(args.models)} profiles to {args.output}")
    return 0


def _emit_campaign_report(report, output: str | None, extra: list[str]) -> int:
    """Render a campaign report, honor ``-o``, map failures to exit 1."""
    print(report.render())
    for line in extra:
        print(line)
    if output is not None:
        with open(output, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote report to {output}")
    return 0 if not report.failures() else 1


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRuntime, CampaignSpec, run_campaign
    from repro.errors import CampaignInterrupted

    if args.run_dir is not None and args.resume is not None:
        print(
            "--run-dir and --resume are mutually exclusive: a resumed "
            "run already has its run directory",
            file=sys.stderr,
        )
        return 2
    if args.interrupt_after is not None and not (args.run_dir or args.resume):
        print(
            "--interrupt-after needs a checkpointable run "
            "(--run-dir or --resume)",
            file=sys.stderr,
        )
        return 2
    if args.resume is not None:
        # The spec comes from the run directory; spec-shaped flags on
        # the command line are ignored.
        try:
            runtime = CampaignRuntime.resume(
                args.resume,
                executor=args.executor,
                processes=args.processes,
                interrupt_after=args.interrupt_after,
            )
        except (FileNotFoundError, ValueError) as error:
            # Missing directory, or a spec.json with a bad/foreign format.
            print(error, file=sys.stderr)
            return 2
    else:
        spec = CampaignSpec(
            boards=args.boards,
            victims=args.victims,
            model_mix=tuple(args.models.split(",")),
            tenants_per_board=args.tenants,
            wave_size=args.wave_size,
            seed=args.seed,
            input_hw=args.input_hw,
            board_names=tuple(args.board_mix.split(",")),
            max_workers=args.workers,
            coalesce_reads=not args.word_reads,
        )
        if args.run_dir is None:
            report = run_campaign(
                spec, executor=args.executor, processes=args.processes
            )
            return _emit_campaign_report(report, args.output, extra=[])
        try:
            runtime = CampaignRuntime(
                spec,
                args.run_dir,
                executor=args.executor,
                processes=args.processes,
                interrupt_after=args.interrupt_after,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    try:
        report = runtime.run()
    except CampaignInterrupted as interruption:
        print(f"INTERRUPTED: {interruption}", file=sys.stderr)
        print(
            f"journal: {runtime.run_dir.journal_path}",
            file=sys.stderr,
        )
        return 3
    return _emit_campaign_report(
        report,
        args.output,
        extra=[
            f"\nrun directory: {runtime.run_dir.root}",
            f"canonical report: {runtime.run_dir.report_path}",
            f"wall-clock telemetry: {runtime.run_dir.telemetry_path}",
        ],
    )


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignReport

    with open(args.report) as handle:
        report = CampaignReport.from_json(handle.read())
    print(report.render())
    return 0


def _cmd_defense_sweep(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec
    from repro.defense import run_defense_arena

    spec = CampaignSpec(
        boards=args.boards,
        victims=args.victims,
        model_mix=tuple(args.models.split(",")),
        tenants_per_board=args.tenants,
        wave_size=args.wave_size,
        seed=args.seed,
        input_hw=args.input_hw,
    )
    matrix = run_defense_arena(
        spec,
        profiles=tuple(args.profiles.split(",")),
        scrape_delay_ticks=args.delay_ticks,
        weight_theft=not args.no_weight_theft,
    )
    print(matrix.render_markdown() if args.markdown else matrix.render())
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(matrix.to_json() + "\n")
        print(f"\nwrote matrix to {args.output}")
    return 0


def _cmd_defense_report(args: argparse.Namespace) -> int:
    from repro.defense import DefenseMatrix

    with open(args.matrix) as handle:
        matrix = DefenseMatrix.from_json(handle.read())
    print(matrix.render_markdown() if args.markdown else matrix.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory Scraping Attack on Xilinx FPGAs (DATE 2024) "
        "— simulation and reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the end-to-end attack")
    _add_common_options(demo)
    demo.add_argument("--model", default="resnet50_pt", help="victim model")
    demo.set_defaults(func=_cmd_demo)

    figures = subparsers.add_parser("figures", help="regenerate Figs. 4-12")
    _add_common_options(figures)
    figures.set_defaults(func=_cmd_figures)

    defenses = subparsers.add_parser("defenses", help="defense ablation matrix")
    _add_common_options(defenses)
    defenses.set_defaults(func=_cmd_defenses)

    zoo = subparsers.add_parser("zoo", help="list the model library")
    _add_common_options(zoo)
    zoo.set_defaults(func=_cmd_zoo)

    boards = subparsers.add_parser("boards", help="list evaluation boards")
    boards.set_defaults(func=_cmd_boards)

    profile = subparsers.add_parser(
        "profile", help="offline-profile models, emit JSON notebook"
    )
    _add_common_options(profile)
    profile.add_argument(
        "models", nargs="+", help="model names to profile"
    )
    profile.add_argument(
        "-o", "--output", default="-", help="output path (default: stdout)"
    )
    profile.set_defaults(func=_cmd_profile)

    campaign = subparsers.add_parser(
        "campaign", help="fleet-scale multi-board campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="run a multi-board, multi-victim campaign"
    )
    campaign_run.add_argument(
        "--boards", type=int, default=4, help="fleet size (default: 4)"
    )
    campaign_run.add_argument(
        "--victims", type=int, default=8, help="victim count (default: 8)"
    )
    campaign_run.add_argument(
        "--models",
        default="resnet50_pt,squeezenet_pt,inception_v1_tf",
        help="comma-separated model mix",
    )
    campaign_run.add_argument(
        "--board-mix",
        default="ZCU104,ZCU102",
        help="comma-separated board specs the fleet cycles through",
    )
    campaign_run.add_argument(
        "--tenants", type=int, default=2, help="tenants per board (default: 2)"
    )
    campaign_run.add_argument(
        "--wave-size",
        type=int,
        default=2,
        help="co-resident victims per board wave (default: 2)",
    )
    campaign_run.add_argument(
        "--seed", type=int, default=0, help="scheduler seed (default: 0)"
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads (default: one per board)",
    )
    campaign_run.add_argument(
        "--word-reads",
        action="store_true",
        help="scrape word-at-a-time like the paper (default: coalesced)",
    )
    campaign_run.add_argument(
        "--input-hw", type=int, default=32, help="square input edge (default: 32)"
    )
    campaign_run.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "inprocess", "multiprocess"),
        help="board placement: threads, a multiprocessing pool, or auto "
        "(processes for fleets of 8+ boards)",
    )
    campaign_run.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes for the multiprocess executor "
        "(default: one per CPU)",
    )
    campaign_run.add_argument(
        "--run-dir",
        default=None,
        help="make the run checkpointable: journal outcomes, spool dumps, "
        "and write the canonical report under this directory",
    )
    campaign_run.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help="continue an interrupted checkpointable run; the campaign "
        "spec comes from RUN_DIR/spec.json and spec flags are ignored",
    )
    campaign_run.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="fault-injection drill: crash (exit 3) once N outcomes are "
        "journaled, leaving a resumable run directory",
    )
    campaign_run.add_argument(
        "-o", "--output", default=None, help="also write the report as JSON"
    )
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_report = campaign_sub.add_parser(
        "report", help="re-render a saved campaign report"
    )
    campaign_report.add_argument("report", help="path to a campaign JSON report")
    campaign_report.set_defaults(func=_cmd_campaign_report)

    defense = subparsers.add_parser(
        "defense", help="attack/defense arena over fleet campaigns"
    )
    defense_sub = defense.add_subparsers(dest="defense_command", required=True)

    defense_sweep = defense_sub.add_parser(
        "sweep", help="run the campaign under each hardening profile"
    )
    defense_sweep.add_argument(
        "--profiles",
        default="none,zero_on_free,scrub_pool,aslr,pinned_xen",
        help="comma-separated profiles; compose axes with '+' "
        "(e.g. scrub_pool+pinned_xen)",
    )
    defense_sweep.add_argument(
        "--boards", type=int, default=2, help="fleet size (default: 2)"
    )
    defense_sweep.add_argument(
        "--victims", type=int, default=4, help="victim count (default: 4)"
    )
    defense_sweep.add_argument(
        "--models",
        default="resnet50_pt,squeezenet_pt,inception_v1_tf",
        help="comma-separated model mix",
    )
    defense_sweep.add_argument(
        "--tenants", type=int, default=2, help="tenants per board (default: 2)"
    )
    defense_sweep.add_argument(
        "--wave-size",
        type=int,
        default=2,
        help="co-resident victims per board wave (default: 2)",
    )
    defense_sweep.add_argument(
        "--seed", type=int, default=0, help="scheduler seed (default: 0)"
    )
    defense_sweep.add_argument(
        "--delay-ticks",
        type=int,
        default=2,
        help="attacker latency in scheduler ticks between wave teardown "
        "and scrape (default: 2)",
    )
    defense_sweep.add_argument(
        "--no-weight-theft",
        action="store_true",
        help="skip the fine-tuned weight-theft probe",
    )
    defense_sweep.add_argument(
        "--markdown", action="store_true", help="render a markdown table"
    )
    defense_sweep.add_argument(
        "--input-hw", type=int, default=32, help="square input edge (default: 32)"
    )
    defense_sweep.add_argument(
        "-o", "--output", default=None, help="also write the matrix as JSON"
    )
    defense_sweep.set_defaults(func=_cmd_defense_sweep)

    defense_report = defense_sub.add_parser(
        "report", help="re-render a saved defense matrix"
    )
    defense_report.add_argument("matrix", help="path to a matrix JSON file")
    defense_report.add_argument(
        "--markdown", action="store_true", help="render a markdown table"
    )
    defense_report.set_defaults(func=_cmd_defense_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved Unix tools.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
