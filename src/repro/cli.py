"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the evaluation entry points:

- ``demo``      — run the paper's end-to-end attack and print the report
- ``figures``   — regenerate Figs. 4-12 with claim checks
- ``defenses``  — the defense ablation matrix
- ``zoo``       — list the model library (name, framework, weights)
- ``boards``    — list the supported evaluation boards
- ``profile``   — run offline profiling and emit the JSON notebook
- ``campaign``  — fleet-scale orchestration: ``campaign run`` executes a
  multi-board, multi-victim campaign (``--executor multiprocess``
  shards boards across worker processes; ``--run-dir`` makes the run
  checkpointable and ``--resume`` continues an interrupted one);
  ``campaign report`` re-renders a saved JSON report;
  ``campaign serve`` / ``campaign work`` distribute one campaign
  across hosts — the coordinator leases board shards over TCP,
  workers claim and run them, and the report stays byte-identical
  to a single-host run (see ``docs/distributed.md``)
- ``defense``   — the attack/defense arena: ``defense sweep`` runs the
  fleet campaign under each hardening profile and prints the
  leakage-vs-overhead matrix; ``defense report`` re-renders a saved
  matrix (``defenses`` above is the older single-board ablation)
- ``fuzz``      — the generative scenario fuzzer: ``fuzz run`` samples
  whole campaign worlds from a seed, drives each through the real
  attack stack, and holds every run to the differential-oracle
  registry (failures are shrunk and written as replayable JSON
  seeds); ``fuzz replay`` re-runs saved seeds — the regression-corpus
  workflow (see ``docs/testing.md``)
- ``explore``   — search-guided scenario exploration: ``explore attack``
  evolves attacker-strategy genomes under a chosen fitness (residue,
  window, weights) against one or more defense profiles and prints
  the ranked frontier (``--elites DIR`` exports champions as
  replayable fuzz corpus seeds); ``explore defenses`` sweeps the full
  defense-configuration space against one fixed attacker and flags
  the non-dominated leakage-vs-overhead Pareto frontier — both
  frontiers are byte-deterministic per seed (see
  ``docs/exploration.md``)
- ``analyze``   — batch-analyze raw dump files (simulated or externally
  captured) against a mined signature database: region map, residue,
  entropy, model attribution — no board, no simulation
- ``serve``     — long-lived daemons: ``serve analysis`` runs the
  ingest service — newline-JSON dump uploads (content-addressed,
  deduplicated), analysis jobs with per-tenant quotas and explicit
  backpressure, and streaming report deltas; SIGTERM drains cleanly
  (see ``docs/service.md``)

Exit codes, uniformly: 0 = success, 1 = the requested work ran but
found failures (attack failed, figure claims broke, campaign victims
failed, fuzz oracles fired), 2 = usage or input error (bad flags,
malformed or missing files), 3 = a checkpointable campaign was
interrupted and can be resumed, 4 = a fabric worker's retry budget
ran out (the coordinator stayed unreachable past the ``--retry-*``
bounds — the worker gave up deliberately; restart the coordinator
with ``campaign serve --resume`` and re-run the worker).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.evaluation.figures import generate_all_figures, render_figure_report
from repro.evaluation.scenarios import BoardSession, run_paper_attack
from repro.hw.board import BOARDS, board_by_name


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--input-hw",
        type=int,
        default=32,
        help="square input edge in pixels (default: 32)",
    )
    parser.add_argument(
        "--board",
        default="ZCU104",
        choices=sorted(BOARDS),
        help="evaluation board (default: ZCU104)",
    )


def _usage_error(message: object) -> int:
    """Print one usage/input failure and return the documented exit 2."""
    print(message, file=sys.stderr)
    return 2


def _load_artifact(path: str, from_json, noun: str):
    """Read + parse a saved JSON artifact; ``(obj, None)`` on success.

    Any failure — unreadable file, bad JSON, JSON of the wrong shape —
    becomes ``(None, 2)`` with one clean message, so every re-render
    command shares the documented exit-2 contract.
    """
    import json

    try:
        with open(path) as handle:
            return from_json(handle.read()), None
    except OSError as error:
        return None, _usage_error(error)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        return None, _usage_error(f"{path}: not a {noun} ({error})")


def _write_artifact(path: str, text: str, label: str) -> int | None:
    """Write an output file; ``None`` on success, exit 2 on OS errors.

    Output paths are user input too — a typo'd ``-o`` directory must
    not surface as a traceback after the work already ran.
    """
    try:
        with open(path, "w") as handle:
            handle.write(text)
    except OSError as error:
        return _usage_error(error)
    print(f"wrote {label} to {path}")
    return None


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.errors import UnknownModelError

    session = BoardSession.boot(
        board=board_by_name(args.board), input_hw=args.input_hw
    )
    try:
        outcome = run_paper_attack(session, victim_model=args.model)
    except UnknownModelError as error:
        return _usage_error(error)
    print(outcome.report.render())
    print()
    if outcome.fidelity is not None:
        print(
            f"reconstruction fidelity: "
            f"{outcome.fidelity.pixel_match_rate:.1%} pixel match"
        )
    return 0 if outcome.model_identified_correctly else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    figures = generate_all_figures(input_hw=args.input_hw)
    print(render_figure_report(figures))
    failing = [
        figure_id
        for figure_id, artifact in figures.items()
        if not artifact.all_claims_hold
    ]
    if failing:
        print(f"\nFAILING figures: {failing}", file=sys.stderr)
        return 1
    print(f"\nall {len(figures)} figures reproduced.")
    return 0


def _cmd_defenses(args: argparse.Namespace) -> int:
    from repro.evaluation.scenarios import attack_under_config
    from repro.petalinux.kernel import KernelConfig
    from repro.petalinux.sanitizer import SanitizePolicy

    configs = [
        ("vulnerable-default", KernelConfig()),
        (
            "zero-on-free",
            KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
        ),
        ("pagemap-lockdown", KernelConfig(pagemap_world_readable=False)),
        ("strict-devmem", KernelConfig(devmem_unrestricted=False)),
        ("fully-hardened", KernelConfig().hardened()),
    ]
    print(f"{'config':<22} {'steps':<6} {'stopped at':<26} leaked?")
    for label, config in configs:
        outcome = attack_under_config(config, label, input_hw=args.input_hw)
        print(
            f"{label:<22} {outcome.steps_completed:<6} "
            f"{outcome.failed_step or '-':<26} "
            f"{'YES' if outcome.attack_succeeded else 'no'}"
        )
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.vitis.zoo import MODEL_NAMES, build_model

    print(f"{'model':<18} {'framework':<12} {'layers':<7} weight bytes")
    for name in MODEL_NAMES:
        model = build_model(name, input_hw=args.input_hw)
        print(
            f"{name:<18} {model.framework:<12} "
            f"{len(model.subgraph.layers):<7} {model.weight_nbytes()}"
        )
    return 0


def _cmd_boards(args: argparse.Namespace) -> int:
    del args
    for name in sorted(BOARDS):
        print(BOARDS[name].describe())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import UnknownModelError

    session = BoardSession.boot(
        board=board_by_name(args.board), input_hw=args.input_hw
    )
    try:
        profiles = session.profile(args.models)
    except UnknownModelError as error:
        return _usage_error(error)
    text = profiles.to_json()
    if args.output == "-":
        print(text)
        return 0
    status = _write_artifact(
        args.output, text + "\n", f"{len(args.models)} profiles"
    )
    return status if status is not None else 0


def _emit_campaign_report(report, output: str | None, extra: list[str]) -> int:
    """Render a campaign report, honor ``-o``, map failures to exit 1."""
    print(report.render())
    for line in extra:
        print(line)
    if output is not None:
        status = _write_artifact(output, report.to_json() + "\n", "report")
        if status is not None:
            return status
    return 0 if not report.failures() else 1


def _spec_from_args(args: argparse.Namespace):
    """Build a CampaignSpec from the shared spec-shaped flags.

    Raises ``ValueError`` for impossible values (zero boards, an
    unknown model in the mix, ...) — callers map it to exit 2.
    """
    from repro.campaign import CampaignSpec

    return CampaignSpec(
        boards=args.boards,
        victims=args.victims,
        model_mix=tuple(args.models.split(",")),
        tenants_per_board=args.tenants,
        wave_size=args.wave_size,
        seed=args.seed,
        input_hw=args.input_hw,
        board_names=tuple(args.board_mix.split(",")),
        max_workers=args.workers,
        coalesce_reads=not args.word_reads,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRuntime, run_campaign
    from repro.errors import CampaignInterrupted

    if args.run_dir is not None and args.resume is not None:
        return _usage_error(
            "--run-dir and --resume are mutually exclusive: a resumed "
            "run already has its run directory"
        )
    if args.interrupt_after is not None and not (args.run_dir or args.resume):
        return _usage_error(
            "--interrupt-after needs a checkpointable run "
            "(--run-dir or --resume)"
        )
    if args.processes is not None and args.processes < 1:
        return _usage_error(
            f"--processes must be a positive worker count, "
            f"got {args.processes}"
        )
    if args.resume is not None:
        # The spec comes from the run directory; spec-shaped flags on
        # the command line are ignored.
        try:
            runtime = CampaignRuntime.resume(
                args.resume,
                executor=args.executor,
                processes=args.processes,
                interrupt_after=args.interrupt_after,
            )
        except (FileNotFoundError, ValueError) as error:
            # Missing directory, or a spec.json with a bad/foreign format.
            print(error, file=sys.stderr)
            return 2
    else:
        try:
            spec = _spec_from_args(args)
        except ValueError as error:
            return _usage_error(error)
        if args.run_dir is None:
            report = run_campaign(
                spec, executor=args.executor, processes=args.processes
            )
            return _emit_campaign_report(report, args.output, extra=[])
        try:
            runtime = CampaignRuntime(
                spec,
                args.run_dir,
                executor=args.executor,
                processes=args.processes,
                interrupt_after=args.interrupt_after,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    try:
        report = runtime.run()
    except CampaignInterrupted as interruption:
        print(f"INTERRUPTED: {interruption}", file=sys.stderr)
        print(
            f"journal: {runtime.run_dir.journal_path}",
            file=sys.stderr,
        )
        return 3
    return _emit_campaign_report(
        report,
        args.output,
        extra=[
            f"\nrun directory: {runtime.run_dir.root}",
            f"canonical report: {runtime.run_dir.report_path}",
            f"wall-clock telemetry: {runtime.run_dir.telemetry_path}",
        ],
    )


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignReport

    report, status = _load_artifact(
        args.report, CampaignReport.from_json, "campaign report"
    )
    if status is not None:
        return status
    print(report.render())
    return 0


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    from repro.campaign.runtime.fabric import FabricCoordinator
    from repro.errors import FabricError

    if args.run_dir is not None and args.resume is not None:
        return _usage_error(
            "--run-dir and --resume are mutually exclusive: a resumed "
            "run already has its run directory"
        )
    if args.run_dir is None and args.resume is None:
        return _usage_error(
            "a distributed run is always checkpointable: pass --run-dir "
            "for a fresh campaign or --resume for an interrupted one"
        )
    if args.resume is not None:
        try:
            coordinator = FabricCoordinator.resume(
                args.resume,
                lease_ttl=args.lease_ttl,
                defense_profile=args.profile,
            )
        except (FileNotFoundError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
    else:
        try:
            spec = _spec_from_args(args)
        except ValueError as error:
            return _usage_error(error)
        try:
            coordinator = FabricCoordinator(
                spec,
                args.run_dir,
                lease_ttl=args.lease_ttl,
                defense_profile=args.profile,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    host, port = coordinator.serve(args.host, args.port)
    # Workers (and the smoke harness) parse this line for the port.
    print(f"fabric coordinator listening on {host}:{port}", flush=True)
    try:
        report = coordinator.run_until_complete(timeout=args.timeout)
    except FabricError as error:
        print(f"INTERRUPTED: {error}", file=sys.stderr)
        print(
            f"journal: {coordinator.run_dir.journal_path}",
            file=sys.stderr,
        )
        return 3
    finally:
        coordinator.close()
    return _emit_campaign_report(
        report,
        args.output,
        extra=[
            f"\nrun directory: {coordinator.run_dir.root}",
            f"canonical report: {coordinator.run_dir.report_path}",
            f"wall-clock telemetry: {coordinator.run_dir.telemetry_path}",
        ],
    )


def _cmd_campaign_work(args: argparse.Namespace) -> int:
    from repro.campaign.runtime.fabric import FabricWorker
    from repro.errors import FabricError, RetryExhaustedError
    from repro.utils.resilience import RetryPolicy

    host, _, port_text = args.coordinator.rpartition(":")
    if not host or not port_text.isdigit():
        return _usage_error(
            f"coordinator address must be HOST:PORT, got {args.coordinator!r}"
        )
    try:
        retry_policy = RetryPolicy(
            max_attempts=args.retry_attempts,
            base_delay=args.retry_base,
            max_delay=args.retry_cap,
            deadline=args.retry_budget,
        )
    except ValueError as error:
        return _usage_error(error)
    worker = FabricWorker(
        host,
        int(port_text),
        worker_id=args.name,
        spool_dir=args.spool_dir,
        poll_interval=None if args.no_wait else args.poll_interval,
        die_after_waves=args.die_after_waves,
        retry_policy=retry_policy,
    )
    try:
        stats = worker.run()
    except RetryExhaustedError as error:
        print(f"RETRY BUDGET EXHAUSTED: {error}", file=sys.stderr)
        print(
            "the coordinator stayed unreachable; restart it with "
            "`repro campaign serve --resume <run-dir>` and re-run "
            "this worker",
            file=sys.stderr,
        )
        return 4
    except (FabricError, OSError) as error:
        print(f"fabric worker failed: {error}", file=sys.stderr)
        return 2
    print(
        f"worker {stats['worker']}: "
        f"{len(stats['boards_completed'])} board(s) completed "
        f"{stats['boards_completed']}, {stats['waves_sent']} wave(s), "
        f"{stats['outcomes_sent']} outcome(s), "
        f"{stats['dumps_uploaded']} dump(s) uploaded"
    )
    if stats["reconnects"]:
        print(
            f"self-healed through {stats['reconnects']} reconnect(s), "
            f"{stats['replays']} replayed op(s), "
            f"{stats['heartbeat_failures']} heartbeat failure(s)"
        )
    if stats["died"]:
        print(
            "DIED: scripted fault fired mid-board; the coordinator "
            "re-leases the shard after the lease deadline",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_defense_sweep(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec
    from repro.defense import run_defense_arena

    # A duplicated profile would either run twice (same row, twice the
    # wall clock) or trip the arena's duplicate guard; dedupe
    # order-preservingly, warn, and sweep each profile exactly once.
    profiles = _dedupe_profiles(args.profiles)
    try:
        spec = CampaignSpec(
            boards=args.boards,
            victims=args.victims,
            model_mix=tuple(args.models.split(",")),
            tenants_per_board=args.tenants,
            wave_size=args.wave_size,
            seed=args.seed,
            input_hw=args.input_hw,
        )
        matrix = run_defense_arena(
            spec,
            profiles=profiles,
            scrape_delay_ticks=args.delay_ticks,
            weight_theft=not args.no_weight_theft,
        )
    except ValueError as error:
        # Bad spec values, an unknown profile name, or conflicting
        # '+'-composed axes.
        return _usage_error(error)
    print(matrix.render_markdown() if args.markdown else matrix.render())
    if args.output is not None:
        print()
        status = _write_artifact(args.output, matrix.to_json() + "\n", "matrix")
        if status is not None:
            return status
    return 0


def _cmd_defense_report(args: argparse.Namespace) -> int:
    from repro.defense import DefenseMatrix

    matrix, status = _load_artifact(
        args.matrix, DefenseMatrix.from_json, "defense matrix"
    )
    if status is not None:
        return status
    print(matrix.render_markdown() if args.markdown else matrix.render())
    return 0


def _dedupe_profiles(raw: str) -> tuple[str, ...]:
    """Split a ``--profiles a,b`` flag, dropping duplicates with a
    warning (order-preserving) — shared by sweep and explore lanes."""
    requested = tuple(name.strip() for name in raw.split(","))
    profiles = tuple(dict.fromkeys(requested))
    if len(profiles) != len(requested):
        dropped = sorted(
            name for name in set(requested) if requested.count(name) > 1
        )
        print(
            f"warning: duplicate profile(s) in --profiles "
            f"({', '.join(dropped)}); sweeping each once",
            file=sys.stderr,
        )
    return profiles


def _cmd_explore_attack(args: argparse.Namespace) -> int:
    from repro.explore import (
        EvolutionConfig,
        attack_report,
        evolve,
        export_elites,
    )

    profiles = _dedupe_profiles(args.profiles)
    try:
        configs = {
            profile: EvolutionConfig(
                seed=args.seed,
                population=args.population,
                generations=args.generations,
                elites=args.keep_elites,
                tournament=args.tournament,
                crossover_rate=args.crossover_rate,
                mutation_rate=args.mutation_rate,
                fitness=args.fitness,
                profile=profile,
                input_hw=args.input_hw,
            )
            for profile in profiles
        }
        results = {}
        for profile, config in configs.items():
            result = evolve(config)
            results[profile] = result
            print(
                f"profile {profile}: best={result.best[0]:g} "
                f"evaluations={result.evaluations} "
                f"(cache hits {result.cache_hits})",
                file=sys.stderr,
            )
    except ValueError as error:
        # Bad evolution parameters or an unknown profile name.
        return _usage_error(error)
    report = attack_report(
        results,
        seed=args.seed,
        params={
            "population": args.population,
            "generations": args.generations,
            "elites": args.keep_elites,
            "tournament": args.tournament,
            "crossover_rate": args.crossover_rate,
            "mutation_rate": args.mutation_rate,
            "profiles": list(profiles),
            "input_hw": args.input_hw,
        },
    )
    print(report.render_markdown() if args.markdown else report.render())
    if args.elites is not None:
        try:
            paths = export_elites(
                report, args.elites, input_hw=args.input_hw
            )
        except OSError as error:
            return _usage_error(error)
        print(f"exported {len(paths)} elite seed(s) to {args.elites}")
    if args.output is not None:
        status = _write_artifact(
            args.output, report.to_json() + "\n", "frontier report"
        )
        if status is not None:
            return status
    return 0


def _cmd_explore_defenses(args: argparse.Namespace) -> int:
    from repro.explore import AttackGenome, defense_report, sweep_defense_space

    try:
        scrub_rates = tuple(
            int(rate) for rate in args.scrub_rates.split(",")
        )
        genome = AttackGenome(
            boards=args.boards,
            victims=args.victims,
            wave_size=args.wave_size,
            tenants_per_board=args.tenants,
            model_mix=tuple(sorted(args.models.split(","))),
            coalesce_reads=not args.no_coalesce,
            delay_ticks=args.delay_ticks,
            carve_window=args.carve_window,
            corruption=args.corruption,
            seed=args.seed,
        )
        points = sweep_defense_space(
            genome, input_hw=args.input_hw, scrub_rates=scrub_rates
        )
    except ValueError as error:
        # Genome fields outside their gene pools, malformed
        # --scrub-rates, or invalid rates.
        return _usage_error(error)
    report = defense_report(
        points,
        seed=args.seed,
        params={
            "attacker": genome.label(),
            "input_hw": args.input_hw,
            "scrub_rates": list(scrub_rates),
        },
    )
    print(report.render_markdown() if args.markdown else report.render())
    if args.output is not None:
        status = _write_artifact(
            args.output, report.to_json() + "\n", "frontier report"
        )
        if status is not None:
            return status
    return 0


def _resolve_oracles(raw: str | None) -> tuple[str, ...] | None:
    """Parse a ``--oracles a,b`` flag; raises ValueError on unknowns."""
    from repro.fuzzlab import oracle_names

    if raw is None:
        return None
    requested = tuple(name.strip() for name in raw.split(",") if name.strip())
    unknown = sorted(set(requested) - set(oracle_names()))
    if not requested or unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown or [raw]}; known: "
            f"{', '.join(oracle_names())}"
        )
    return requested


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzzlab import run_fuzz, save_scenario, shrink

    if args.budget < 1:
        return _usage_error(
            f"--budget must be a positive scenario count, got {args.budget}"
        )
    if args.shrink_reruns < 1:
        return _usage_error(
            f"--shrink-reruns must be a positive re-execution count, "
            f"got {args.shrink_reruns}"
        )
    try:
        oracles = _resolve_oracles(args.oracles)
    except ValueError as error:
        return _usage_error(error)

    def progress(verdict) -> None:
        status = "ok  " if verdict.ok else "FAIL"
        print(f"{status} {verdict.scenario.label()}")

    report = run_fuzz(
        budget=args.budget,
        seed=args.seed,
        oracles=oracles,
        on_verdict=progress if not args.quiet else None,
    )
    print()
    print(report.render())
    if args.output is not None:
        status = _write_artifact(
            args.output, report.to_json() + "\n", "fuzz report"
        )
        if status is not None:
            return status
    if report.ok:
        return 0
    if not args.no_shrink:
        for verdict in report.failures():
            result = shrink(
                verdict.scenario,
                oracles=oracles,
                max_reruns=args.shrink_reruns,
                verdict=verdict,
            )
            try:
                seed_path = save_scenario(
                    result.scenario,
                    f"{args.artifacts}/scenario-"
                    f"{result.scenario.scenario_id}.json",
                    note=(
                        f"shrunk from fuzz seed {args.seed} "
                        f"scenario {verdict.scenario.scenario_id}; violates "
                        f"{', '.join(result.verdict.violated_oracles)}"
                    ),
                )
            except OSError as error:
                # The violations above are already reported; a broken
                # --artifacts path must not become a traceback now.
                return _usage_error(error)
            print(
                f"\nshrunk scenario {verdict.scenario.scenario_id} in "
                f"{result.reruns} rerun(s) "
                f"({' '.join(result.steps) or 'already minimal'})"
            )
            print(f"  -> {seed_path}")
            print(f"  replay: python -m repro fuzz replay {seed_path}")
    return 1


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzzlab import replay

    try:
        oracles = _resolve_oracles(args.oracles)
        results = replay(args.seeds, oracles=oracles)
    except (FileNotFoundError, ValueError) as error:
        return _usage_error(error)
    if not results:
        return _usage_error(f"no seed files under: {', '.join(args.seeds)}")
    failures = 0
    for seed_path, verdict in results:
        status = "ok  " if verdict.ok else "FAIL"
        print(f"{status} {seed_path} — {verdict.scenario.label()}")
        for violation in verdict.violations:
            failures += 1
            print(f"     [{violation.oracle}] {violation.message}")
    print(
        f"\n{len(results)} seed(s) replayed, "
        f"{sum(1 for _, v in results if not v.ok)} violating"
    )
    return 1 if failures else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.service.analysis import (
        CARVE_PRESETS,
        AnalysisConfig,
        AnalysisReport,
        analyze_dump,
        mine_database,
    )

    if not 0.0 <= args.min_score <= 1.0:
        return _usage_error(
            f"--min-score must be in [0, 1], got {args.min_score}"
        )
    try:
        database = mine_database(
            tuple(args.models.split(",")), args.input_hw
        )
    except ValueError as error:
        return _usage_error(error)
    config = AnalysisConfig(
        database=database,
        carve=CARVE_PRESETS[args.carve],
        min_score=args.min_score,
    )
    report = AnalysisReport()
    for path in args.dumps:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            return _usage_error(error)
        report.add(analyze_dump(data, config))
    print(report.render())
    if args.output is not None:
        status = _write_artifact(
            args.output, report.to_json(), "analysis report"
        )
        if status is not None:
            return status
    return 0


def _cmd_serve_analysis(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.service.daemon import AnalysisService, serve_forever

    if not 0.0 <= args.min_score <= 1.0:
        return _usage_error(
            f"--min-score must be in [0, 1], got {args.min_score}"
        )
    spool_dir = args.spool_dir or tempfile.mkdtemp(prefix="repro-service-")
    try:
        service = AnalysisService(
            spool_dir,
            tuple(args.models.split(",")),
            args.input_hw,
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            min_score=args.min_score,
        )
    except ValueError as error:
        return _usage_error(error)

    def on_listening(host: str, port: int) -> None:
        # Clients (and the smoke harness) parse this line for the port.
        print(f"analysis service listening on {host}:{port}", flush=True)

    report = asyncio.run(serve_forever(service, on_listening=on_listening))
    print(f"drained: {len(report)} dump analysis(es) aggregated")
    print(report.render())
    if args.output is not None:
        status = _write_artifact(
            args.output, report.to_json(), "analysis report"
        )
        if status is not None:
            return status
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory Scraping Attack on Xilinx FPGAs (DATE 2024) "
        "— simulation and reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the end-to-end attack")
    _add_common_options(demo)
    demo.add_argument("--model", default="resnet50_pt", help="victim model")
    demo.set_defaults(func=_cmd_demo)

    figures = subparsers.add_parser("figures", help="regenerate Figs. 4-12")
    _add_common_options(figures)
    figures.set_defaults(func=_cmd_figures)

    defenses = subparsers.add_parser("defenses", help="defense ablation matrix")
    _add_common_options(defenses)
    defenses.set_defaults(func=_cmd_defenses)

    zoo = subparsers.add_parser("zoo", help="list the model library")
    _add_common_options(zoo)
    zoo.set_defaults(func=_cmd_zoo)

    boards = subparsers.add_parser("boards", help="list evaluation boards")
    boards.set_defaults(func=_cmd_boards)

    profile = subparsers.add_parser(
        "profile", help="offline-profile models, emit JSON notebook"
    )
    _add_common_options(profile)
    profile.add_argument(
        "models", nargs="+", help="model names to profile"
    )
    profile.add_argument(
        "-o", "--output", default="-", help="output path (default: stdout)"
    )
    profile.set_defaults(func=_cmd_profile)

    campaign = subparsers.add_parser(
        "campaign", help="fleet-scale multi-board campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_spec_flags(parser: argparse.ArgumentParser) -> None:
        # The spec-shaped flags every campaign entry point shares
        # (`campaign run` and `campaign serve` must accept identical
        # specs — the byte-identity contract compares their reports).
        parser.add_argument(
            "--boards", type=int, default=4, help="fleet size (default: 4)"
        )
        parser.add_argument(
            "--victims", type=int, default=8, help="victim count (default: 8)"
        )
        parser.add_argument(
            "--models",
            default="resnet50_pt,squeezenet_pt,inception_v1_tf",
            help="comma-separated model mix",
        )
        parser.add_argument(
            "--board-mix",
            default="ZCU104,ZCU102",
            help="comma-separated board specs the fleet cycles through",
        )
        parser.add_argument(
            "--tenants",
            type=int,
            default=2,
            help="tenants per board (default: 2)",
        )
        parser.add_argument(
            "--wave-size",
            type=int,
            default=2,
            help="co-resident victims per board wave (default: 2)",
        )
        parser.add_argument(
            "--seed", type=int, default=0, help="scheduler seed (default: 0)"
        )
        parser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker threads (default: one per board)",
        )
        parser.add_argument(
            "--word-reads",
            action="store_true",
            help="scrape word-at-a-time like the paper (default: coalesced)",
        )
        parser.add_argument(
            "--input-hw",
            type=int,
            default=32,
            help="square input edge (default: 32)",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="run a multi-board, multi-victim campaign"
    )
    add_spec_flags(campaign_run)
    campaign_run.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "inprocess", "multiprocess"),
        help="board placement: threads, a multiprocessing pool, or auto "
        "(processes for fleets of 8+ boards)",
    )
    campaign_run.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes for the multiprocess executor "
        "(default: one per CPU)",
    )
    campaign_run.add_argument(
        "--run-dir",
        default=None,
        help="make the run checkpointable: journal outcomes, spool dumps, "
        "and write the canonical report under this directory",
    )
    campaign_run.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help="continue an interrupted checkpointable run; the campaign "
        "spec comes from RUN_DIR/spec.json and spec flags are ignored",
    )
    campaign_run.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="fault-injection drill: crash (exit 3) once N outcomes are "
        "journaled, leaving a resumable run directory",
    )
    campaign_run.add_argument(
        "-o", "--output", default=None, help="also write the report as JSON"
    )
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_report = campaign_sub.add_parser(
        "report", help="re-render a saved campaign report"
    )
    campaign_report.add_argument("report", help="path to a campaign JSON report")
    campaign_report.set_defaults(func=_cmd_campaign_report)

    campaign_serve = campaign_sub.add_parser(
        "serve",
        help="coordinate a distributed campaign: lease board shards "
        "to fabric workers and write the canonical report",
    )
    add_spec_flags(campaign_serve)
    campaign_serve.add_argument(
        "--run-dir",
        default=None,
        help="journal, spool, and report live here (distributed runs "
        "are always checkpointable)",
    )
    campaign_serve.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help="re-serve an interrupted distributed run; completed boards "
        "are reused from RUN_DIR's journal and spec flags are ignored",
    )
    campaign_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to listen on (default: 127.0.0.1)",
    )
    campaign_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = ephemeral; the bound port is printed)",
    )
    campaign_serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat deadline: a board lease silent this long is "
        "reclaimed and re-issued (default: 30)",
    )
    campaign_serve.add_argument(
        "--profile",
        default=None,
        help="harden the fleet under this defense profile (workers "
        "rebuild the kernel config from the name)",
    )
    campaign_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up (exit 3, resumable) if the campaign has not "
        "completed in this long (default: wait forever)",
    )
    campaign_serve.add_argument(
        "-o", "--output", default=None, help="also write the report as JSON"
    )
    campaign_serve.set_defaults(func=_cmd_campaign_serve)

    campaign_work = campaign_sub.add_parser(
        "work",
        help="claim and run board shards for a fabric coordinator",
    )
    campaign_work.add_argument(
        "coordinator",
        metavar="HOST:PORT",
        help="address a `repro campaign serve` coordinator printed",
    )
    campaign_work.add_argument(
        "--name",
        default=None,
        help="worker id shown in coordinator telemetry "
        "(default: hostname-pid)",
    )
    campaign_work.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="how often to re-ask for work while every board is leased "
        "out (default: 0.5)",
    )
    campaign_work.add_argument(
        "--no-wait",
        action="store_true",
        help="exit as soon as no lease is claimable instead of polling "
        "until the campaign completes",
    )
    campaign_work.add_argument(
        "--spool-dir",
        default=None,
        help="local scratch spool for dumps before upload "
        "(default: a temp directory)",
    )
    campaign_work.add_argument(
        "--die-after-waves",
        type=int,
        default=None,
        metavar="N",
        help="fault-injection drill: die mid-board (exit 3) after "
        "shipping N waves, leaving the lease to expire and re-issue",
    )
    campaign_work.add_argument(
        "--retry-attempts",
        type=int,
        default=6,
        metavar="N",
        help="max tries per fabric op before giving up with exit 4 "
        "(connection loss and coordinator restarts are retried with "
        "exponential backoff; default: 6)",
    )
    campaign_work.add_argument(
        "--retry-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="first-retry backoff; doubles per attempt (default: 0.5)",
    )
    campaign_work.add_argument(
        "--retry-cap",
        type=float,
        default=8.0,
        metavar="SECONDS",
        help="ceiling on any single backoff delay (default: 8)",
    )
    campaign_work.add_argument(
        "--retry-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="total wall-clock budget per retried op; a retry that "
        "would overshoot it exits 4 instead (default: unbounded)",
    )
    campaign_work.set_defaults(func=_cmd_campaign_work)

    defense = subparsers.add_parser(
        "defense", help="attack/defense arena over fleet campaigns"
    )
    defense_sub = defense.add_subparsers(dest="defense_command", required=True)

    defense_sweep = defense_sub.add_parser(
        "sweep", help="run the campaign under each hardening profile"
    )
    defense_sweep.add_argument(
        "--profiles",
        default="none,zero_on_free,scrub_pool,aslr,pinned_xen",
        help="comma-separated profiles; compose axes with '+' "
        "(e.g. scrub_pool+pinned_xen)",
    )
    defense_sweep.add_argument(
        "--boards", type=int, default=2, help="fleet size (default: 2)"
    )
    defense_sweep.add_argument(
        "--victims", type=int, default=4, help="victim count (default: 4)"
    )
    defense_sweep.add_argument(
        "--models",
        default="resnet50_pt,squeezenet_pt,inception_v1_tf",
        help="comma-separated model mix",
    )
    defense_sweep.add_argument(
        "--tenants", type=int, default=2, help="tenants per board (default: 2)"
    )
    defense_sweep.add_argument(
        "--wave-size",
        type=int,
        default=2,
        help="co-resident victims per board wave (default: 2)",
    )
    defense_sweep.add_argument(
        "--seed", type=int, default=0, help="scheduler seed (default: 0)"
    )
    defense_sweep.add_argument(
        "--delay-ticks",
        type=int,
        default=2,
        help="attacker latency in scheduler ticks between wave teardown "
        "and scrape (default: 2)",
    )
    defense_sweep.add_argument(
        "--no-weight-theft",
        action="store_true",
        help="skip the fine-tuned weight-theft probe",
    )
    defense_sweep.add_argument(
        "--markdown", action="store_true", help="render a markdown table"
    )
    defense_sweep.add_argument(
        "--input-hw", type=int, default=32, help="square input edge (default: 32)"
    )
    defense_sweep.add_argument(
        "-o", "--output", default=None, help="also write the matrix as JSON"
    )
    defense_sweep.set_defaults(func=_cmd_defense_sweep)

    defense_report = defense_sub.add_parser(
        "report", help="re-render a saved defense matrix"
    )
    defense_report.add_argument("matrix", help="path to a matrix JSON file")
    defense_report.add_argument(
        "--markdown", action="store_true", help="render a markdown table"
    )
    defense_report.set_defaults(func=_cmd_defense_report)

    fuzz = subparsers.add_parser(
        "fuzz", help="generative scenario fuzzing with differential oracles"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run",
        help="sample campaign worlds from a seed and hold every oracle "
        "to them",
    )
    fuzz_run.add_argument(
        "--budget",
        type=int,
        default=25,
        help="scenarios to generate and run (default: 25)",
    )
    fuzz_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="generator seed; the scenario stream is a pure function "
        "of it (default: 0)",
    )
    fuzz_run.add_argument(
        "--oracles",
        default=None,
        metavar="A,B",
        help="comma-separated oracle subset (default: all registered)",
    )
    fuzz_run.add_argument(
        "--artifacts",
        default="fuzz-artifacts",
        metavar="DIR",
        help="where shrunk failing seeds are written "
        "(default: fuzz-artifacts)",
    )
    fuzz_run.add_argument(
        "--shrink-reruns",
        type=int,
        default=48,
        metavar="N",
        help="re-executions the shrinker may spend per failure "
        "(default: 48)",
    )
    fuzz_run.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimizing them",
    )
    fuzz_run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-scenario progress lines",
    )
    fuzz_run.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the byte-deterministic verdict report as JSON",
    )
    fuzz_run.set_defaults(func=_cmd_fuzz_run)

    fuzz_replay = fuzz_sub.add_parser(
        "replay",
        help="re-run saved scenario seeds (files or corpus directories)",
    )
    fuzz_replay.add_argument(
        "seeds",
        nargs="+",
        help="seed files or directories of *.json seeds",
    )
    fuzz_replay.add_argument(
        "--oracles",
        default=None,
        metavar="A,B",
        help="comma-separated oracle subset (default: all registered)",
    )
    fuzz_replay.set_defaults(func=_cmd_fuzz_replay)

    from repro.explore.fitness import FITNESS_NAMES
    from repro.explore.genome import (
        BOARD_COUNTS,
        CAMPAIGN_SEEDS,
        CORRUPTION_LEVELS,
        DELAY_TICKS,
        TENANT_COUNTS,
        VICTIM_COUNTS,
        WAVE_SIZES,
    )
    from repro.fuzzlab.scenario import CARVE_WINDOWS

    explore = subparsers.add_parser(
        "explore",
        help="search-guided exploration: evolve attacks, map defenses",
    )
    explore_sub = explore.add_subparsers(
        dest="explore_command", required=True
    )

    explore_attack = explore_sub.add_parser(
        "attack",
        help="evolve attacker genomes under a fitness; print the ranked "
        "frontier (byte-deterministic per seed)",
    )
    explore_attack.add_argument(
        "--seed",
        type=int,
        default=0,
        help="evolution seed; the frontier is a pure function of it "
        "(default: 0)",
    )
    explore_attack.add_argument(
        "--population",
        type=int,
        default=8,
        help="genomes per generation (default: 8)",
    )
    explore_attack.add_argument(
        "--generations",
        type=int,
        default=4,
        help="generations to evolve (default: 4)",
    )
    explore_attack.add_argument(
        "--keep-elites",
        type=int,
        default=2,
        metavar="N",
        help="top genomes copied unchanged into the next generation "
        "(default: 2)",
    )
    explore_attack.add_argument(
        "--tournament",
        type=int,
        default=2,
        metavar="K",
        help="tournament size for parent selection (default: 2)",
    )
    explore_attack.add_argument(
        "--crossover-rate",
        type=float,
        default=0.6,
        metavar="F",
        help="probability a child is bred from two parents "
        "(default: 0.6)",
    )
    explore_attack.add_argument(
        "--mutation-rate",
        type=float,
        default=0.9,
        metavar="F",
        help="probability a child gets one gene flipped (default: 0.9)",
    )
    explore_attack.add_argument(
        "--fitness",
        default="residue",
        choices=FITNESS_NAMES,
        help="what a genome is scored on (default: residue)",
    )
    explore_attack.add_argument(
        "--profiles",
        default="none",
        metavar="A,B",
        help="defense profiles to evolve against, one run each "
        "(default: none)",
    )
    explore_attack.add_argument(
        "--input-hw",
        type=int,
        default=16,
        help="square input edge in pixels (default: 16)",
    )
    explore_attack.add_argument(
        "--elites",
        default=None,
        metavar="DIR",
        help="export frontier genomes as replayable fuzz corpus seeds",
    )
    explore_attack.add_argument(
        "--markdown",
        action="store_true",
        help="render the frontier as a markdown table",
    )
    explore_attack.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the byte-deterministic frontier report as JSON",
    )
    explore_attack.set_defaults(func=_cmd_explore_attack)

    explore_defenses = explore_sub.add_parser(
        "defenses",
        help="Pareto-sweep the defense-config space against one fixed "
        "attacker; flag the non-dominated leakage-vs-overhead frontier",
    )
    explore_defenses.add_argument(
        "--boards",
        type=int,
        default=1,
        choices=BOARD_COUNTS,
        help="boards the attacker spans (default: 1)",
    )
    explore_defenses.add_argument(
        "--victims",
        type=int,
        default=2,
        choices=VICTIM_COUNTS,
        help="victims per campaign (default: 2)",
    )
    explore_defenses.add_argument(
        "--models",
        default="resnet50_pt",
        metavar="A,B",
        help="victim model mix (default: resnet50_pt)",
    )
    explore_defenses.add_argument(
        "--tenants",
        type=int,
        default=1,
        choices=TENANT_COUNTS,
        help="co-tenants per board (default: 1)",
    )
    explore_defenses.add_argument(
        "--wave-size",
        type=int,
        default=1,
        choices=WAVE_SIZES,
        help="victims torn down per wave (default: 1)",
    )
    explore_defenses.add_argument(
        "--seed",
        type=int,
        default=0,
        choices=CAMPAIGN_SEEDS,
        help="campaign schedule seed (default: 0)",
    )
    explore_defenses.add_argument(
        "--delay-ticks",
        type=int,
        default=2,
        choices=DELAY_TICKS,
        help="scrape delay after teardown in ticks (default: 2)",
    )
    explore_defenses.add_argument(
        "--carve-window",
        type=int,
        default=256,
        choices=CARVE_WINDOWS,
        help="attacker carve window (default: 256)",
    )
    explore_defenses.add_argument(
        "--corruption",
        type=float,
        default=0.0,
        choices=CORRUPTION_LEVELS,
        help="injected dump corruption fraction (default: 0.0)",
    )
    explore_defenses.add_argument(
        "--no-coalesce",
        action="store_true",
        help="scrape word-by-word instead of coalesced reads",
    )
    explore_defenses.add_argument(
        "--input-hw",
        type=int,
        default=16,
        help="square input edge in pixels (default: 16)",
    )
    explore_defenses.add_argument(
        "--scrub-rates",
        default="16,64,256",
        metavar="R1,R2",
        help="scrub-daemon rates enumerated on the sanitize axis "
        "(default: 16,64,256)",
    )
    explore_defenses.add_argument(
        "--markdown",
        action="store_true",
        help="render the frontier as a markdown table",
    )
    explore_defenses.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the byte-deterministic frontier report as JSON",
    )
    explore_defenses.set_defaults(func=_cmd_explore_defenses)

    from repro.service.analysis import CARVE_PRESETS

    analyze = subparsers.add_parser(
        "analyze",
        help="batch-analyze raw dump files (no board, no simulation)",
    )
    analyze.add_argument(
        "dumps",
        nargs="+",
        metavar="DUMP",
        help="raw dump file(s) — any bytes, simulated or external",
    )
    analyze.add_argument(
        "--models",
        default="resnet50_pt,squeezenet_pt,inception_v1_tf",
        metavar="A,B",
        help="model mix to mine the signature database from "
        "(default: resnet50_pt,squeezenet_pt,inception_v1_tf)",
    )
    analyze.add_argument(
        "--input-hw",
        type=int,
        default=32,
        help="square input edge used for profiling (default: 32)",
    )
    analyze.add_argument(
        "--carve",
        default="default",
        choices=sorted(CARVE_PRESETS),
        help="carve preset controlling region-map granularity "
        "(default: default)",
    )
    analyze.add_argument(
        "--min-score",
        type=float,
        default=0.3,
        metavar="F",
        help="minimum signature-match score for attribution "
        "(default: 0.3)",
    )
    analyze.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the canonical JSON analysis report",
    )
    analyze.set_defaults(func=_cmd_analyze)

    serve = subparsers.add_parser(
        "serve", help="long-lived service daemons"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_analysis = serve_sub.add_parser(
        "analysis",
        help="the analysis ingest daemon: newline-JSON uploads, jobs, "
        "and streaming report deltas (see docs/service.md)",
    )
    serve_analysis.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_analysis.add_argument(
        "--port",
        type=int,
        default=0,
        help="listening port; 0 picks an ephemeral one (default: 0)",
    )
    serve_analysis.add_argument(
        "--models",
        default="resnet50_pt,squeezenet_pt,inception_v1_tf",
        metavar="A,B",
        help="model mix behind the 'default' signature database "
        "(default: resnet50_pt,squeezenet_pt,inception_v1_tf)",
    )
    serve_analysis.add_argument(
        "--input-hw",
        type=int,
        default=32,
        help="square input edge used for profiling (default: 32)",
    )
    serve_analysis.add_argument(
        "--workers",
        type=int,
        default=2,
        help="analysis worker threads (default: 2)",
    )
    serve_analysis.add_argument(
        "--queue-capacity",
        type=int,
        default=8,
        metavar="N",
        help="bounded job queue depth; a full queue answers "
        "backpressure with retry-after (default: 8)",
    )
    serve_analysis.add_argument(
        "--min-score",
        type=float,
        default=0.3,
        metavar="F",
        help="minimum signature-match score for attribution "
        "(default: 0.3)",
    )
    serve_analysis.add_argument(
        "--spool-dir",
        default=None,
        metavar="DIR",
        help="content-addressed dump spool root "
        "(default: a fresh temp directory)",
    )
    serve_analysis.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the final aggregate report as JSON after the drain",
    )
    serve_analysis.set_defaults(func=_cmd_serve_analysis)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved Unix tools.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
