"""Attacker-strategy genomes — the explorer's unit of evolution.

An :class:`AttackGenome` is the attacker's half of a
:class:`~repro.fuzzlab.scenario.Scenario`: the knobs an adversary
actually controls (scrape latency, carve window, extraction mode,
which models to hunt, how hard to churn the allocator) plus the
campaign seed, with every harness-only axis (crash points, fabric
chaos, planted faults) pinned to the cheap deterministic defaults.
Each gene draws from a small named pool so mutation and crossover stay
closed over *valid* genomes by construction — ``to_scenario`` always
yields a scenario the fuzzlab runner can execute, which is what lets
elite genomes be exported as replayable corpus seeds.

Everything is seeded: :func:`random_genome`, :func:`mutate`, and
:func:`crossover` draw only from the ``random.Random`` they are
handed, so an evolution run is a pure function of its seed.

>>> rng = __import__("random").Random(7)
>>> genome = random_genome(rng)
>>> genome == genome_from_dict(genome_to_dict(genome))
True
>>> mutate(genome, rng) != genome
True
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from repro.fuzzlab.scenario import CARVE_WINDOWS, Scenario

MODEL_POOL = (
    "inception_v1_tf",
    "mobilenet_v2_tf",
    "resnet50_pt",
    "squeezenet_pt",
)
"""Models a genome's mix may hunt.  Deliberately a *subset* of the
zoo: offline prep is cached per (mix, input size), so a small pool
keeps the number of distinct prep runs an evolution can trigger
bounded while still exercising both frameworks."""

BOARD_COUNTS = (1, 2)
VICTIM_COUNTS = (1, 2, 3, 4)
WAVE_SIZES = (1, 2, 3)
TENANT_COUNTS = (1, 2, 3)
DELAY_TICKS = (0, 1, 2, 3, 4)
"""Scheduler ticks between wave teardown and the scrape — the
attacker's latency, racing the asynchronous scrubber."""
CORRUPTION_LEVELS = (0.0, 0.1, 0.25, 0.4)
CAMPAIGN_SEEDS = tuple(range(8))
"""Campaign-scheduler seeds a genome may pick; a gene, not a constant,
so the search can escape a pathological schedule."""
MIX_SIZES = (1, 2, 3)

ANALYSIS_CAP = 65536
"""Fixed analysis cap for explorer-built scenarios (the explorer
scores campaign measurements, not dump-analysis oracles)."""


@dataclass(frozen=True)
class AttackGenome:
    """One attacker strategy: every gene drawn from its pool above."""

    boards: int
    victims: int
    wave_size: int
    tenants_per_board: int
    model_mix: tuple[str, ...]
    """Kept sorted — two genomes hunting the same set of models are
    the same strategy, and the canonical form makes :meth:`key`
    collisions (the dedupe/cache identity) exact."""
    coalesce_reads: bool
    delay_ticks: int
    carve_window: int
    corruption: float
    seed: int

    def __post_init__(self) -> None:
        pools = (
            ("boards", self.boards, BOARD_COUNTS),
            ("victims", self.victims, VICTIM_COUNTS),
            ("wave_size", self.wave_size, WAVE_SIZES),
            ("tenants_per_board", self.tenants_per_board, TENANT_COUNTS),
            ("delay_ticks", self.delay_ticks, DELAY_TICKS),
            ("carve_window", self.carve_window, CARVE_WINDOWS),
            ("corruption", self.corruption, CORRUPTION_LEVELS),
            ("seed", self.seed, CAMPAIGN_SEEDS),
        )
        for name, value, pool in pools:
            if value not in pool:
                raise ValueError(
                    f"{name} must be one of {pool}, got {value!r}"
                )
        if not self.model_mix:
            raise ValueError("model_mix must be non-empty")
        if tuple(sorted(self.model_mix)) != self.model_mix:
            raise ValueError(
                f"model_mix must be sorted (canonical form), "
                f"got {self.model_mix}"
            )
        unknown = sorted(set(self.model_mix) - set(MODEL_POOL))
        if unknown:
            raise ValueError(
                f"model(s) outside the genome pool: {unknown}; "
                f"pool: {MODEL_POOL}"
            )

    def key(self) -> tuple:
        """Total-order identity: cache key, dedupe key, tie-breaker."""
        return (
            self.boards,
            self.victims,
            self.wave_size,
            self.tenants_per_board,
            self.model_mix,
            self.coalesce_reads,
            self.delay_ticks,
            self.carve_window,
            self.corruption,
            self.seed,
        )

    def label(self) -> str:
        """One-line summary for progress output and report rows."""
        return (
            f"{self.boards}b/{self.victims}v w{self.wave_size} "
            f"t{self.tenants_per_board} mix={len(self.model_mix)} "
            f"delay={self.delay_ticks} carve={self.carve_window} "
            f"{'coalesced' if self.coalesce_reads else 'word'} "
            f"corr={self.corruption} seed={self.seed}"
        )

    def to_scenario(
        self,
        scenario_id: int = 0,
        defense_profile: str = "none",
        input_hw: int = 16,
    ) -> Scenario:
        """Lower the genome onto a runnable fuzzlab scenario.

        Harness-only axes take the cheapest deterministic values: an
        in-process executor both ways, the earliest legal crash point,
        no fabric chaos — the explorer scores the campaign itself.
        The result replays under ``repro fuzz replay`` like any other
        corpus seed.
        """
        return Scenario(
            scenario_id=scenario_id,
            seed=self.seed,
            boards=self.boards,
            victims=self.victims,
            tenants_per_board=self.tenants_per_board,
            wave_size=self.wave_size,
            model_mix=self.model_mix,
            board_names=(
                ("ZCU104",) if self.boards == 1 else ("ZCU104", "ZCU102")
            ),
            input_hw=input_hw,
            corruption_fraction=self.corruption,
            coalesce_reads=self.coalesce_reads,
            executor="inprocess",
            processes=None,
            resume_executor="inprocess",
            interrupt_after=1,
            defense_profile=defense_profile,
            scrape_delay_ticks=self.delay_ticks,
            carve_window=self.carve_window,
            analysis_cap=ANALYSIS_CAP,
        )


def genome_to_dict(genome: AttackGenome) -> dict:
    """The genome as a JSON-trivial dict (tuples become lists).

    A serialized-then-parsed genome dict compares equal to a fresh
    one, so frontier reports round-trip byte-identically.
    """
    fields = asdict(genome)
    fields["model_mix"] = list(fields["model_mix"])
    return fields


def genome_from_dict(payload: dict) -> AttackGenome:
    """Rebuild a genome from :func:`genome_to_dict` output."""
    fields = dict(payload)
    fields["model_mix"] = tuple(fields["model_mix"])
    return AttackGenome(**fields)


def _random_mix(rng: random.Random) -> tuple[str, ...]:
    size = rng.choice(MIX_SIZES)
    return tuple(sorted(rng.sample(MODEL_POOL, size)))


def random_genome(rng: random.Random) -> AttackGenome:
    """Sample one uniformly random (valid) genome from *rng*."""
    return AttackGenome(
        boards=rng.choice(BOARD_COUNTS),
        victims=rng.choice(VICTIM_COUNTS),
        wave_size=rng.choice(WAVE_SIZES),
        tenants_per_board=rng.choice(TENANT_COUNTS),
        model_mix=_random_mix(rng),
        coalesce_reads=rng.random() < 0.5,
        delay_ticks=rng.choice(DELAY_TICKS),
        carve_window=rng.choice(CARVE_WINDOWS),
        corruption=rng.choice(CORRUPTION_LEVELS),
        seed=rng.choice(CAMPAIGN_SEEDS),
    )


def _resample(rng: random.Random, pool: tuple, current: object) -> object:
    """A pool draw guaranteed to differ from *current* (pools > 1)."""
    alternatives = [value for value in pool if value != current]
    return rng.choice(alternatives)


def mutate(genome: AttackGenome, rng: random.Random) -> AttackGenome:
    """Flip exactly one gene to a different value from its pool."""
    gene = rng.randrange(10)
    fields = genome_to_dict(genome)
    fields["model_mix"] = genome.model_mix
    if gene == 0:
        fields["boards"] = _resample(rng, BOARD_COUNTS, genome.boards)
    elif gene == 1:
        fields["victims"] = _resample(rng, VICTIM_COUNTS, genome.victims)
    elif gene == 2:
        fields["wave_size"] = _resample(rng, WAVE_SIZES, genome.wave_size)
    elif gene == 3:
        fields["tenants_per_board"] = _resample(
            rng, TENANT_COUNTS, genome.tenants_per_board
        )
    elif gene == 4:
        mix = genome.model_mix
        while mix == genome.model_mix:
            mix = _random_mix(rng)
        fields["model_mix"] = mix
    elif gene == 5:
        fields["coalesce_reads"] = not genome.coalesce_reads
    elif gene == 6:
        fields["delay_ticks"] = _resample(rng, DELAY_TICKS, genome.delay_ticks)
    elif gene == 7:
        fields["carve_window"] = _resample(
            rng, CARVE_WINDOWS, genome.carve_window
        )
    elif gene == 8:
        fields["corruption"] = _resample(
            rng, CORRUPTION_LEVELS, genome.corruption
        )
    else:
        fields["seed"] = _resample(rng, CAMPAIGN_SEEDS, genome.seed)
    return AttackGenome(**fields)


def crossover(
    first: AttackGenome, second: AttackGenome, rng: random.Random
) -> AttackGenome:
    """Uniform crossover: each gene inherited from a random parent.

    Genes are independent pools, so any per-gene mix of two valid
    parents is itself valid — no repair step needed.
    """
    left, right = genome_to_dict(first), genome_to_dict(second)
    left["model_mix"] = first.model_mix
    right["model_mix"] = second.model_mix
    child = {
        name: (left if rng.random() < 0.5 else right)[name] for name in left
    }
    return AttackGenome(**child)
