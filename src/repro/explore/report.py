"""Frontier reports — the explorer's citable, replayable artifact.

Both exploration lanes end in a :class:`FrontierReport`: a ranked
list of entries (elite attacker genomes, or defense-space points with
their frontier flags) plus the parameters the run was a function of.
``to_json`` is byte-deterministic — sorted keys, fixed indent,
``allow_nan=False`` so a non-finite number is a bug at serialization
time rather than a silently invalid artifact — which is what makes
"same seed, same bytes" a testable promise and lets CI diff frontier
artifacts across runs.

:func:`export_elites` closes the loop with the fuzzlab: each elite
genome is lowered to its scenario and saved through the corpus
serializer, so a champion strategy becomes a regression seed that
``repro fuzz replay`` holds to every oracle forever after.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.explore.evolve import EvolutionResult
from repro.explore.genome import (
    AttackGenome,
    genome_from_dict,
    genome_to_dict,
)
from repro.explore.pareto import DefensePoint, describe_axes
from repro.fuzzlab.corpus import save_scenario

FRONTIER_FORMAT = 1
"""Artifact schema version; bumped on incompatible layout changes."""


@dataclass(frozen=True)
class FrontierReport:
    """One exploration run's ranked frontier, JSON round-trippable."""

    mode: str
    """``"attack"`` (evolved genomes) or ``"defenses"`` (Pareto)."""
    seed: int
    fitness: str
    params: dict
    generations: tuple[dict, ...]
    """Per-generation stats for attack mode; empty for defenses."""
    entries: tuple[dict, ...]
    """Ranked rows, best first.  Attack rows carry ``score`` and the
    full ``genome``; defense rows carry objectives, axis values, and
    the ``on_front`` flag."""

    def to_json(self) -> str:
        payload = {
            "format": FRONTIER_FORMAT,
            "mode": self.mode,
            "seed": self.seed,
            "fitness": self.fitness,
            "params": self.params,
            "generations": list(self.generations),
            "entries": list(self.entries),
        }
        return json.dumps(
            payload, indent=2, sort_keys=True, allow_nan=False
        )

    @classmethod
    def from_json(cls, text: str) -> "FrontierReport":
        payload = json.loads(text)
        version = payload.get("format")
        if version != FRONTIER_FORMAT:
            raise ValueError(
                f"unsupported frontier format {version!r} "
                f"(expected {FRONTIER_FORMAT})"
            )
        return cls(
            mode=payload["mode"],
            seed=payload["seed"],
            fitness=payload["fitness"],
            params=payload["params"],
            generations=tuple(payload["generations"]),
            entries=tuple(payload["entries"]),
        )

    def elite_genomes(self) -> tuple[AttackGenome, ...]:
        """Rehydrated genomes, attack mode only (ranked order)."""
        if self.mode != "attack":
            raise ValueError(
                f"elite genomes exist only for attack reports, "
                f"not {self.mode!r}"
            )
        return tuple(
            genome_from_dict(entry["genome"]) for entry in self.entries
        )

    def render(self) -> str:
        """Plain-text ranking for terminal output."""
        lines = [
            f"frontier: mode={self.mode} seed={self.seed} "
            f"fitness={self.fitness}"
        ]
        for entry in self.entries:
            if self.mode == "attack":
                lines.append(
                    f"  #{entry['rank']:>2} score={entry['score']:<12g} "
                    f"{entry['label']}"
                )
            else:
                marker = "*" if entry["on_front"] else " "
                lines.append(
                    f"  {marker} #{entry['rank']:>2} "
                    f"leak={entry['leakage_bytes']:<8} "
                    f"overhead={entry['overhead']:<6} "
                    f"{entry['name']}"
                )
        if self.mode == "defenses":
            lines.append("  (* = on the non-dominated frontier)")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown table for docs and CI artifacts."""
        if self.mode == "attack":
            lines = [
                f"## Attack frontier (seed {self.seed}, "
                f"fitness `{self.fitness}`)",
                "",
                "| rank | score | strategy |",
                "| ---: | ---: | --- |",
            ]
            lines += [
                f"| {entry['rank']} | {entry['score']:g} "
                f"| `{entry['label']}` |"
                for entry in self.entries
            ]
        else:
            lines = [
                f"## Defense Pareto sweep (seed {self.seed})",
                "",
                "| rank | front | leakage (B) | overhead | config |",
                "| ---: | :---: | ---: | ---: | --- |",
            ]
            lines += [
                f"| {entry['rank']} "
                f"| {'yes' if entry['on_front'] else ''} "
                f"| {entry['leakage_bytes']} | {entry['overhead']} "
                f"| `{entry['name']}` |"
                for entry in self.entries
            ]
        return "\n".join(lines) + "\n"


def attack_report(
    results: dict[str, EvolutionResult], seed: int, params: dict
) -> FrontierReport:
    """Merge per-profile evolution results into one ranked report.

    Entries from every swept defense profile compete in one ranking
    (score descending, then profile name and genome key for a total
    order), so the report's top row is the strongest strategy found
    anywhere in the sweep.
    """
    rows = []
    fitness = ""
    generations: list[dict] = []
    for profile_name in sorted(results):
        result = results[profile_name]
        fitness = result.config.fitness
        generations += [
            {
                "profile": profile_name,
                "generation": s.generation,
                "best": s.best,
                "mean": s.mean,
                "evaluations": s.evaluations,
            }
            for s in result.stats
        ]
        rows += [
            {
                "profile": profile_name,
                "score": score,
                "label": genome.label(),
                "genome": genome_to_dict(genome),
            }
            for score, genome in result.frontier
        ]
    rows.sort(
        key=lambda row: (
            -row["score"],
            row["profile"],
            tuple(genome_from_dict(row["genome"]).key()),
        )
    )
    entries = tuple(
        {**row, "rank": rank} for rank, row in enumerate(rows, start=1)
    )
    return FrontierReport(
        mode="attack",
        seed=seed,
        fitness=fitness,
        params=params,
        generations=tuple(generations),
        entries=entries,
    )


def defense_report(
    points: tuple[DefensePoint, ...], seed: int, params: dict
) -> FrontierReport:
    """Wrap a defense-space sweep as a frontier report."""
    entries = tuple(
        {
            "rank": rank,
            "name": point.config.name,
            "on_front": point.on_front,
            "leakage_bytes": point.leakage_bytes,
            "overhead": point.overhead,
            "window_hit_rate": point.window_hit_rate,
            "success_rate": point.success_rate,
            "axes": describe_axes(point.config),
        }
        for rank, point in enumerate(points, start=1)
    )
    return FrontierReport(
        mode="defenses",
        seed=seed,
        fitness="pareto",
        params=params,
        generations=(),
        entries=entries,
    )


def export_elites(
    report: FrontierReport, directory: str | Path, input_hw: int = 16
) -> tuple[Path, ...]:
    """Save each elite genome as a replayable fuzzlab corpus seed.

    The scenario id is the frontier rank, so a corpus directory reads
    in ranked order and re-exports are stable.  Returns the written
    paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for entry, genome in zip(report.entries, report.elite_genomes()):
        scenario = genome.to_scenario(
            scenario_id=entry["rank"], input_hw=input_hw
        )
        path = directory / (
            f"elite-{entry['rank']:02d}-{entry['profile']}.json"
        )
        save_scenario(
            scenario,
            path,
            note=(
                f"explore elite rank={entry['rank']} "
                f"fitness={report.fitness} score={entry['score']:g} "
                f"seed={report.seed} profile={entry['profile']}"
            ),
        )
        paths.append(path)
    return tuple(paths)
