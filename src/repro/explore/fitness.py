"""Fitness functions — how the explorer scores an attacker genome.

Every fitness routes through the real stack: the genome lowers to a
:class:`~repro.fuzzlab.scenario.Scenario`, the scenario runs through
:func:`repro.fuzzlab.evaluate_world` (the same campaign engine the
fuzzlab and arena drive), and the fitness picks one number off the
resulting :class:`~repro.fuzzlab.WorldEval`.  Nothing is simulated on
the side, so a genome the search crowns champion is a strategy the
actual attack pipeline executes — and its exported corpus seed
replays green.

Three fitnesses map to the paper's three questions:

- ``residue``  — raw leaked bytes surviving teardown (table-2 axis);
- ``window``   — fraction of victims scraped inside the window of
  vulnerability (the race the async scrubber loses);
- ``weights``  — recovered fraction of a privately fine-tuned model's
  weights (the weight-theft escalation), which adds the arena's probe
  on top of the campaign measurement.

:class:`GenomeEvaluator` memoizes by genome identity, so re-visited
genomes (elites, crossover duplicates) cost nothing — the counters it
keeps feed the bench lane and report provenance.
"""

from __future__ import annotations

from typing import Callable

from repro.defense.arena import prepare_weight_probe, probe_weight_theft
from repro.defense.profiles import DefenseConfig, defense_profile
from repro.explore.genome import AttackGenome
from repro.fuzzlab.runner import WorldEval, evaluate_world

FITNESS_FUNCTIONS: dict[str, Callable[[WorldEval], float]] = {
    "residue": lambda world: float(world.residue_bytes),
    "window": lambda world: world.window_hit_rate,
}
"""Campaign-only fitnesses: a pure projection of the world eval.
``weights`` is handled separately because it needs the probe."""

FITNESS_NAMES = ("residue", "weights", "window")
"""Every fitness the CLI accepts, alphabetical."""


class GenomeEvaluator:
    """Score genomes under one defense profile, memoizing by identity.

    The evaluator owns everything a fitness needs beyond the genome:
    the resolved :class:`DefenseConfig`, the input size, and (for
    ``weights``) the lazily-built offline probe half.  Scores are
    cached on :meth:`AttackGenome.key`, which makes re-evaluating an
    elite free and keeps the whole evolution's campaign count equal to
    the number of *distinct* genomes visited.
    """

    def __init__(
        self,
        fitness: str = "residue",
        profile: str | DefenseConfig = "none",
        input_hw: int = 16,
    ) -> None:
        if fitness not in FITNESS_NAMES:
            raise ValueError(
                f"unknown fitness {fitness!r}; choose from {FITNESS_NAMES}"
            )
        self.fitness = fitness
        self.profile = (
            profile
            if isinstance(profile, DefenseConfig)
            else defense_profile(profile)
        )
        self.input_hw = input_hw
        self.evaluations = 0
        self.cache_hits = 0
        self._scores: dict[tuple, float] = {}
        self._probe_prep = None

    def _weight_theft(self, genome: AttackGenome) -> float:
        if self._probe_prep is None:
            self._probe_prep = prepare_weight_probe(input_hw=self.input_hw)
        spec = genome.to_scenario(input_hw=self.input_hw).to_spec()
        return probe_weight_theft(
            self.profile.kernel_config(spec),
            input_hw=self.input_hw,
            delay_ticks=genome.delay_ticks,
            prepared=self._probe_prep,
        )

    def score(self, genome: AttackGenome) -> float:
        """The genome's fitness (higher is a stronger attack)."""
        key = genome.key()
        if key in self._scores:
            self.cache_hits += 1
            return self._scores[key]
        self.evaluations += 1
        world = evaluate_world(
            genome.to_scenario(input_hw=self.input_hw), defense=self.profile
        )
        if self.fitness == "weights":
            value = self._weight_theft(genome)
        else:
            value = FITNESS_FUNCTIONS[self.fitness](world)
        self._scores[key] = value
        return value
