"""The evolutionary driver: seeded search over attacker genomes.

A deliberately small, fully deterministic genetic algorithm.  One
``random.Random(config.seed)`` drives every stochastic choice —
initial population, tournament draws, crossover masks, mutation
sites — so the same :class:`EvolutionConfig` always walks the same
genome sequence and :func:`evolve` returns byte-for-byte the same
frontier.  Selection is tournament, survival is elitist, and the
frontier is the best *distinct* genomes ever seen (not just the final
population), ranked by score with the genome's total-order key
breaking ties.

Wall-clock never enters the loop: fitness comes from
:class:`~repro.explore.fitness.GenomeEvaluator` (deterministic
campaign measurements), and any timing the caller wants (the bench
lane's generations/s) is measured *around* :func:`evolve`, not inside
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.explore.fitness import FITNESS_NAMES, GenomeEvaluator
from repro.explore.genome import (
    AttackGenome,
    crossover,
    mutate,
    random_genome,
)


@dataclass(frozen=True)
class EvolutionConfig:
    """Everything an evolution run is a function of."""

    seed: int = 0
    population: int = 8
    generations: int = 4
    elites: int = 2
    tournament: int = 2
    crossover_rate: float = 0.6
    mutation_rate: float = 0.9
    fitness: str = "residue"
    profile: str = "none"
    input_hw: int = 16

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0 <= self.elites < self.population:
            raise ValueError("elites must be in [0, population)")
        if not 1 <= self.tournament <= self.population:
            raise ValueError("tournament must be in [1, population]")
        for name in ("crossover_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.fitness not in FITNESS_NAMES:
            raise ValueError(
                f"unknown fitness {self.fitness!r}; "
                f"choose from {FITNESS_NAMES}"
            )


@dataclass(frozen=True)
class GenerationStats:
    """One generation's scoreboard."""

    generation: int
    best: float
    mean: float
    evaluations: int
    """Cumulative distinct-genome campaigns after this generation."""


@dataclass(frozen=True)
class EvolutionResult:
    """A finished run: the frontier plus its full provenance."""

    config: EvolutionConfig
    frontier: tuple[tuple[float, AttackGenome], ...]
    """Best distinct genomes ever seen, ``(score, genome)``, sorted by
    descending score then ascending genome key."""
    stats: tuple[GenerationStats, ...]
    evaluations: int
    cache_hits: int

    @property
    def best(self) -> tuple[float, AttackGenome]:
        return self.frontier[0]


@dataclass
class _Hall:
    """Best-ever tracker keyed on genome identity."""

    seen: dict[tuple, tuple[float, AttackGenome]] = field(
        default_factory=dict
    )

    def admit(self, score: float, genome: AttackGenome) -> None:
        self.seen.setdefault(genome.key(), (score, genome))

    def ranked(self, limit: int) -> tuple[tuple[float, AttackGenome], ...]:
        ordered = sorted(
            self.seen.values(), key=lambda entry: (-entry[0], entry[1].key())
        )
        return tuple(ordered[:limit])


def _select(
    scored: list[tuple[float, AttackGenome]],
    rng: random.Random,
    tournament: int,
) -> AttackGenome:
    """Tournament selection: best of *tournament* uniform draws."""
    contenders = [rng.choice(scored) for _ in range(tournament)]
    return max(contenders, key=lambda entry: (entry[0], entry[1].key()))[1]


def evolve(config: EvolutionConfig) -> EvolutionResult:
    """Run the full evolution; deterministic in ``config`` alone."""
    rng = random.Random(config.seed)
    evaluator = GenomeEvaluator(
        fitness=config.fitness,
        profile=config.profile,
        input_hw=config.input_hw,
    )
    population = [random_genome(rng) for _ in range(config.population)]
    hall = _Hall()
    stats: list[GenerationStats] = []
    for generation in range(config.generations):
        scored = [(evaluator.score(genome), genome) for genome in population]
        for score, genome in scored:
            hall.admit(score, genome)
        scores = [score for score, _ in scored]
        stats.append(
            GenerationStats(
                generation=generation,
                best=max(scores),
                mean=sum(scores) / len(scores),
                evaluations=evaluator.evaluations,
            )
        )
        if generation == config.generations - 1:
            break
        ranked = sorted(
            scored, key=lambda entry: (-entry[0], entry[1].key())
        )
        survivors = [genome for _, genome in ranked[: config.elites]]
        while len(survivors) < config.population:
            parent = _select(scored, rng, config.tournament)
            if rng.random() < config.crossover_rate:
                child = crossover(
                    parent, _select(scored, rng, config.tournament), rng
                )
            else:
                child = parent
            if rng.random() < config.mutation_rate:
                child = mutate(child, rng)
            survivors.append(child)
        population = survivors
    return EvolutionResult(
        config=config,
        frontier=hall.ranked(config.population),
        stats=tuple(stats),
        evaluations=evaluator.evaluations,
        cache_hits=evaluator.cache_hits,
    )
