"""Search-guided scenario exploration — evolve attacks, map defenses.

The fuzzlab samples scenarios at random and asks "does anything
break?"; this package *searches* the same scenario space and asks two
sharper questions.  On the attack side, a seeded evolutionary driver
(:mod:`repro.explore.evolve`) breeds attacker-strategy genomes
(:mod:`repro.explore.genome`) under pluggable fitness functions
(:mod:`repro.explore.fitness` — residue bytes, window-of-vulnerability
hit rate, weight-theft recovery), every candidate scored by running
the real campaign engine via :func:`repro.fuzzlab.evaluate_world`.
On the defense side, :mod:`repro.explore.pareto` sweeps the full
:func:`repro.defense.defense_config_space` against a fixed attacker
and flags the non-dominated leakage-vs-overhead frontier.  Both lanes
emit a byte-deterministic :class:`~repro.explore.report.FrontierReport`
(JSON + markdown), and elite genomes export as replayable fuzzlab
corpus seeds — a champion attack becomes a permanent regression test.

Everything is a pure function of its seed and config: same seed, same
frontier, byte for byte.

>>> from repro.explore import EvolutionConfig, evolve
>>> result = evolve(EvolutionConfig(seed=0, population=2,
...                                 generations=1, elites=1))
>>> result.best[0] >= 0.0
True
>>> evolve(result.config).frontier == result.frontier
True

CLI lanes: ``repro explore attack`` and ``repro explore defenses``;
see ``docs/exploration.md`` for the genome/fitness design and a
worked run.
"""

from repro.explore.evolve import (
    EvolutionConfig,
    EvolutionResult,
    GenerationStats,
    evolve,
)
from repro.explore.fitness import (
    FITNESS_FUNCTIONS,
    FITNESS_NAMES,
    GenomeEvaluator,
)
from repro.explore.genome import (
    AttackGenome,
    crossover,
    genome_from_dict,
    genome_to_dict,
    mutate,
    random_genome,
)
from repro.explore.pareto import (
    DefensePoint,
    deployment_overhead,
    dominates,
    pareto_front,
    sweep_defense_space,
)
from repro.explore.report import (
    FRONTIER_FORMAT,
    FrontierReport,
    attack_report,
    defense_report,
    export_elites,
)

__all__ = [
    "AttackGenome",
    "DefensePoint",
    "EvolutionConfig",
    "EvolutionResult",
    "FITNESS_FUNCTIONS",
    "FITNESS_NAMES",
    "FRONTIER_FORMAT",
    "FrontierReport",
    "GenerationStats",
    "GenomeEvaluator",
    "attack_report",
    "crossover",
    "defense_report",
    "deployment_overhead",
    "dominates",
    "evolve",
    "export_elites",
    "genome_from_dict",
    "genome_to_dict",
    "mutate",
    "pareto_front",
    "random_genome",
    "sweep_defense_space",
]
