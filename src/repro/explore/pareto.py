"""Pareto-front discovery over the defense-configuration space.

The fixed named-profile sweep of ``repro defense sweep`` answers "how
do these five profiles compare?"; this module answers the harder
question the paper's defense discussion actually poses: *which
configurations are worth deploying at all?*  Every point in
:func:`repro.defense.defense_config_space` is evaluated against one
attacker scenario through the real campaign engine, scored on two
axes — bytes leaked and deployment overhead — and the non-dominated
set (no other config leaks less *and* costs less) is flagged as the
frontier.  Dominated configs are kept in the ranking for context but
marked; the frontier is what ``docs/defenses.md`` cites.

The overhead axis is a deterministic cost model, not wall-clock:
wall-clock fields are the one nondeterministic part of a campaign
outcome (``canonical_outcome`` zeroes them for exactly that reason),
and a byte-reproducible frontier cannot stand on them.  Costs count
work the defense *causes* — frames scrubbed synchronously on the
teardown path, frames the background daemon scrubbed, plus flat
per-board charges for address-space randomization and hypervisor
pinning:

- ``SYNC_FRAME_COST``  (4) — a zero-on-free frame blocks teardown;
- ``ASYNC_FRAME_COST`` (1) — a daemon-scrubbed frame runs off-path;
- ``ASLR_OVERHEAD_PER_BOARD`` (64) — remap churn per hardened board;
- ``XEN_OVERHEAD_PER_BOARD`` (96) — a pinned Xen domain per board.

The generic :func:`pareto_front` (minimization over equal-length
objective tuples) is exposed on its own so the property tests can
hammer it with synthetic points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.defense.profiles import (
    DEFAULT_SCRUB_RATES,
    DefenseConfig,
    SanitizePolicy,
    XenPolicy,
    defense_config_space,
)
from repro.explore.genome import AttackGenome
from repro.fuzzlab.runner import WorldEval, evaluate_world

SYNC_FRAME_COST = 4
ASYNC_FRAME_COST = 1
ASLR_OVERHEAD_PER_BOARD = 64
XEN_OVERHEAD_PER_BOARD = 96


def dominates(
    first: Sequence[float], second: Sequence[float]
) -> bool:
    """True if *first* Pareto-dominates *second* (minimization).

    Dominance requires no-worse on every objective and strictly
    better on at least one; equal points do not dominate each other.
    """
    if len(first) != len(second):
        raise ValueError(
            f"objective arity mismatch: {len(first)} vs {len(second)}"
        )
    no_worse = all(a <= b for a, b in zip(first, second))
    return no_worse and any(a < b for a, b in zip(first, second))


def pareto_front(points: Sequence[Sequence[float]]) -> tuple[bool, ...]:
    """Per-point membership flags for the non-dominated set.

    Quadratic scan — config spaces here are tens of points, and the
    simple algorithm is obviously correct, which matters more for a
    module whose output is cited as ground truth.
    """
    flags = []
    for i, candidate in enumerate(points):
        dominated = any(
            dominates(other, candidate)
            for j, other in enumerate(points)
            if j != i
        )
        flags.append(not dominated)
    return tuple(flags)


def deployment_overhead(
    config: DefenseConfig, world: WorldEval, boards: int = 1
) -> int:
    """Deterministic cost units one config spent defending *world*."""
    cost = (
        world.frames_scrubbed_sync * SYNC_FRAME_COST
        + world.frames_scrubbed_async * ASYNC_FRAME_COST
    )
    if config.physical_aslr or config.virtual_aslr:
        cost += ASLR_OVERHEAD_PER_BOARD * boards
    if config.xen is not XenPolicy.NONE:
        cost += XEN_OVERHEAD_PER_BOARD * boards
    return cost


@dataclass(frozen=True)
class DefensePoint:
    """One evaluated defense configuration."""

    config: DefenseConfig
    leakage_bytes: int
    overhead: int
    window_hit_rate: float
    success_rate: float
    on_front: bool

    @property
    def objectives(self) -> tuple[int, int]:
        return (self.leakage_bytes, self.overhead)


def sweep_defense_space(
    genome: AttackGenome,
    input_hw: int = 16,
    scrub_rates: tuple[int, ...] = DEFAULT_SCRUB_RATES,
) -> tuple[DefensePoint, ...]:
    """Evaluate the whole config space against one attacker genome.

    Returns every point ranked frontier-first, then by (leakage,
    overhead, name) — a total, deterministic order.  The attacker is
    held fixed across configs (same genome, same campaign schedule),
    so points differ only in the defense, exactly like arena rows.
    """
    scenario = genome.to_scenario(input_hw=input_hw)
    evaluated = []
    for config in defense_config_space(scrub_rates):
        world = evaluate_world(scenario, defense=config)
        evaluated.append(
            (
                config,
                world.residue_bytes,
                deployment_overhead(config, world, boards=genome.boards),
                world,
            )
        )
    flags = pareto_front(
        [(leak, cost) for _, leak, cost, _ in evaluated]
    )
    points = [
        DefensePoint(
            config=config,
            leakage_bytes=leak,
            overhead=cost,
            window_hit_rate=world.window_hit_rate,
            success_rate=world.success_rate,
            on_front=flag,
        )
        for (config, leak, cost, world), flag in zip(evaluated, flags)
    ]
    points.sort(
        key=lambda p: (
            not p.on_front,
            p.leakage_bytes,
            p.overhead,
            p.config.name,
        )
    )
    return tuple(points)


def describe_axes(config: DefenseConfig) -> dict:
    """JSON-friendly axis values for one config (report rows)."""
    return {
        "sanitize": config.sanitize_policy.name.lower(),
        "scrub_rate_per_tick": (
            config.scrub_rate_per_tick
            if config.sanitize_policy is SanitizePolicy.SCRUB_POOL
            else None
        ),
        "physical_aslr": config.physical_aslr,
        "virtual_aslr": config.virtual_aslr,
        "xen": config.xen.name.lower(),
    }
