"""The defense arena — one fleet campaign per hardening profile.

:func:`run_defense_arena` executes the *same* :class:`CampaignSpec`
(same schedule, same victims, same secret images, same offline prep)
under each requested profile and distills every run into one
:class:`~repro.defense.matrix.DefenseRow`:

- the fleet boots the profile's kernel via the campaign engine's
  provisioning hook;
- a :class:`ScrapeDelayHook` models attacker latency at the teardown
  hook: after each wave terminates, the kernel runs
  *scrape_delay_ticks* scheduler ticks, during which the asynchronous
  scrub daemon races the attacker — the window of vulnerability;
- an optional weight-theft probe runs the fine-tuned-weight attack
  (:mod:`repro.attack.weights`) against one victim under the same
  kernel config, scoring how much of a private model survives the
  profile.

Offline prep happens once, on a vulnerable reference board — the
adversary profiles on hardware they control; only the victims' fleet
is defended.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

from repro.attack.addressing import AddressHarvester
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper
from repro.attack.weights import (
    WeightExtractor,
    WeightLayoutProfile,
    profile_weight_layout,
)
from repro.campaign.engine import prepare_offline, run_campaign
from repro.campaign.report import CampaignReport
from repro.campaign.schedule import CampaignSpec
from repro.defense.matrix import DefenseMatrix, DefenseRow
from repro.defense.profiles import DefenseConfig, DEFAULT_SWEEP, defense_profile
from repro.errors import AttackError, EmptyMetricError, PermissionDeniedError
from repro.evaluation.metrics import window_hit_rate
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.kernel import KernelConfig, PetaLinuxKernel
from repro.vitis.xmodel import XModel
from repro.vitis.zoo import build_model, fine_tune

WEIGHT_PROBE_SEED = 9
"""Seed of the fine-tuned private weights the probe tries to steal."""


class ScrapeDelayHook:
    """Teardown hook modelling the attacker's scrape latency.

    Called once per wave (per board, possibly from several worker
    threads): runs *delay_ticks* scheduler ticks so the background
    scrubber gets its window, and keeps the latest per-kernel
    sanitizer snapshot so the arena can report async scrub work and
    the backlog left when the campaign ended.
    """

    def __init__(self, delay_ticks: int) -> None:
        if delay_ticks < 0:
            raise ValueError(
                f"delay_ticks must be non-negative, got {delay_ticks}"
            )
        self.delay_ticks = delay_ticks
        self._lock = threading.Lock()
        self._snapshots: dict[int, tuple[int, int]] = {}

    def __call__(self, kernel: PetaLinuxKernel) -> None:
        kernel.tick(self.delay_ticks)
        with self._lock:
            self._snapshots[id(kernel)] = (
                kernel.sanitizer.stats.frames_scrubbed_async,
                kernel.sanitizer.pending,
            )

    @property
    def frames_scrubbed_async(self) -> int:
        """Frames the background daemons scrubbed, fleet-wide."""
        with self._lock:
            return sum(frames for frames, _ in self._snapshots.values())

    @property
    def scrub_backlog(self) -> int:
        """Frames still queued when each board's last wave ended."""
        with self._lock:
            return sum(pending for _, pending in self._snapshots.values())


def prepare_weight_probe(
    model_name: str = "resnet50_pt", input_hw: int = 32
) -> tuple["WeightLayoutProfile", "XModel"]:
    """The probe's offline half: buffer layout + a private fine-tune.

    Both are profile-independent (the layout is profiled on a
    vulnerable reference board the adversary controls), so an arena
    sweep prepares them once and reuses them for every profile.
    """
    reference = BoardSession.boot(input_hw=input_hw)
    layout = profile_weight_layout(
        reference.attacker_shell, model_name, input_hw=input_hw
    )
    private = fine_tune(
        build_model(model_name, input_hw=input_hw), seed=WEIGHT_PROBE_SEED
    )
    return layout, private


def probe_weight_theft(
    kernel_config: KernelConfig,
    model_name: str = "resnet50_pt",
    input_hw: int = 32,
    delay_ticks: int = 0,
    prepared: tuple["WeightLayoutProfile", "XModel"] | None = None,
) -> float:
    """Steal a fine-tuned model's weights under one kernel config.

    Returns the recovered match fraction against the victim's private
    weights: 1.0 on the vulnerable default, 0.0 when the profile
    blocks extraction or scrubs the residue.  *prepared* is the output
    of :func:`prepare_weight_probe`; omitted, it is built on the spot.
    """
    layout, private = prepared or prepare_weight_probe(
        model_name, input_hw=input_hw
    )
    session = BoardSession.boot(config=kernel_config, input_hw=input_hw)
    run = session.victim_application().launch(model_name, model=private)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    scraper = MemoryScraper(
        session.attacker_shell.devmem_tool,
        session.attacker_shell.user,
        AttackConfig(coalesce_reads=True),
    )
    try:
        harvested = harvester.harvest(run.pid)
        run.terminate()
        session.kernel.tick(delay_ticks)
        dump = scraper.scrape(harvested)
        stolen = WeightExtractor(layout).extract(dump)
        return stolen.match_fraction(private)
    except (AttackError, PermissionDeniedError):
        return 0.0


def summarize_run(
    profile: DefenseConfig,
    report: CampaignReport,
    hook: ScrapeDelayHook,
    weight_theft_match: float | None,
) -> DefenseRow:
    """Distill one profile's campaign into a matrix row.

    A zero-victim run has a defined answer here: nothing was attacked,
    so nothing was scraped inside the window — the
    :class:`~repro.errors.EmptyMetricError` the rate metric raises is
    caught and reported as 0.0 instead of crashing summarization.
    """
    outcomes = report.outcomes
    try:
        hit_rate = window_hit_rate([o.residue_nbytes for o in outcomes])
    except EmptyMetricError:
        hit_rate = 0.0
    return DefenseRow(
        profile=profile.name,
        defenses=profile.describe(),
        victims=report.victims,
        success_rate=report.success_rate,
        identification_rate=report.identification_rate,
        image_recovery_rate=report.image_recovery_rate,
        residue_bytes=sum(o.residue_nbytes for o in outcomes),
        bytes_scraped=sum(o.nbytes for o in outcomes),
        window_hit_rate=hit_rate,
        weight_theft_match=weight_theft_match,
        teardown_seconds=sum(o.teardown_seconds for o in outcomes),
        frames_scrubbed_sync=sum(o.frames_scrubbed_sync for o in outcomes),
        frames_scrubbed_async=hook.frames_scrubbed_async,
        scrub_backlog=hook.scrub_backlog,
        wall_seconds=report.wall_seconds,
    )


def run_defense_arena(
    spec: CampaignSpec,
    profiles: Sequence[str | DefenseConfig] = DEFAULT_SWEEP,
    scrape_delay_ticks: int = 2,
    weight_theft: bool = True,
) -> DefenseMatrix:
    """Sweep *profiles* over one campaign spec; returns the matrix.

    Profiles may be names (``"zero_on_free"``,
    ``"scrub_pool+pinned_xen"``) or :class:`DefenseConfig` instances
    (e.g. a scrub-rate sweep).  Every profile attacks the identical
    schedule with identical offline prep, so rows differ only in the
    defense.
    """
    if not profiles:
        raise ValueError("no profiles to sweep")
    resolved = [
        profile if isinstance(profile, DefenseConfig) else defense_profile(profile)
        for profile in profiles
    ]
    names = [profile.name for profile in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate profiles in sweep: {names}")
    prep_profiles, database = prepare_offline(spec)
    probe_prep = (
        prepare_weight_probe(input_hw=spec.input_hw) if weight_theft else None
    )
    rows = []
    for profile in resolved:
        config = profile.kernel_config(spec)
        hook = ScrapeDelayHook(scrape_delay_ticks)
        report = run_campaign(
            spec,
            profiles=prep_profiles,
            database=database,
            kernel_config=config,
            teardown_hook=hook,
        )
        match = (
            probe_weight_theft(
                config,
                input_hw=spec.input_hw,
                delay_ticks=scrape_delay_ticks,
                prepared=probe_prep,
            )
            if weight_theft
            else None
        )
        rows.append(summarize_run(profile, report, hook, match))
    return DefenseMatrix(
        spec=spec, scrape_delay_ticks=scrape_delay_ticks, rows=rows
    )
