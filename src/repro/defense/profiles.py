"""Named hardening profiles — composable countermeasure bundles.

A :class:`DefenseConfig` composes the three defense axes the paper's
related work discusses into one named profile:

- **sanitize policy** (+ scrub-daemon rate) — what happens to a dead
  process's frames (:mod:`repro.petalinux.sanitizer`);
- **ASLR strength** — physical and/or virtual layout randomization
  (:mod:`repro.petalinux.aslr`);
- **Xen domain pinning** — whether a hypervisor confines each user's
  physical reads to their own domain, or passes ``/dev/mem`` through
  like the PetaLinux-generated default (:mod:`repro.petalinux.xen`).

Elementary profiles (``none``, ``zero_on_free``, ``scrub_pool``,
``aslr``, ``pinned_xen``, ``passthrough_xen``) compose with ``+``:
``defense_profile("scrub_pool+pinned_xen")`` is a board that both
scrubs asynchronously and pins domains.  ``full`` is the everything-on
bundle.  :meth:`DefenseConfig.kernel_config` lowers a profile onto the
:class:`~repro.petalinux.kernel.KernelConfig` every fleet board boots
with — the provisioning-time half of the campaign's defense hook.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.campaign.fleet import tenant_uids
from repro.campaign.schedule import CampaignSpec
from repro.hw.board import BOARDS
from repro.hw.dram import PAGE_SIZE
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.kernel import DEFAULT_RESERVED_FRAMES, KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy
from repro.petalinux.xen import XenDeployment, XenDomain

ATTACKER_UID = 1001
"""The standard attacker account (``pts/0``) every session logs in."""

MAX_FRAMES_PER_DOMAIN = 0x4000
"""Upper bound on a guest domain's window (64 MiB) so a fleet of
mixed-tenant boards always fits below the smallest board's DRAM."""


class XenPolicy(enum.Enum):
    """How (whether) the hypervisor partitions physical memory."""

    NONE = "none"
    """Bare PetaLinux — no hypervisor at all (the paper's testbed)."""
    PASSTHROUGH = "passthrough"
    """Xen present but the user-generated default config passes
    ``/dev/mem`` through — domains exist, nothing is enforced.  The
    "gaping security hole" of paper §I and the Resurrection Attack's
    starting point."""
    PINNED = "pinned"
    """A properly administered deployment: every domain pinned to its
    physical window, cross-domain reads rejected."""


@dataclass(frozen=True)
class DefenseConfig:
    """One named bundle of countermeasures for the defense arena."""

    name: str
    sanitize_policy: SanitizePolicy = SanitizePolicy.NONE
    scrub_rate_per_tick: int = 64
    """Frames the background daemon scrubs per scheduler tick (only
    meaningful under ``SCRUB_POOL``)."""
    physical_aslr: bool = False
    virtual_aslr: bool = False
    aslr_seed: int = 3
    xen: XenPolicy = XenPolicy.NONE
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.scrub_rate_per_tick <= 0:
            raise ValueError(
                f"scrub_rate_per_tick must be positive, "
                f"got {self.scrub_rate_per_tick}"
            )

    # -- composition ---------------------------------------------------------

    def compose(self, other: "DefenseConfig") -> "DefenseConfig":
        """Merge two profiles into one (``a+b`` in profile syntax).

        Axes must not conflict: two different non-``NONE`` sanitize
        policies, or pinned vs passthrough Xen, cannot be combined.
        """
        if (
            self.sanitize_policy is not SanitizePolicy.NONE
            and other.sanitize_policy is not SanitizePolicy.NONE
            and self.sanitize_policy is not other.sanitize_policy
        ):
            raise ValueError(
                f"profiles {self.name!r} and {other.name!r} set "
                f"conflicting sanitize policies"
            )
        if (
            self.sanitize_policy is SanitizePolicy.SCRUB_POOL
            and other.sanitize_policy is SanitizePolicy.SCRUB_POOL
            and self.scrub_rate_per_tick != other.scrub_rate_per_tick
        ):
            raise ValueError(
                f"profiles {self.name!r} and {other.name!r} set "
                f"conflicting scrub rates"
            )
        if (
            self.xen is not XenPolicy.NONE
            and other.xen is not XenPolicy.NONE
            and self.xen is not other.xen
        ):
            raise ValueError(
                f"profiles {self.name!r} and {other.name!r} set "
                f"conflicting Xen policies"
            )
        self_aslr = self.physical_aslr or self.virtual_aslr
        other_aslr = other.physical_aslr or other.virtual_aslr
        if self_aslr and other_aslr and self.aslr_seed != other.aslr_seed:
            raise ValueError(
                f"profiles {self.name!r} and {other.name!r} set "
                f"conflicting ASLR seeds"
            )
        sanitize = (
            other.sanitize_policy
            if self.sanitize_policy is SanitizePolicy.NONE
            else self.sanitize_policy
        )
        # The scrub rate and the ASLR seed follow whichever side owns
        # the axis, so a custom rate/seed survives composition with a
        # profile that leaves that axis alone.
        scrub_rate = (
            self.scrub_rate_per_tick
            if self.sanitize_policy is SanitizePolicy.SCRUB_POOL
            else other.scrub_rate_per_tick
            if other.sanitize_policy is SanitizePolicy.SCRUB_POOL
            else self.scrub_rate_per_tick
        )
        aslr_seed = other.aslr_seed if other_aslr and not self_aslr else self.aslr_seed
        return DefenseConfig(
            name=f"{self.name}+{other.name}",
            sanitize_policy=sanitize,
            scrub_rate_per_tick=scrub_rate,
            physical_aslr=self.physical_aslr or other.physical_aslr,
            virtual_aslr=self.virtual_aslr or other.virtual_aslr,
            aslr_seed=aslr_seed,
            xen=other.xen if self.xen is XenPolicy.NONE else self.xen,
            description="; ".join(
                part for part in (self.description, other.description) if part
            ),
        )

    # -- lowering ------------------------------------------------------------

    def kernel_config(self, spec: CampaignSpec) -> KernelConfig:
        """The :class:`KernelConfig` every board of *spec*'s fleet boots.

        Only the axes this profile owns are hardened; the paper's
        procfs/pagemap/devmem holes stay open so the arena measures
        what sanitization, ASLR, and domain pinning achieve *on their
        own* against the full four-step attack.
        """
        return KernelConfig(
            sanitize_policy=self.sanitize_policy,
            scrub_rate_per_tick=self.scrub_rate_per_tick,
            randomization=LayoutRandomization(
                physical=self.physical_aslr,
                virtual=self.virtual_aslr,
                seed=self.aslr_seed,
            ),
            xen=self._deployment(spec),
        )

    def _deployment(self, spec: CampaignSpec) -> XenDeployment | None:
        if self.xen is XenPolicy.NONE:
            return None
        return campaign_deployment(
            tenant_uids(spec),
            dev_mem_passthrough=self.xen is XenPolicy.PASSTHROUGH,
            total_frames=_min_fleet_frames(spec),
        )

    def describe(self) -> str:
        """Short human-readable summary for matrix rows."""
        parts = [f"sanitize={self.sanitize_policy.value}"]
        if self.sanitize_policy is SanitizePolicy.SCRUB_POOL:
            parts.append(f"rate={self.scrub_rate_per_tick}/tick")
        aslr = []
        if self.physical_aslr:
            aslr.append("phys")
        if self.virtual_aslr:
            aslr.append("virt")
        parts.append("aslr=" + ("+".join(aslr) if aslr else "off"))
        parts.append(f"xen={self.xen.value}")
        return ", ".join(parts)


def _min_fleet_frames(spec: CampaignSpec) -> int:
    """Frame count of the smallest board the fleet mixes in."""
    return min(
        BOARDS[name].dram_size // PAGE_SIZE for name in spec.board_names
    )


def campaign_deployment(
    victim_uids: tuple[int, ...],
    dev_mem_passthrough: bool,
    total_frames: int,
    base_frame: int = DEFAULT_RESERVED_FRAMES,
    attacker_uid: int = ATTACKER_UID,
) -> XenDeployment:
    """A Xen deployment sized for one campaign board.

    One domain for the attacker's login plus one per victim tenant,
    side by side above the kernel-reserved frames.  Windows shrink to
    fit *total_frames* (the smallest board in the fleet mix) so the
    same deployment boots on every fleet member.
    """
    domain_count = 1 + len(victim_uids)
    available = total_frames - base_frame
    frames_per_domain = min(MAX_FRAMES_PER_DOMAIN, available // domain_count)
    if frames_per_domain <= 0:
        raise ValueError(
            f"{domain_count} domains do not fit in {available:#x} frames"
        )
    domains = [
        XenDomain(
            name="domU-attacker",
            uids=frozenset({attacker_uid}),
            frame_start=base_frame,
            frame_end=base_frame + frames_per_domain,
        )
    ]
    for index, uid in enumerate(victim_uids):
        start = base_frame + (1 + index) * frames_per_domain
        domains.append(
            XenDomain(
                name=f"domU-tenant{index}",
                uids=frozenset({uid}),
                frame_start=start,
                frame_end=start + frames_per_domain,
            )
        )
    return XenDeployment(
        domains=domains, dev_mem_passthrough=dev_mem_passthrough
    )


# -- the named profile registry -----------------------------------------------

_ELEMENTARY = {
    "none": DefenseConfig(
        name="none",
        description="the vulnerable PetaLinux default the paper measured",
    ),
    "zero_on_free": DefenseConfig(
        name="zero_on_free",
        sanitize_policy=SanitizePolicy.ZERO_ON_FREE,
        description="synchronous per-page scrub at teardown",
    ),
    "scrub_pool": DefenseConfig(
        name="scrub_pool",
        sanitize_policy=SanitizePolicy.SCRUB_POOL,
        description="asynchronous background scrubber (window of "
        "vulnerability)",
    ),
    "aslr": DefenseConfig(
        name="aslr",
        physical_aslr=True,
        virtual_aslr=True,
        description="physical + virtual layout randomization",
    ),
    "pinned_xen": DefenseConfig(
        name="pinned_xen",
        xen=XenPolicy.PINNED,
        description="Xen domains pinned to physical windows, "
        "cross-domain reads rejected",
    ),
    "passthrough_xen": DefenseConfig(
        name="passthrough_xen",
        xen=XenPolicy.PASSTHROUGH,
        description="Xen present but /dev/mem passed through — the "
        "misconfiguration the paper found",
    ),
}

PROFILE_NAMES = tuple(sorted(_ELEMENTARY)) + ("full",)
"""Every predefined profile name (``+``-compositions not enumerated)."""

DEFAULT_SWEEP = ("none", "zero_on_free", "scrub_pool", "aslr", "pinned_xen")
"""The profiles ``repro defense sweep`` runs by default."""


DEFAULT_SCRUB_RATES = (16, 64, 256)
"""Scrub-daemon rates (frames/tick) :func:`defense_config_space`
enumerates for the asynchronous scrubber axis."""


def defense_config_space(
    scrub_rates: tuple[int, ...] = DEFAULT_SCRUB_RATES,
) -> tuple[DefenseConfig, ...]:
    """Every combination of the defense axes, as concrete configs.

    The named-profile list (:data:`DEFAULT_SWEEP`) samples a few
    hand-picked points; the Pareto sweep (:mod:`repro.explore.pareto`)
    instead walks this full cross product — sanitize policy (off,
    synchronous zero-on-free, or the background scrubber at each of
    *scrub_rates*) × ASLR (off / physical+virtual) × Xen (absent /
    pinned) — and keeps only the non-dominated frontier.  Names are
    canonical ``+``-joined axis labels (``scrub_pool@16+aslr``), with
    the all-off corner named ``none``, and the enumeration order is
    deterministic so downstream reports stay byte-stable.

    >>> len(defense_config_space((16, 64)))
    16
    >>> defense_config_space()[0].name
    'none'
    """
    if not scrub_rates:
        raise ValueError("scrub_rates must be non-empty")
    if any(rate <= 0 for rate in scrub_rates):
        raise ValueError(f"scrub rates must be positive, got {scrub_rates}")
    if len(set(scrub_rates)) != len(scrub_rates):
        raise ValueError(f"duplicate scrub rates: {scrub_rates}")
    sanitize_axis: list[tuple[str, SanitizePolicy, int]] = [
        ("", SanitizePolicy.NONE, 64),
        ("zero_on_free", SanitizePolicy.ZERO_ON_FREE, 64),
    ] + [
        (f"scrub_pool@{rate}", SanitizePolicy.SCRUB_POOL, rate)
        for rate in scrub_rates
    ]
    configs = []
    for label, policy, rate in sanitize_axis:
        for aslr in (False, True):
            for xen in (XenPolicy.NONE, XenPolicy.PINNED):
                parts = [
                    part
                    for part in (
                        label,
                        "aslr" if aslr else "",
                        "pinned_xen" if xen is XenPolicy.PINNED else "",
                    )
                    if part
                ]
                configs.append(
                    DefenseConfig(
                        name="+".join(parts) or "none",
                        sanitize_policy=policy,
                        scrub_rate_per_tick=rate,
                        physical_aslr=aslr,
                        virtual_aslr=aslr,
                        xen=xen,
                        description="config-space point",
                    )
                )
    return tuple(configs)


def defense_profile(name: str) -> DefenseConfig:
    """Resolve a profile name, composing ``a+b+...`` syntax.

    >>> defense_profile("zero_on_free").sanitize_policy
    <SanitizePolicy.ZERO_ON_FREE: 'zero_on_free'>
    >>> combo = defense_profile("scrub_pool+pinned_xen")
    >>> (combo.sanitize_policy.value, combo.xen.value)
    ('scrub_pool', 'pinned')
    """
    if name == "full":
        composed = defense_profile("zero_on_free+aslr+pinned_xen")
        return replace(
            composed, name="full", description="every axis hardened at once"
        )
    parts = [part.strip() for part in name.split("+")]
    try:
        configs = [_ELEMENTARY[part] for part in parts]
    except KeyError as error:
        raise ValueError(
            f"unknown defense profile {error.args[0]!r}; known: "
            f"{', '.join(PROFILE_NAMES)}"
        ) from None
    profile = configs[0]
    for other in configs[1:]:
        profile = profile.compose(other)
    return profile
