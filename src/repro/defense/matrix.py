"""The defense matrix — leakage versus overhead, per hardening profile.

One :class:`DefenseRow` summarizes a full fleet campaign executed under
one :class:`~repro.defense.profiles.DefenseConfig`: what still leaked
(success rates, nonzero residue bytes, the weight-theft probe, the
window-of-vulnerability hit rate) against what the defense cost
(teardown latency, sync/async scrub work, backlog left behind).
:class:`DefenseMatrix` collects the rows of one arena sweep, computes
leakage reduction against the baseline profile, serializes to JSON
(``repro defense sweep -o matrix.json`` / ``repro defense report``),
and renders both a fixed-width text table and a markdown table for the
docs.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

from repro.campaign.schedule import CampaignSpec
from repro.evaluation.metrics import leakage_reduction

_NON_FINITE = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}
"""JSON-safe sentinel strings for the float values ``json.dumps`` would
otherwise emit as bare (invalid-JSON) tokens.  Rows built from
zero-victim runs or hand-computed rates can carry them; the round trip
preserves them explicitly instead of corrupting ``report.json``."""


def _encode_value(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, str) and value in _NON_FINITE:
        return _NON_FINITE[value]
    return value


def _is_non_finite(value: float | None) -> bool:
    return value is not None and not math.isfinite(value)


@dataclass(frozen=True)
class DefenseRow:
    """One profile's leakage-vs-overhead summary across the fleet."""

    profile: str
    defenses: str
    """Human-readable axis summary (``DefenseConfig.describe()``)."""
    victims: int
    success_rate: float
    """Fraction of victims that leaked anything (model or image)."""
    identification_rate: float
    image_recovery_rate: float
    residue_bytes: int
    """Nonzero bytes recovered fleet-wide — the raw leakage."""
    bytes_scraped: int
    """Dump bytes read (scrubbed or not); the denominator of
    :attr:`residue_fraction`."""
    window_hit_rate: float
    """Fraction of victims scraped while residue still survived."""
    weight_theft_match: float | None
    """Match fraction of the fine-tuned-weight-theft probe under this
    profile (0.0 = private weights safe, 1.0 = fully stolen), or
    ``None`` when the sweep skipped the probe (rendered as ``-``)."""
    teardown_seconds: float
    """Total wall time the kernels spent terminating victims — where
    synchronous scrubbing charges its latency."""
    frames_scrubbed_sync: int
    frames_scrubbed_async: int
    scrub_backlog: int
    """Frames still waiting for the background scrubber when the
    campaign ended — residue a later attacker could still scrape."""
    wall_seconds: float

    @property
    def residue_fraction(self) -> float:
        """Recovered residue as a fraction of everything scraped."""
        if self.bytes_scraped == 0:
            return 0.0
        return self.residue_bytes / self.bytes_scraped


@dataclass
class DefenseMatrix:
    """Every profile of one arena sweep, ready to compare."""

    spec: CampaignSpec
    scrape_delay_ticks: int
    """Attacker latency between wave teardown and extraction — the
    scheduler ticks the async scrubber gets to close the window."""
    rows: list[DefenseRow]

    def row(self, profile: str) -> DefenseRow:
        """The row for *profile*; raises ``KeyError`` if absent."""
        for row in self.rows:
            if row.profile == profile:
                return row
        raise KeyError(f"no profile {profile!r} in matrix")

    @property
    def baseline(self) -> DefenseRow:
        """The undefended reference — the ``none`` row if present,
        else the first row of the sweep."""
        for row in self.rows:
            if row.profile == "none":
                return row
        return self.rows[0]

    def leakage_reduction_of(self, profile: str) -> float:
        """How much of the baseline's leaked residue *profile* removed."""
        return leakage_reduction(
            float(self.baseline.residue_bytes),
            float(self.row(profile).residue_bytes),
        )

    # -- rendering -----------------------------------------------------------

    _COLUMNS = (
        ("profile", "<22"),
        ("leak%", ">6"),
        ("ident%", ">6"),
        ("image%", ">6"),
        ("residue KiB", ">11"),
        ("window%", ">7"),
        ("weights%", ">8"),
        ("teardown ms", ">11"),
        ("scrub s/a", ">11"),
        ("backlog", ">7"),
    )

    @staticmethod
    def _percent(value: float | None) -> str:
        """A rate cell; ``None`` and non-finite rates render as ``-``.

        A ``nan%`` (or ``inf%``) in the table reads like data; an
        undefined rate — a zero-victim run, a degenerate sweep — is
        rendered as explicitly absent instead.
        """
        if value is None or _is_non_finite(value):
            return "-"
        return f"{value:.0%}"

    def _cells(self, row: DefenseRow) -> list[str]:
        return [
            row.profile,
            self._percent(row.success_rate),
            self._percent(row.identification_rate),
            self._percent(row.image_recovery_rate),
            f"{row.residue_bytes / 1024:.1f}",
            self._percent(row.window_hit_rate),
            self._percent(row.weight_theft_match),
            (
                "-"
                if _is_non_finite(row.teardown_seconds)
                else f"{row.teardown_seconds * 1000:.2f}"
            ),
            f"{row.frames_scrubbed_sync}/{row.frames_scrubbed_async}",
            str(row.scrub_backlog),
        ]

    def render(self) -> str:
        """The fixed-width table ``repro defense sweep`` prints."""
        lines = [
            "=== Defense matrix ===",
            (
                f"fleet: {self.spec.boards} boards, {self.spec.victims} "
                f"victims, seed {self.spec.seed}; attacker scrapes "
                f"{self.scrape_delay_ticks} tick(s) after teardown"
            ),
            " ".join(
                f"{title:{align}}" for title, align in self._COLUMNS
            ),
        ]
        for row in self.rows:
            lines.append(
                " ".join(
                    f"{cell:{align}}"
                    for cell, (_, align) in zip(
                        self._cells(row), self._COLUMNS
                    )
                )
            )
        baseline = self.baseline
        if baseline.residue_bytes:
            lines.append("")
            for row in self.rows:
                if row.profile == baseline.profile:
                    continue
                lines.append(
                    f"{row.profile}: "
                    f"{self.leakage_reduction_of(row.profile):.1%} of the "
                    f"baseline residue eliminated"
                )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The same matrix as a GitHub-flavored markdown table."""
        header = [title for title, _ in self._COLUMNS]
        lines = [
            "| " + " | ".join(header) + " |",
            "| " + " | ".join("---" for _ in header) + " |",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(self._cells(row)) + " |")
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the matrix (spec and all rows) to JSON.

        Non-finite rates are encoded as the explicit sentinel strings
        of :data:`_NON_FINITE` and ``allow_nan`` is off, so the output
        is always *valid* JSON — never a bare ``NaN`` token that only
        Python's parser accepts — and :meth:`from_json` restores the
        original floats exactly.
        """
        return json.dumps(
            {
                "spec": asdict(self.spec),
                "scrape_delay_ticks": self.scrape_delay_ticks,
                "rows": [
                    {
                        key: _encode_value(value)
                        for key, value in asdict(row).items()
                    }
                    for row in self.rows
                ],
            },
            indent=2,
            sort_keys=True,
            allow_nan=False,
        )

    @classmethod
    def from_json(cls, text: str) -> "DefenseMatrix":
        """Rebuild a matrix from :meth:`to_json` output."""
        payload = json.loads(text)
        spec_fields = dict(payload["spec"])
        for key in ("model_mix", "board_names"):
            spec_fields[key] = tuple(spec_fields[key])
        return cls(
            spec=CampaignSpec(**spec_fields),
            scrape_delay_ticks=payload["scrape_delay_ticks"],
            rows=[
                DefenseRow(
                    **{
                        key: _decode_value(value)
                        for key, value in record.items()
                    }
                )
                for record in payload["rows"]
            ],
        )
