"""Attack/defense co-evaluation — the countermeasure arena.

The paper's closing argument (echoed by the *Resurrection Attack* and
quantified by *Pentimento*) is that memory scraping persists because
countermeasures are absent or misconfigured.  This package turns that
argument into an experiment: compose countermeasures into named
hardening profiles, run the full fleet campaign of :mod:`repro.campaign`
under each, and tabulate leakage against overhead.

- :mod:`repro.defense.profiles` — :class:`DefenseConfig` composing
  sanitize policy (+ scrub-daemon tuning), ASLR strength, and Xen
  domain pinning; named profiles with ``a+b`` composition;
- :mod:`repro.defense.arena` — :func:`run_defense_arena`: one campaign
  per profile through the engine's defense-injection hooks, plus the
  fine-tuned-weight-theft probe;
- :mod:`repro.defense.matrix` — :class:`DefenseMatrix` /
  :class:`DefenseRow`: leakage-vs-overhead rows, JSON round-trip,
  text and markdown renderers.

Quick use (also exposed as ``repro defense sweep``):

>>> from repro.campaign import CampaignSpec
>>> from repro.defense import run_defense_arena
>>> matrix = run_defense_arena(
...     CampaignSpec(boards=1, victims=1, model_mix=("resnet50_pt",)),
...     profiles=("none", "zero_on_free"),
...     weight_theft=False,
... )
>>> [row.success_rate for row in matrix.rows]
[1.0, 0.0]
>>> matrix.row("zero_on_free").residue_bytes
0
"""

from repro.defense.arena import (
    ScrapeDelayHook,
    prepare_weight_probe,
    probe_weight_theft,
    run_defense_arena,
    summarize_run,
)
from repro.defense.matrix import DefenseMatrix, DefenseRow
from repro.defense.profiles import (
    DEFAULT_SCRUB_RATES,
    DEFAULT_SWEEP,
    PROFILE_NAMES,
    DefenseConfig,
    XenPolicy,
    campaign_deployment,
    defense_config_space,
    defense_profile,
)

__all__ = [
    "DEFAULT_SCRUB_RATES",
    "DEFAULT_SWEEP",
    "PROFILE_NAMES",
    "DefenseConfig",
    "DefenseMatrix",
    "DefenseRow",
    "ScrapeDelayHook",
    "XenPolicy",
    "prepare_weight_probe",
    "campaign_deployment",
    "defense_config_space",
    "defense_profile",
    "probe_weight_theft",
    "run_defense_arena",
    "summarize_run",
]
