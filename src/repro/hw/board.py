"""Board descriptions for the two evaluation targets of the paper.

The attack was demonstrated on the ZCU104 and re-verified on the ZCU102
(paper §I-C).  A :class:`BoardSpec` carries everything the simulation
needs to instantiate a software twin of the board.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.dram import PowerUpFill
from repro.utils.units import parse_size


@dataclass(frozen=True)
class BoardSpec:
    """Static description of an evaluation board."""

    name: str
    family: str
    dram_size: int
    apu: str
    apu_cores: int
    rpu: str
    gpu: str
    process_node: str
    powerup_fill: PowerUpFill = PowerUpFill.ZEROS

    def __post_init__(self) -> None:
        if self.dram_size <= 0:
            raise ValueError(f"dram_size must be positive, got {self.dram_size}")
        if self.apu_cores <= 0:
            raise ValueError(f"apu_cores must be positive, got {self.apu_cores}")

    def describe(self) -> str:
        """One-paragraph hardware summary, mirroring the paper's §I-C."""
        return (
            f"{self.name} ({self.family}): {self.apu_cores}-core {self.apu} APU, "
            f"{self.rpu} RPU, {self.gpu} GPU, "
            f"{self.dram_size // 1024**2} MiB PS DDR4, {self.process_node}"
        )


ZCU104 = BoardSpec(
    name="ZCU104",
    family="Zynq UltraScale+ MPSoC",
    dram_size=parse_size("2GiB"),
    apu="ARM Cortex-A53",
    apu_cores=4,
    rpu="dual-core Cortex-R5",
    gpu="Mali-400 MP2",
    process_node="16nm FinFET+",
)

ZCU102 = BoardSpec(
    name="ZCU102",
    family="Zynq UltraScale+ MPSoC",
    dram_size=parse_size("4GiB"),
    apu="ARM Cortex-A53",
    apu_cores=4,
    rpu="dual-core Cortex-R5",
    gpu="Mali-400 MP2",
    process_node="16nm FinFET+",
)

BOARDS = {board.name: board for board in (ZCU104, ZCU102)}


def board_by_name(name: str) -> BoardSpec:
    """Look a board up by name (``"ZCU104"``/``"ZCU102"``)."""
    try:
        return BOARDS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown board {name!r}; known boards: {sorted(BOARDS)}"
        ) from None


def fleet_specs(count: int, names: tuple[str, ...] | None = None) -> list[BoardSpec]:
    """Board specs for an *count*-board fleet, cycling through *names*.

    The campaign provisioner uses this to mix evaluation targets the
    way a cloud-FPGA region mixes instance types — e.g. 4 boards over
    ``("ZCU104", "ZCU102")`` gives two of each.
    """
    if count <= 0:
        raise ValueError(f"fleet needs at least one board, got {count}")
    pool = [board_by_name(name) for name in names] if names else list(
        BOARDS[name] for name in sorted(BOARDS)
    )
    return [pool[index % len(pool)] for index in range(count)]
