"""The DPU accelerator core (modelled after the DPUCZDX8G).

On the real board, the Vitis AI runtime hands the DPU a compiled
xmodel subgraph plus DMA descriptors pointing at physically scattered
input/output buffers in the PS DRAM.  Our twin keeps that split:

- the DPU is a *gather → execute → scatter* engine over physical DRAM,
- the "execute" step is delegated to a kernel object compiled by the
  Vitis layer (:mod:`repro.vitis.runner`), keeping the hardware layer
  free of ML specifics.

What matters to the attack is the DMA behaviour: tensors really do
land in DRAM at the physical frames the victim's page table names, and
they stay there after the job completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.hw.soc import ZynqMpSoC


class DpuKernel(Protocol):
    """Anything the DPU can execute: a compiled subgraph."""

    def execute(self, input_blob: bytes) -> bytes:
        """Map the gathered input bytes to output bytes."""
        ...

    @property
    def macs(self) -> int:
        """Multiply-accumulate count, used for the cycle estimate."""
        ...


Segment = tuple[int, int]
"""A DMA descriptor: (physical address, length in bytes)."""


@dataclass
class DpuJob:
    """One inference job: scatter-gather lists plus the kernel."""

    kernel: DpuKernel
    input_segments: list[Segment]
    output_segments: list[Segment]

    def input_length(self) -> int:
        """Total gathered input size in bytes."""
        return sum(length for _, length in self.input_segments)

    def output_capacity(self) -> int:
        """Total scatter capacity in bytes."""
        return sum(length for _, length in self.output_segments)


@dataclass
class DpuStats:
    """Per-core counters for the performance benches."""

    jobs_completed: int = 0
    bytes_gathered: int = 0
    bytes_scattered: int = 0
    total_macs: int = 0


@dataclass
class DpuCore:
    """One DPU core attached to the SoC's PL region.

    ``peak_macs_per_cycle`` follows the DPUCZDX8G B4096 configuration
    (4096 MACs/cycle) and only feeds the cycle *estimate* in job
    results; the simulation is functional, not cycle-accurate.
    """

    soc: ZynqMpSoC
    peak_macs_per_cycle: int = 4096
    stats: DpuStats = field(default_factory=DpuStats)

    def run(self, job: DpuJob, on_phase: Callable[[str], None] | None = None) -> "DpuJobResult":
        """Execute *job*: gather inputs, run the kernel, scatter outputs.

        Raises ``ValueError`` if the kernel's output does not fit the
        scatter list — the DMA engine cannot invent buffer space.
        """
        if on_phase:
            on_phase("gather")
        input_blob = bytearray()
        for address, length in job.input_segments:
            input_blob += self.soc.read_physical(address, length)

        if on_phase:
            on_phase("execute")
        output_blob = job.kernel.execute(bytes(input_blob))

        if len(output_blob) > job.output_capacity():
            raise ValueError(
                f"kernel produced {len(output_blob)} bytes but the scatter "
                f"list only holds {job.output_capacity()}"
            )

        if on_phase:
            on_phase("scatter")
        cursor = 0
        for address, length in job.output_segments:
            take = min(length, len(output_blob) - cursor)
            if take <= 0:
                break
            self.soc.write_physical(address, output_blob[cursor : cursor + take])
            cursor += take

        self.stats.jobs_completed += 1
        self.stats.bytes_gathered += len(input_blob)
        self.stats.bytes_scattered += cursor
        self.stats.total_macs += job.kernel.macs
        cycles = max(1, job.kernel.macs // self.peak_macs_per_cycle)
        return DpuJobResult(
            output=bytes(output_blob), estimated_cycles=cycles, macs=job.kernel.macs
        )


@dataclass(frozen=True)
class DpuJobResult:
    """What a completed job returns to the runtime."""

    output: bytes
    estimated_cycles: int
    macs: int
