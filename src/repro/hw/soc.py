"""The Zynq UltraScale+ MPSoC: bus, DRAM, OCM, and the PL-side DPU.

The SoC object is the single gateway for *physical* memory access.
Everything above it — the kernel's frame allocator, the ``devmem``
tool, the DPU — goes through :meth:`read_physical` /
:meth:`write_physical`, which decode the global address against the
UG1085 map and route to the backing device.  This is what makes the
attack model honest: the attacker's post-mortem reads traverse exactly
the same bus path as the victim's writes did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BusError
from repro.hw.board import BoardSpec, ZCU104
from repro.hw.dram import DramDevice, PowerUpFill
from repro.hw.memmap import AddressMap, zynqmp_address_map


@dataclass
class ZynqMpSoC:
    """A software twin of one Zynq UltraScale+ MPSoC board."""

    board: BoardSpec = field(default_factory=lambda: ZCU104)
    fill: PowerUpFill | None = None
    fill_seed: int = 0

    def __post_init__(self) -> None:
        fill = self.fill if self.fill is not None else self.board.powerup_fill
        self.address_map: AddressMap = zynqmp_address_map(self.board.dram_size)
        self.dram = DramDevice(
            capacity=self.board.dram_size, fill=fill, fill_seed=self.fill_seed
        )
        ocm_region = self.address_map.region("OCM")
        self.ocm = DramDevice(capacity=ocm_region.size, fill=PowerUpFill.ZEROS)

    # -- device routing ----------------------------------------------------

    def _route(self, address: int) -> tuple[DramDevice, int]:
        region, offset = self.address_map.decode(address)
        if region.name == "DDR_LOW":
            return self.dram, offset
        if region.name == "DDR_HIGH":
            # DDR_HIGH continues where DDR_LOW left off in the same device.
            return self.dram, self.address_map.region("DDR_LOW").size + offset
        if region.name == "OCM":
            return self.ocm, offset
        raise BusError(address, f"region {region.name} is not memory-backed")

    # -- physical access ---------------------------------------------------

    def read_physical(self, address: int, length: int) -> bytes:
        """Read *length* bytes at global physical address *address*."""
        device, offset = self._route(address)
        return device.read(offset, length)

    def read_physical_into(self, address: int, out: memoryview) -> None:
        """Read ``len(out)`` bytes at *address* straight into *out*.

        Same bus path as :meth:`read_physical`, but the backing device
        fills the caller's buffer in place — the primitive the
        zero-copy extraction path builds on.
        """
        device, offset = self._route(address)
        device.read_into(offset, out)

    def write_physical(self, address: int, data: bytes) -> None:
        """Write *data* at global physical address *address*."""
        device, offset = self._route(address)
        device.write(offset, data)

    def read_word(self, address: int, word_size: int = 4) -> int:
        """Word read at a physical address — the ``devmem`` primitive."""
        device, offset = self._route(address)
        return device.read_word(offset, word_size)

    def write_word(self, address: int, value: int, word_size: int = 4) -> None:
        """Word write at a physical address."""
        device, offset = self._route(address)
        device.write_word(offset, value, word_size)

    # -- DRAM geometry helpers ----------------------------------------------

    def dram_physical_base(self) -> int:
        """Physical address where DRAM starts (DDR_LOW base)."""
        return self.address_map.region("DDR_LOW").base

    def dram_frame_to_physical(self, frame_number: int) -> int:
        """Physical address of DRAM frame *frame_number*.

        Frames beyond DDR_LOW appear in the DDR_HIGH window, matching
        the real DDR controller's address splitting.
        """
        from repro.hw.dram import PAGE_SIZE

        byte_offset = frame_number * PAGE_SIZE
        low = self.address_map.region("DDR_LOW")
        if byte_offset < low.size:
            return low.base + byte_offset
        high = self.address_map.region("DDR_HIGH")
        return high.base + (byte_offset - low.size)

    def physical_to_dram_frame(self, address: int) -> int:
        """Inverse of :meth:`dram_frame_to_physical` (page-aligned input)."""
        from repro.hw.dram import PAGE_SIZE

        device, offset = self._route(address)
        if device is not self.dram:
            raise BusError(address, "address is not DRAM-backed")
        return offset // PAGE_SIZE

    def describe(self) -> str:
        """Board summary plus the decoded address map."""
        return self.board.describe() + "\n" + self.address_map.render()
