"""The FPGA board's local DRAM.

This is the security-critical device of the paper: the PS DDR4 on the
ZCU104 retains whatever a process wrote until some other agent
overwrites it.  The model is a sparse page store — pages materialize on
first write, and reads of untouched pages return the configured
power-up fill.  Nothing in this class ever clears memory on its own;
scrubbing is an explicit operation that only the OS-level defenses
invoke.

Keeping the store sparse lets us model the full 2 GiB device of the
ZCU104 without allocating 2 GiB of host memory.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.errors import DramAddressError

PAGE_SIZE = 4096


class PowerUpFill(enum.Enum):
    """What an untouched DRAM page reads as after power-up.

    Real DDR4 powers up to effectively random values; ``ZEROS`` is the
    convenient default for tests, ``PSEUDO_RANDOM`` is deterministic
    per-page noise for experiments where distinguishing residue from
    power-up state matters.
    """

    ZEROS = "zeros"
    PSEUDO_RANDOM = "pseudo_random"


@dataclass
class DramStats:
    """Access counters, used by the throughput benchmarks."""

    bytes_read: int = 0
    bytes_written: int = 0
    pages_scrubbed: int = 0
    read_operations: int = 0
    write_operations: int = 0

    def reset(self) -> None:
        """Zero every counter (used between benchmark phases)."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.pages_scrubbed = 0
        self.read_operations = 0
        self.write_operations = 0


@dataclass
class DramDevice:
    """Sparse byte-addressable DRAM of a given capacity.

    Addresses here are *device offsets* (0 .. capacity-1); the SoC bus
    maps global physical addresses onto them.
    """

    capacity: int
    fill: PowerUpFill = PowerUpFill.ZEROS
    fill_seed: int = 0
    _pages: dict[int, bytearray] = field(default_factory=dict, repr=False)
    stats: DramStats = field(default_factory=DramStats, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.capacity % PAGE_SIZE:
            raise ValueError(
                f"capacity {self.capacity:#x} is not a multiple of the "
                f"page size {PAGE_SIZE:#x}"
            )

    # -- internal helpers ------------------------------------------------

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise DramAddressError(offset, self.capacity)

    def _powerup_page(self, page_index: int) -> bytes:
        if self.fill is PowerUpFill.ZEROS:
            return b"\x00" * PAGE_SIZE
        # Deterministic per-page noise: expand a short digest to a page.
        out = bytearray()
        counter = 0
        seed = f"{self.fill_seed}:{page_index}".encode()
        while len(out) < PAGE_SIZE:
            out += hashlib.sha256(seed + counter.to_bytes(4, "little")).digest()
            counter += 1
        return bytes(out[:PAGE_SIZE])

    def _page_for_read(self, page_index: int) -> bytes:
        page = self._pages.get(page_index)
        if page is not None:
            return page
        return self._powerup_page(page_index)

    def _page_for_write(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(self._powerup_page(page_index))
            self._pages[page_index] = page
        return page

    # -- byte access -----------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        """Read *length* bytes starting at device offset *offset*."""
        self._check_range(offset, length)
        self.stats.bytes_read += length
        self.stats.read_operations += 1
        out = bytearray()
        remaining = length
        cursor = offset
        while remaining > 0:
            page_index, in_page = divmod(cursor, PAGE_SIZE)
            take = min(remaining, PAGE_SIZE - in_page)
            out += self._page_for_read(page_index)[in_page : in_page + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def read_into(self, offset: int, out: memoryview) -> None:
        """Read ``len(out)`` bytes at *offset* directly into *out*.

        The zero-copy twin of :meth:`read`: page slices are copied
        straight into the caller's buffer (a pooled extraction buffer
        in the campaign hot path) without materializing intermediate
        ``bytes`` chunks or a join copy.  Stats count it exactly like
        one :meth:`read` of the same length.
        """
        length = len(out)
        self._check_range(offset, length)
        self.stats.bytes_read += length
        self.stats.read_operations += 1
        cursor = offset
        position = 0
        while position < length:
            page_index, in_page = divmod(cursor, PAGE_SIZE)
            take = min(length - position, PAGE_SIZE - in_page)
            page = self._page_for_read(page_index)
            out[position : position + take] = memoryview(page)[
                in_page : in_page + take
            ]
            cursor += take
            position += take

    def write(self, offset: int, data: bytes) -> None:
        """Write *data* starting at device offset *offset*."""
        self._check_range(offset, len(data))
        self.stats.bytes_written += len(data)
        self.stats.write_operations += 1
        cursor = offset
        position = 0
        while position < len(data):
            page_index, in_page = divmod(cursor, PAGE_SIZE)
            take = min(len(data) - position, PAGE_SIZE - in_page)
            page = self._page_for_write(page_index)
            page[in_page : in_page + take] = data[position : position + take]
            cursor += take
            position += take

    # -- word access (devmem granularity) ----------------------------------

    def read_word(self, offset: int, word_size: int = 4) -> int:
        """Read one little-endian word, the granularity ``devmem`` uses."""
        return int.from_bytes(self.read(offset, word_size), "little")

    def write_word(self, offset: int, value: int, word_size: int = 4) -> None:
        """Write one little-endian word."""
        if value < 0 or value >= 1 << (word_size * 8):
            raise ValueError(f"value {value:#x} does not fit in {word_size} bytes")
        self.write(offset, value.to_bytes(word_size, "little"))

    # -- scrubbing (defense hook only) -------------------------------------

    def scrub_page(self, page_index: int, pattern: int = 0x00) -> None:
        """Overwrite one page with *pattern* bytes.

        This is the primitive the zero-on-free defense uses.  The
        insecure default kernel never calls it — that absence *is* the
        paper's vulnerability.
        """
        if page_index < 0 or page_index >= self.capacity // PAGE_SIZE:
            raise DramAddressError(page_index * PAGE_SIZE, self.capacity)
        self._pages[page_index] = bytearray([pattern & 0xFF]) * PAGE_SIZE
        self.stats.pages_scrubbed += 1

    def scrub_range(self, offset: int, length: int, pattern: int = 0x00) -> None:
        """Overwrite a byte range (page-unaligned edges handled)."""
        self._check_range(offset, length)
        self.write(offset, bytes([pattern & 0xFF]) * length)
        self.stats.pages_scrubbed += (length + PAGE_SIZE - 1) // PAGE_SIZE

    # -- inspection --------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Total number of pages the device holds."""
        return self.capacity // PAGE_SIZE

    @property
    def touched_pages(self) -> int:
        """Number of pages ever written (materialized in the sparse store)."""
        return len(self._pages)

    def is_page_touched(self, page_index: int) -> bool:
        """Whether *page_index* has ever been written."""
        return page_index in self._pages
