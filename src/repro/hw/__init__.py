"""Hardware layer: DRAM, the Zynq UltraScale+ address map, boards, SoC."""

from repro.hw.board import BoardSpec, ZCU102, ZCU104
from repro.hw.dram import DramDevice, PowerUpFill
from repro.hw.dpu import DpuCore, DpuJob
from repro.hw.memmap import AddressMap, Region, zynqmp_address_map
from repro.hw.soc import ZynqMpSoC

__all__ = [
    "BoardSpec",
    "ZCU102",
    "ZCU104",
    "DramDevice",
    "PowerUpFill",
    "DpuCore",
    "DpuJob",
    "AddressMap",
    "Region",
    "zynqmp_address_map",
    "ZynqMpSoC",
]
