"""The Zynq UltraScale+ MPSoC global physical address map.

The attack's step 3 reads raw physical addresses with ``devmem``; those
addresses are positions in this map.  We model the regions that matter
for the attack plus enough neighbours that a wild read faults the way
it would on the board (a bus error rather than silently returning
zeros).

Region layout follows Xilinx UG1085 (Zynq UltraScale+ TRM):

=================  =====================  ========
region             base                   size
=================  =====================  ========
DDR_LOW            0x0000_0000            2 GiB
PL_LPD (M_AXI)     0x8000_0000            512 MiB
QSPI               0xC000_0000            512 MiB
LPS_IOU            0xFF00_0000            ~14 MiB
OCM                0xFFFC_0000            256 KiB
DDR_HIGH           0x8_0000_0000          up to 32 GiB
=================  =====================  ========

Boards with <= 2 GiB of PS DRAM (the ZCU104) back only DDR_LOW.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BusError

DDR_LOW_BASE = 0x0000_0000
DDR_LOW_SIZE = 2 * 1024**3
PL_LPD_BASE = 0x8000_0000
PL_LPD_SIZE = 512 * 1024**2
QSPI_BASE = 0xC000_0000
QSPI_SIZE = 512 * 1024**2
OCM_BASE = 0xFFFC_0000
OCM_SIZE = 256 * 1024
DDR_HIGH_BASE = 0x8_0000_0000
DDR_HIGH_SIZE = 32 * 1024**3


@dataclass(frozen=True)
class Region:
    """One window of the global address map."""

    name: str
    base: int
    size: int
    backed: bool = True

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Whether *address* falls inside this region."""
        return self.base <= address < self.end

    def offset_of(self, address: int) -> int:
        """Region-relative offset of *address* (caller checks containment)."""
        return address - self.base


class AddressMap:
    """An ordered, non-overlapping set of regions with address decode."""

    def __init__(self, regions: list[Region]) -> None:
        ordered = sorted(regions, key=lambda region: region.base)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.end > later.base:
                raise ValueError(
                    f"regions {earlier.name!r} and {later.name!r} overlap"
                )
        self._regions = ordered
        self._by_name = {region.name: region for region in ordered}
        if len(self._by_name) != len(ordered):
            raise ValueError("duplicate region names")

    @property
    def regions(self) -> list[Region]:
        """All regions, ascending by base address."""
        return list(self._regions)

    def region(self, name: str) -> Region:
        """Look a region up by name; raises ``KeyError`` if absent."""
        return self._by_name[name]

    def decode(self, address: int) -> tuple[Region, int]:
        """Map a global physical address to ``(region, offset)``.

        Raises :class:`~repro.errors.BusError` when the address decodes
        to no region — the behaviour a stray ``devmem`` would see.
        """
        for region in self._regions:
            if region.contains(address):
                return region, region.offset_of(address)
        raise BusError(address)

    def render(self) -> str:
        """Human-readable table of the map, for reports and examples."""
        lines = [f"{'region':<10} {'base':>12} {'end':>12}  backed"]
        for region in self._regions:
            lines.append(
                f"{region.name:<10} {region.base:>#12x} {region.end:>#12x}  "
                f"{'yes' if region.backed else 'no'}"
            )
        return "\n".join(lines)


def zynqmp_address_map(dram_size: int) -> AddressMap:
    """Build the Zynq UltraScale+ map for a board with *dram_size* DRAM.

    DRAM fills DDR_LOW first; any remainder appears in DDR_HIGH, which
    matches how the Zynq US+ DDR controller presents >2 GiB parts.
    """
    if dram_size <= 0:
        raise ValueError(f"dram_size must be positive, got {dram_size}")
    low_size = min(dram_size, DDR_LOW_SIZE)
    regions = [
        Region("DDR_LOW", DDR_LOW_BASE, low_size),
        Region("PL_LPD", PL_LPD_BASE, PL_LPD_SIZE, backed=False),
        Region("QSPI", QSPI_BASE, QSPI_SIZE, backed=False),
        Region("OCM", OCM_BASE, OCM_SIZE),
    ]
    high_size = dram_size - low_size
    if high_size > 0:
        if high_size > DDR_HIGH_SIZE:
            raise ValueError(f"dram_size {dram_size:#x} exceeds DDR_HIGH window")
        regions.append(Region("DDR_HIGH", DDR_HIGH_BASE, high_size))
    return AddressMap(regions)
