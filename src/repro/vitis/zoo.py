"""The model zoo — the Vitis AI library models the adversary profiles.

The paper's adversary model (§II) assumes access to the same Xilinx
model library the victim uses, and profiles each model offline.  The
zoo here provides eight models across two frameworks with realistic
names, install paths and origin strings (``torchvision/resnet50``
contains the ``hvision/resnet50`` fragment visible in the paper's
Fig. 11).

Weights are deterministic per (model, layer) so every run of any
experiment sees bit-identical model files — the precondition for
offline profiling transferring to the victim.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import UnknownModelError
from repro.vitis.ops import CompiledSubgraph, LayerSpec
from repro.vitis.xmodel import XModel

DEFAULT_INPUT_HW = 32
"""Default input edge in pixels.  Miniature by design: the attack
observes memory layout, not accuracy, and 32 px keeps inference fast.
Pass ``input_hw=224`` for the paper-scale footprint."""

NUM_CLASSES = 100


def _weights(model: str, layer: str, shape: tuple[int, ...]) -> np.ndarray:
    """Deterministic small int8 weights for one layer."""
    digest = hashlib.sha256(f"{model}/{layer}".encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return rng.integers(-8, 8, size=shape, dtype=np.int8)


def model_install_path(name: str) -> str:
    """Where Vitis AI installs the model on the board's rootfs."""
    return f"/usr/share/vitis_ai_library/models/{name}/{name}.xmodel"


def _standard_strings(name: str, origin: str, framework: str) -> list[str]:
    """The vendor strings the runtime drags into memory with the model."""
    return [
        model_install_path(name),
        origin,
        f"DPUCZDX8G_{name}_kernel_0",
        f"vitis_ai_library::{framework}::{name}",
        "subgraph_root/subgraph_quant/subgraph_deploy",
        "/usr/lib/libvart-runner.so.3.5",
        "/usr/lib/libxir.so.3.5",
    ]


def _conv(model: str, name: str, kh: int, cin: int, cout: int, stride: int = 1) -> LayerSpec:
    return LayerSpec(
        kind="conv2d",
        name=name,
        weights=_weights(model, name, (kh, kh, cin, cout)),
        stride=stride,
    )


def _resblock(model: str, name: str, cin: int, cout: int, stride: int = 1) -> LayerSpec:
    return LayerSpec(
        kind="resblock",
        name=name,
        weights=_weights(model, name + "/conv1", (3, 3, cin, cout)),
        extra_weights=_weights(model, name + "/conv2", (3, 3, cout, cout)),
        stride=stride,
    )


def _fc(model: str, name: str, cin: int, cout: int) -> LayerSpec:
    return LayerSpec(
        kind="fc", name=name, weights=_weights(model, name, (cin, cout))
    )


def _resnet_layers(model: str, stem: int, widths: tuple[int, ...]) -> list[LayerSpec]:
    layers = [
        _conv(model, "conv1", 7, 3, stem, stride=2),
        LayerSpec(kind="relu", name="relu1"),
        LayerSpec(kind="maxpool", name="pool1"),
    ]
    previous = stem
    for index, width in enumerate(widths):
        stride = 1 if index == 0 else 2
        layers.append(
            _resblock(model, f"layer{index + 1}/block0", previous, width, stride)
        )
        previous = width
    layers.append(LayerSpec(kind="gap", name="avgpool"))
    layers.append(_fc(model, "fc", previous, NUM_CLASSES))
    return layers


def _plain_cnn_layers(
    model: str, stem_kernel: int, widths: tuple[int, ...], block_prefix: str
) -> list[LayerSpec]:
    """A stem + conv/relu stack with architecture-specific block names.

    Block names mirror the real networks' graph node names (``fire`` in
    SqueezeNet, ``inception`` in GoogLeNet, ...) — they are part of the
    string footprint a model leaves in memory.
    """
    layers = [
        _conv(model, f"{block_prefix}_stem/conv", stem_kernel, 3, widths[0], stride=2),
        LayerSpec(kind="relu", name=f"{block_prefix}_stem/relu"),
        LayerSpec(kind="maxpool", name=f"{block_prefix}_stem/pool"),
    ]
    previous = widths[0]
    for index, width in enumerate(widths[1:], start=1):
        layers.append(
            _conv(model, f"{block_prefix}{index + 1}/conv", 3, previous, width)
        )
        layers.append(LayerSpec(kind="relu", name=f"{block_prefix}{index + 1}/relu"))
        previous = width
    layers.append(LayerSpec(kind="gap", name=f"{block_prefix}_head/gap"))
    layers.append(_fc(model, f"{block_prefix}_head/logits", previous, NUM_CLASSES))
    return layers


_BUILDERS = {
    "resnet50_pt": lambda: ("pytorch", "torchvision/resnet50",
                            lambda m: _resnet_layers(m, 12, (12, 16, 24, 32))),
    "resnet18_pt": lambda: ("pytorch", "torchvision/resnet18",
                            lambda m: _resnet_layers(m, 8, (8, 12, 16))),
    "squeezenet_pt": lambda: ("pytorch", "torchvision/squeezenet1_1",
                              lambda m: _plain_cnn_layers(m, 3, (10, 12, 14), "fire")),
    "vgg16_pt": lambda: ("pytorch", "torchvision/vgg16",
                         lambda m: _plain_cnn_layers(m, 3, (8, 12, 16, 16), "vggblock")),
    "inception_v1_tf": lambda: ("tensorflow", "tf_slim/inception_v1",
                                lambda m: _plain_cnn_layers(m, 7, (10, 14, 18), "inception")),
    "mobilenet_v2_tf": lambda: ("tensorflow", "tf_slim/mobilenet_v2",
                                lambda m: _plain_cnn_layers(m, 3, (8, 10, 12, 14), "invres")),
    "yolov3_voc_tf": lambda: ("tensorflow", "darknet/yolov3_voc",
                              lambda m: _plain_cnn_layers(m, 3, (12, 16, 20, 24), "darkconv")),
    "densenet121_pt": lambda: ("pytorch", "torchvision/densenet121",
                               lambda m: _plain_cnn_layers(m, 7, (6, 10, 14, 18), "denseblock")),
}

MODEL_NAMES = tuple(sorted(_BUILDERS))
"""Every model the zoo can build."""


def fine_tune(model: XModel, seed: int) -> XModel:
    """A fine-tuned variant: same architecture, private weights.

    Every weight array is redrawn from a seeded RNG, modelling a user
    who retrained a library model on proprietary data.  The buffer
    *shapes* — and therefore the runtime's heap layout — are unchanged,
    which is exactly why the weight-extraction attack transfers.
    """
    rng = np.random.default_rng(seed)
    layers = []
    for layer in model.subgraph.layers:
        weights = layer.weights
        extra = layer.extra_weights
        if weights is not None:
            weights = rng.integers(-8, 8, size=weights.shape, dtype=np.int8)
        if extra is not None:
            extra = rng.integers(-8, 8, size=extra.shape, dtype=np.int8)
        layers.append(
            LayerSpec(
                kind=layer.kind,
                name=layer.name,
                weights=weights,
                stride=layer.stride,
                shift=layer.shift,
                extra_weights=extra,
            )
        )
    subgraph = CompiledSubgraph(
        input_height=model.subgraph.input_height,
        input_width=model.subgraph.input_width,
        layers=layers,
    )
    return XModel(
        name=model.name,
        framework=model.framework,
        origin=model.origin,
        install_path=model.install_path,
        subgraph=subgraph,
        string_table=list(model.string_table),
    )


def build_model(name: str, input_hw: int = DEFAULT_INPUT_HW) -> XModel:
    """Construct the named model with deterministic weights.

    *input_hw* sets the square input edge.  Weight shapes do not
    depend on it (convolutions are SAME-padded and the head follows a
    global pool), so profiling done at one size predicts layout at the
    same size — the experiments always use a single size per scenario.
    """
    if name not in _BUILDERS:
        raise UnknownModelError(name)
    if input_hw < 8:
        raise ValueError(f"input_hw must be >= 8, got {input_hw}")
    framework, origin, layer_builder = _BUILDERS[name]()
    subgraph = CompiledSubgraph(
        input_height=input_hw, input_width=input_hw, layers=layer_builder(name)
    )
    return XModel(
        name=name,
        framework=framework,
        origin=origin,
        install_path=model_install_path(name),
        subgraph=subgraph,
        string_table=_standard_strings(name, origin, framework),
    )
