"""Vitis-AI-runtime twin: xmodels, the model zoo, images, DPU runner."""

from repro.vitis.tensor import QuantizedTensor
from repro.vitis.image import Image
from repro.vitis.ops import CompiledSubgraph, LayerSpec
from repro.vitis.xmodel import XModel
from repro.vitis.zoo import MODEL_NAMES, build_model, model_install_path
from repro.vitis.runner import DpuRunner, InferenceResult
from repro.vitis.app import VictimApplication, VictimRun

__all__ = [
    "QuantizedTensor",
    "Image",
    "CompiledSubgraph",
    "LayerSpec",
    "XModel",
    "MODEL_NAMES",
    "build_model",
    "model_install_path",
    "DpuRunner",
    "InferenceResult",
    "VictimApplication",
    "VictimRun",
]
