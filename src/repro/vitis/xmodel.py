"""The xmodel container format.

Vitis AI ships compiled models as ``.xmodel`` files; the runtime reads
the file into process memory, which is why the paper's Fig. 11 finds
path fragments like ``ls/resnet50_pt/r`` and ``hvision/resnet50`` in
the scraped heap.  Our container is a compact binary format (not
Xilinx's protobuf schema — the attack never parses the real schema,
it greps the loaded bytes) that preserves the attack-relevant
properties: embedded model name, install path, framework origin
strings, a vendor string table, and the int8 weight payloads.

The format round-trips exactly (``parse(serialize(m)) == m``), which
the property-based tests exercise.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import XModelFormatError
from repro.vitis.ops import CompiledSubgraph, LayerSpec

MAGIC = b"XMOD"
VERSION = 1

_KIND_CODES = {"conv2d": 0, "relu": 1, "maxpool": 2, "resblock": 3, "gap": 4, "fc": 5}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def _pack_str(text: str) -> bytes:
    encoded = text.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise XModelFormatError(f"string too long ({len(encoded)} bytes)")
    return struct.pack("<H", len(encoded)) + encoded


class _Reader:
    """Cursor over a serialized blob with checked reads."""

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._cursor = 0

    def take(self, count: int) -> bytes:
        if self._cursor + count > len(self._blob):
            raise XModelFormatError(
                f"truncated xmodel: need {count} bytes at offset {self._cursor}"
            )
        chunk = self._blob[self._cursor : self._cursor + count]
        self._cursor += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def string(self) -> str:
        length = self.u16()
        return self.take(length).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._cursor == len(self._blob)


def _pack_array(array: np.ndarray | None) -> bytes:
    if array is None:
        return struct.pack("<B", 0)
    out = struct.pack("<BB", 1, array.ndim)
    for dim in array.shape:
        out += struct.pack("<H", dim)
    out += array.tobytes()
    return out


def _read_array(reader: _Reader) -> np.ndarray | None:
    if reader.u8() == 0:
        return None
    ndim = reader.u8()
    shape = tuple(reader.u16() for _ in range(ndim))
    count = int(np.prod(shape)) if shape else 1
    payload = reader.take(count)
    return np.frombuffer(payload, dtype=np.int8).reshape(shape).copy()


@dataclass
class XModel:
    """A compiled model: metadata strings plus the executable subgraph."""

    name: str
    framework: str
    origin: str
    install_path: str
    subgraph: CompiledSubgraph
    string_table: list[str] = field(default_factory=list)

    def weight_nbytes(self) -> int:
        """Total int8 weight payload across all layers."""
        return sum(len(layer.weight_bytes()) for layer in self.subgraph.layers)

    def serialize(self) -> bytes:
        """Produce the .xmodel file bytes the runtime loads into memory."""
        out = bytearray()
        out += MAGIC
        out += struct.pack("<H", VERSION)
        out += _pack_str(self.name)
        out += _pack_str(self.framework)
        out += _pack_str(self.origin)
        out += _pack_str(self.install_path)
        out += struct.pack(
            "<HH", self.subgraph.input_height, self.subgraph.input_width
        )
        out += struct.pack("<H", len(self.string_table))
        for entry in self.string_table:
            out += _pack_str(entry)
        out += struct.pack("<H", len(self.subgraph.layers))
        for layer in self.subgraph.layers:
            out += struct.pack("<B", _KIND_CODES[layer.kind])
            out += _pack_str(layer.name)
            out += struct.pack("<BB", layer.stride, layer.shift)
            out += _pack_array(layer.weights)
            out += _pack_array(layer.extra_weights)
        return bytes(out)

    @classmethod
    def parse(cls, blob: bytes) -> "XModel":
        """Parse serialized bytes back into an :class:`XModel`.

        Raises :class:`~repro.errors.XModelFormatError` on bad magic,
        version mismatch, truncation, or trailing garbage.
        """
        reader = _Reader(blob)
        if reader.take(4) != MAGIC:
            raise XModelFormatError("bad magic; not an xmodel blob")
        version = reader.u16()
        if version != VERSION:
            raise XModelFormatError(f"unsupported xmodel version {version}")
        name = reader.string()
        framework = reader.string()
        origin = reader.string()
        install_path = reader.string()
        input_height = reader.u16()
        input_width = reader.u16()
        string_table = [reader.string() for _ in range(reader.u16())]
        layers = []
        for _ in range(reader.u16()):
            kind_code = reader.u8()
            if kind_code not in _CODE_KINDS:
                raise XModelFormatError(f"unknown layer kind code {kind_code}")
            layer_name = reader.string()
            stride = reader.u8()
            shift = reader.u8()
            weights = _read_array(reader)
            extra = _read_array(reader)
            layers.append(
                LayerSpec(
                    kind=_CODE_KINDS[kind_code],
                    name=layer_name,
                    weights=weights,
                    stride=stride,
                    shift=shift,
                    extra_weights=extra,
                )
            )
        if not reader.exhausted:
            raise XModelFormatError("trailing bytes after xmodel payload")
        subgraph = CompiledSubgraph(
            input_height=input_height, input_width=input_width, layers=layers
        )
        return cls(
            name=name,
            framework=framework,
            origin=origin,
            install_path=install_path,
            subgraph=subgraph,
            string_table=string_table,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XModel):
            return NotImplemented
        return self.serialize() == other.serialize()
