"""The victim application — ``./resnet50_pt <xmodel> <image>``.

Bundles the full victim workflow of the paper's §IV: launch a process
from a terminal, load a zoo model into its heap, run inference on an
input image, and (when the experiment says so) terminate.  Both the
genuine victim and the attacker's offline-profiling runs use this same
class, because the attack's premise is that attacker and victim run
*the same* Xilinx application stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.process import Process
from repro.petalinux.shell import Shell
from repro.vitis.image import Image
from repro.vitis.runner import DpuRunner, InferenceResult
from repro.vitis.xmodel import XModel
from repro.vitis.zoo import build_model, model_install_path


@dataclass
class VictimRun:
    """A launched (possibly still running) victim application."""

    kernel: PetaLinuxKernel
    process: Process
    model: XModel
    runner: DpuRunner
    result: InferenceResult | None = None

    @property
    def pid(self) -> int:
        """The victim's process id — what the attacker polls for."""
        return self.process.pid

    def infer(self, image: Image) -> InferenceResult:
        """Run one more inference in the live process."""
        self.result = self.runner.run(image)
        return self.result

    def terminate(self) -> None:
        """End the process; its heap frames go back to the allocator.

        Under the default kernel config nothing scrubs them — the
        paper's vulnerability window opens here.
        """
        self.kernel.exit_process(self.pid)

    @property
    def alive(self) -> bool:
        """Whether the pid is still in the process table."""
        return self.kernel.has_process(self.pid)


class VictimApplication:
    """Factory for victim runs on one booted board."""

    def __init__(self, shell: Shell, input_hw: int = 32) -> None:
        self._shell = shell
        self._input_hw = input_hw

    @property
    def input_hw(self) -> int:
        """Input edge length every model on this board uses."""
        return self._input_hw

    def _load_installed_model(self, model_name: str) -> XModel:
        """Read the xmodel from the rootfs, like the real application.

        Falls back to building from the zoo when the library is not
        installed on this board, or when the installed model was built
        for a different input size than this application targets.
        """
        from repro.errors import OsError

        rootfs = self._shell.kernel.rootfs
        path = model_install_path(model_name)
        try:
            blob = rootfs.read_file(path, caller=self._shell.user)
        except OsError:
            return build_model(model_name, input_hw=self._input_hw)
        model = XModel.parse(blob)
        if model.subgraph.input_height != self._input_hw:
            return build_model(model_name, input_hw=self._input_hw)
        return model

    def launch(
        self,
        model_name: str,
        image: Image | None = None,
        image_path: str = "../images/001.jpg",
        infer: bool = True,
        model: XModel | None = None,
    ) -> VictimRun:
        """Start ``./<model_name> <xmodel path> <image path>``.

        Loads the model into the fresh process's heap and, when
        *infer* is true, immediately runs one inference on *image*
        (default: the deterministic test pattern standing in for the
        Xilinx demo JPEG).  Pass *model* to run a custom build — e.g.
        a :func:`~repro.vitis.zoo.fine_tune`\\ d variant with private
        weights — instead of the stock library model.

        The stock model is read from the board's root filesystem when
        the Vitis AI library is installed there (the real load path —
        the file bytes are what land in the heap); boards without the
        installation fall back to building the model directly.
        """
        if model is None:
            model = self._load_installed_model(model_name)
        process = self._shell.run(
            [f"./{model_name}", model_install_path(model_name), image_path]
        )
        runner = DpuRunner(process, self._shell.kernel.dpu, model)
        run = VictimRun(
            kernel=self._shell.kernel, process=process, model=model, runner=runner
        )
        if infer:
            if image is None:
                image = Image.test_pattern(self._input_hw, self._input_hw)
            run.infer(image)
        return run
