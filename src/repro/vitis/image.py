"""RGB images: generation, corruption markers, raw-byte layout.

The paper's experiment hinges on how images look *as DRAM bytes*: the
input picture is stored as a contiguous raw RGB24 buffer, so replacing
its pixels with ``0xFFFFFF`` produces the solid ``FFFF FFFF`` hexdump
rows of Fig. 12, and an all-``0x555555`` profiling image produces the
``5555 5555`` marker the offline pass searches for.

No image-file codecs are needed: the board-side application decodes the
JPEG before inference, and the attack only ever sees the decoded
buffer, so the simulation works directly with decoded pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ImageFormatError

WHITE_MARKER = (0xFF, 0xFF, 0xFF)
"""The corruption marker of paper Fig. 4 (pixels forced to 0xFFFFFF)."""

PROFILING_MARKER = (0x55, 0x55, 0x55)
"""The offline-profiling marker (pixels forced to 0x555555)."""


@dataclass(frozen=True)
class Image:
    """A decoded RGB image (uint8, height x width x 3)."""

    pixels: np.ndarray

    def __post_init__(self) -> None:
        if self.pixels.dtype != np.uint8:
            raise ImageFormatError(f"pixels must be uint8, got {self.pixels.dtype}")
        if self.pixels.ndim != 3 or self.pixels.shape[2] != 3:
            raise ImageFormatError(
                f"pixels must be HxWx3, got shape {self.pixels.shape}"
            )

    # -- constructors -----------------------------------------------------

    @classmethod
    def solid(cls, width: int, height: int, color: tuple[int, int, int]) -> "Image":
        """A single-colour image (used for the profiling marker)."""
        pixels = np.empty((height, width, 3), dtype=np.uint8)
        pixels[:, :] = color
        return cls(pixels)

    @classmethod
    def test_pattern(cls, width: int, height: int, seed: int = 0) -> "Image":
        """A deterministic synthetic photo standing in for Xilinx's demo JPEG.

        Smooth gradients plus a few seeded discs — structured enough
        that reconstruction fidelity is visually meaningful, fully
        reproducible across runs.
        """
        if width <= 0 or height <= 0:
            raise ImageFormatError(f"bad dimensions {width}x{height}")
        ys = np.linspace(0.0, 1.0, height)[:, None]
        xs = np.linspace(0.0, 1.0, width)[None, :]
        red = 255.0 * xs * np.ones_like(ys)
        green = 255.0 * ys * np.ones_like(xs)
        blue = 255.0 * (0.5 + 0.5 * np.sin(6.0 * np.pi * (xs + ys) / 2.0))
        pixels = np.stack([red, green, blue], axis=2)
        rng = np.random.default_rng(seed)
        yy, xx = np.mgrid[0:height, 0:width]
        for _ in range(4):
            cx = rng.uniform(0.2, 0.8) * width
            cy = rng.uniform(0.2, 0.8) * height
            radius = rng.uniform(0.08, 0.2) * min(width, height)
            colour = rng.uniform(0, 255, size=3)
            disc = (xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2
            pixels[disc] = colour
        return cls(np.clip(pixels, 0, 255).astype(np.uint8))

    @classmethod
    def from_raw_rgb(cls, data: bytes, width: int, height: int) -> "Image":
        """Rebuild an image from a raw RGB24 buffer (the attack's view)."""
        expected = width * height * 3
        if len(data) != expected:
            raise ImageFormatError(
                f"need {expected} bytes for {width}x{height}, got {len(data)}"
            )
        pixels = (
            np.frombuffer(data, dtype=np.uint8).reshape(height, width, 3).copy()
        )
        return cls(pixels)

    # -- properties ----------------------------------------------------------

    @property
    def width(self) -> int:
        """Width in pixels."""
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        """Height in pixels."""
        return self.pixels.shape[0]

    @property
    def nbytes(self) -> int:
        """Raw RGB24 size."""
        return self.width * self.height * 3

    # -- byte layout -----------------------------------------------------------

    def to_raw_rgb(self) -> bytes:
        """Row-major R,G,B bytes — the buffer the runtime hands the DPU."""
        return self.pixels.tobytes()

    @classmethod
    def from_ppm(cls, data: bytes) -> "Image":
        """Parse a binary PPM (P6, maxval 255) image.

        Only the subset this package emits is accepted; PPM is used so
        recovered images can be saved and eyeballed with any viewer.
        """
        fields: list[bytes] = []
        cursor = 0
        while len(fields) < 4:
            while cursor < len(data) and data[cursor : cursor + 1].isspace():
                cursor += 1
            if data[cursor : cursor + 1] == b"#":
                end = data.find(b"\n", cursor)
                cursor = end + 1 if end >= 0 else len(data)
                continue
            start = cursor
            while cursor < len(data) and not data[cursor : cursor + 1].isspace():
                cursor += 1
            if start == cursor:
                raise ImageFormatError("truncated PPM header")
            fields.append(data[start:cursor])
        if fields[0] != b"P6":
            raise ImageFormatError(f"not a P6 PPM: magic {fields[0]!r}")
        width, height, maxval = (int(field) for field in fields[1:])
        if maxval != 255:
            raise ImageFormatError(f"unsupported PPM maxval {maxval}")
        payload = data[cursor + 1 : cursor + 1 + width * height * 3]
        return cls.from_raw_rgb(payload, width, height)

    def to_ppm(self) -> bytes:
        """Serialize as binary PPM (P6) for external viewers."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode()
        return header + self.to_raw_rgb()

    # -- transformations ----------------------------------------------------------

    def corrupted(
        self,
        fraction: float = 0.2,
        color: tuple[int, int, int] = WHITE_MARKER,
    ) -> "Image":
        """Replace the top *fraction* of rows with *color*.

        Reproduces the paper's Fig. 4 manipulation ("about 20% of the
        image"): the corrupted band is what shows up as solid marker
        rows in the scraped hexdump.
        """
        if not 0.0 < fraction <= 1.0:
            raise ImageFormatError(f"fraction must be in (0, 1], got {fraction}")
        rows = max(1, int(round(self.height * fraction)))
        pixels = self.pixels.copy()
        pixels[:rows, :] = color
        return Image(pixels)

    def marker_fraction(self, color: tuple[int, int, int]) -> float:
        """Fraction of pixels exactly equal to *color*."""
        matches = np.all(self.pixels == np.array(color, dtype=np.uint8), axis=2)
        return float(matches.mean())

    # -- comparison ----------------------------------------------------------------

    def pixel_match_rate(self, other: "Image") -> float:
        """Fraction of pixels identical between two same-sized images."""
        if other.pixels.shape != self.pixels.shape:
            raise ImageFormatError("images differ in shape")
        same = np.all(self.pixels == other.pixels, axis=2)
        return float(same.mean())

    def psnr(self, other: "Image") -> float:
        """Peak signal-to-noise ratio in dB (inf for identical images)."""
        if other.pixels.shape != self.pixels.shape:
            raise ImageFormatError("images differ in shape")
        diff = self.pixels.astype(np.float64) - other.pixels.astype(np.float64)
        mse = float(np.mean(diff**2))
        if mse == 0.0:
            return float("inf")
        return 10.0 * np.log10(255.0**2 / mse)
