"""INT8 inference kernels and the compiled-subgraph object the DPU runs.

These are real computations (im2col convolutions, pooling, residual
blocks, fully-connected heads) on int8 data with int32 accumulation
and shift-based requantization — the arithmetic model of the
DPUCZDX8G.  The zoo's models are *miniature*: structurally faithful
layer stacks with far fewer channels than production networks, because
what the attack observes is memory layout, not FLOPs, and small models
keep the test suite fast.  The memory-relevant quantities (buffer
order, string placement, image bytes) are unaffected by channel count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_VALID_KINDS = ("conv2d", "relu", "maxpool", "resblock", "gap", "fc")


@dataclass
class LayerSpec:
    """One layer of a compiled subgraph.

    ``weights`` layout: conv/resblock ``(kh, kw, cin, cout)`` int8,
    fc ``(cin, cout)`` int8.  ``shift`` is the requantization
    right-shift applied to the int32 accumulator.
    """

    kind: str
    name: str
    weights: np.ndarray | None = None
    stride: int = 1
    shift: int = 7
    extra_weights: np.ndarray | None = None
    """Second conv of a residual block."""

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if self.kind in ("conv2d", "resblock", "fc") and self.weights is None:
            raise ValueError(f"{self.kind} layer {self.name!r} needs weights")
        for array in (self.weights, self.extra_weights):
            if array is not None and array.dtype != np.int8:
                raise TypeError(f"weights of {self.name!r} must be int8")
        if self.kind == "resblock" and self.extra_weights is None:
            raise ValueError(f"resblock {self.name!r} needs extra_weights")

    def weight_bytes(self) -> bytes:
        """All weight payload bytes, in declaration order."""
        parts = []
        if self.weights is not None:
            parts.append(self.weights.tobytes())
        if self.extra_weights is not None:
            parts.append(self.extra_weights.tobytes())
        return b"".join(parts)


def _requantize(acc: np.ndarray, shift: int) -> np.ndarray:
    """int32 accumulator -> int8 with rounding right-shift and saturation."""
    rounded = (acc + (1 << (shift - 1))) >> shift if shift > 0 else acc
    return np.clip(rounded, -128, 127).astype(np.int8)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """SAME-padded patch matrix of *x* (H, W, C) for a kh x kw window."""
    height, width, channels = x.shape
    pad_h, pad_w = kh // 2, kw // 2
    padded = np.pad(x, ((pad_h, pad_h), (pad_w, pad_w), (0, 0)))
    out_h = (height + 2 * pad_h - kh) // stride + 1
    out_w = (width + 2 * pad_w - kw) // stride + 1
    columns = np.empty((out_h * out_w, kh * kw * channels), dtype=np.int32)
    row = 0
    for oy in range(out_h):
        iy = oy * stride
        for ox in range(out_w):
            ix = ox * stride
            columns[row] = padded[iy : iy + kh, ix : ix + kw, :].reshape(-1)
            row += 1
    return columns, out_h, out_w


def conv2d_int8(x: np.ndarray, weights: np.ndarray, stride: int, shift: int) -> np.ndarray:
    """SAME conv, int8 in/out, int32 accumulate (x: HWC, w: KKIO)."""
    kh, kw, cin, cout = weights.shape
    if x.shape[2] != cin:
        raise ValueError(f"input has {x.shape[2]} channels, weights expect {cin}")
    columns, out_h, out_w = _im2col(x.astype(np.int32), kh, kw, stride)
    flat_weights = weights.reshape(kh * kw * cin, cout).astype(np.int32)
    acc = columns @ flat_weights
    return _requantize(acc, shift).reshape(out_h, out_w, cout)


def relu_int8(x: np.ndarray) -> np.ndarray:
    """Elementwise max(0, x)."""
    return np.maximum(x, 0).astype(np.int8)


def maxpool2_int8(x: np.ndarray) -> np.ndarray:
    """2x2 stride-2 max pooling (odd trailing row/column dropped)."""
    height, width, channels = x.shape
    height -= height % 2
    width -= width % 2
    trimmed = x[:height, :width, :]
    reshaped = trimmed.reshape(height // 2, 2, width // 2, 2, channels)
    return reshaped.max(axis=(1, 3)).astype(np.int8)


def global_avgpool_int8(x: np.ndarray) -> np.ndarray:
    """Spatial mean per channel, requantized to int8 (shape (C,))."""
    mean = x.astype(np.int32).mean(axis=(0, 1))
    return np.clip(np.round(mean), -128, 127).astype(np.int8)


def fc_int8(x: np.ndarray, weights: np.ndarray, shift: int) -> np.ndarray:
    """Fully-connected head: (cin,) @ (cin, cout) -> int8 (cout,)."""
    if x.ndim != 1 or weights.shape[0] != x.shape[0]:
        raise ValueError(
            f"fc shape mismatch: input {x.shape}, weights {weights.shape}"
        )
    acc = x.astype(np.int32) @ weights.astype(np.int32)
    return _requantize(acc, shift)


def resblock_int8(
    x: np.ndarray, w1: np.ndarray, w2: np.ndarray, stride: int, shift: int
) -> np.ndarray:
    """conv-relu-conv plus (possibly downsampled, channel-padded) skip."""
    branch = conv2d_int8(x, w1, stride, shift)
    branch = relu_int8(branch)
    branch = conv2d_int8(branch, w2, 1, shift)
    skip = x[::stride, ::stride, :]
    out_channels = branch.shape[2]
    if skip.shape[2] < out_channels:
        padding = out_channels - skip.shape[2]
        skip = np.pad(skip, ((0, 0), (0, 0), (0, padding)))
    elif skip.shape[2] > out_channels:
        skip = skip[:, :, :out_channels]
    skip = skip[: branch.shape[0], : branch.shape[1], :]
    total = branch.astype(np.int32) + skip.astype(np.int32)
    return relu_int8(np.clip(total, -128, 127).astype(np.int8))


@dataclass
class CompiledSubgraph:
    """An executable layer stack — what the runtime hands the DPU.

    Implements the :class:`~repro.hw.dpu.DpuKernel` protocol: the DPU
    gathers the raw RGB input from DRAM, calls :meth:`execute`, and
    scatters the returned class scores back to DRAM.
    """

    input_height: int
    input_width: int
    layers: list[LayerSpec] = field(default_factory=list)

    def execute(self, input_blob: bytes) -> bytes:
        """Raw RGB24 bytes in, int8 class scores out."""
        expected = self.input_height * self.input_width * 3
        if len(input_blob) != expected:
            raise ValueError(
                f"subgraph expects {expected} input bytes, got {len(input_blob)}"
            )
        raw = np.frombuffer(input_blob, dtype=np.uint8).reshape(
            self.input_height, self.input_width, 3
        )
        # Input quantization: centre uint8 RGB onto the int8 range.
        x = (raw.astype(np.int32) - 128).astype(np.int8)
        for layer in self.layers:
            x = self._run_layer(layer, x)
        return x.tobytes()

    @staticmethod
    def _run_layer(layer: LayerSpec, x: np.ndarray) -> np.ndarray:
        if layer.kind == "conv2d":
            return conv2d_int8(x, layer.weights, layer.stride, layer.shift)
        if layer.kind == "relu":
            return relu_int8(x)
        if layer.kind == "maxpool":
            return maxpool2_int8(x)
        if layer.kind == "resblock":
            return resblock_int8(
                x, layer.weights, layer.extra_weights, layer.stride, layer.shift
            )
        if layer.kind == "gap":
            return global_avgpool_int8(x)
        if layer.kind == "fc":
            return fc_int8(x, layer.weights, layer.shift)
        raise ValueError(f"unknown layer kind {layer.kind!r}")

    @property
    def macs(self) -> int:
        """Total multiply-accumulates for one inference (shape-derived)."""
        total = 0
        height, width = self.input_height, self.input_width
        channels = 3
        for layer in self.layers:
            if layer.kind == "conv2d":
                kh, kw, cin, cout = layer.weights.shape
                height = (height + 2 * (kh // 2) - kh) // layer.stride + 1
                width = (width + 2 * (kw // 2) - kw) // layer.stride + 1
                total += height * width * kh * kw * cin * cout
                channels = cout
            elif layer.kind == "resblock":
                for weights, stride in (
                    (layer.weights, layer.stride),
                    (layer.extra_weights, 1),
                ):
                    kh, kw, cin, cout = weights.shape
                    height = (height + 2 * (kh // 2) - kh) // stride + 1
                    width = (width + 2 * (kw // 2) - kw) // stride + 1
                    total += height * width * kh * kw * cin * cout
                    channels = cout
            elif layer.kind == "maxpool":
                height //= 2
                width //= 2
            elif layer.kind == "gap":
                height = width = 1
            elif layer.kind == "fc":
                cin, cout = layer.weights.shape
                total += cin * cout
                channels = cout
        return total

    def output_classes(self) -> int:
        """Width of the final fc layer (number of classes)."""
        for layer in reversed(self.layers):
            if layer.kind == "fc":
                return layer.weights.shape[1]
        raise ValueError("subgraph has no fc head")
