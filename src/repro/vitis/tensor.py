"""Quantized tensors, the data type the DPU computes on.

The DPUCZDX8G is an INT8 engine; Vitis AI quantizes activations and
weights to int8 with power-of-two scales.  :class:`QuantizedTensor`
carries the int8 payload plus its fixed-point position, and provides
the byte (de)serialization used when tensors cross the heap/DRAM
boundary — which is exactly where the attack reads them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8 tensor with a power-of-two scale.

    ``fix_point`` is the number of fractional bits: real value =
    ``int8_value / 2**fix_point``, matching Vitis AI's fixed-point
    metadata.
    """

    values: np.ndarray
    fix_point: int = 0

    def __post_init__(self) -> None:
        if self.values.dtype != np.int8:
            raise TypeError(f"values must be int8, got {self.values.dtype}")
        if not -32 <= self.fix_point <= 32:
            raise ValueError(f"fix_point {self.fix_point} out of range")

    @property
    def shape(self) -> tuple[int, ...]:
        """The tensor's shape."""
        return tuple(self.values.shape)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (one byte per element)."""
        return self.values.size

    def dequantize(self) -> np.ndarray:
        """Real-valued view: ``values / 2**fix_point`` as float32."""
        return self.values.astype(np.float32) / (1 << self.fix_point)

    def to_bytes(self) -> bytes:
        """Row-major int8 payload, as the runtime lays it out in DRAM."""
        return self.values.tobytes()

    @classmethod
    def from_bytes(
        cls, data: bytes, shape: tuple[int, ...], fix_point: int = 0
    ) -> "QuantizedTensor":
        """Rebuild a tensor from raw DRAM bytes.

        This is also what the attack's reconstruction step does once it
        knows a buffer's shape from offline profiling.
        """
        expected = int(np.prod(shape)) if shape else 1
        if len(data) != expected:
            raise ValueError(
                f"need {expected} bytes for shape {shape}, got {len(data)}"
            )
        values = np.frombuffer(data, dtype=np.int8).reshape(shape).copy()
        return cls(values=values, fix_point=fix_point)

    @classmethod
    def quantize(cls, real: np.ndarray, fix_point: int) -> "QuantizedTensor":
        """Quantize a real-valued array with saturation."""
        scaled = np.round(real * (1 << fix_point))
        clipped = np.clip(scaled, -128, 127).astype(np.int8)
        return cls(values=clipped, fix_point=fix_point)
