"""The VART-style DPU runner: model loading and inference.

This is the part of the stack that *creates the residue*.  Loading a
model pulls the xmodel file, the unpacked weights, and the runtime's
own metadata into the process heap; running inference writes the raw
input image and the output scores there too.  Everything is placed by
the process's deterministic bump arena, so buffer offsets from the
heap base are a pure function of the model — the invariant the
paper's offline profiling exploits.

Buffer order (all in the heap, ascending):

1. runtime metadata blob (library paths, handle tables),
2. the serialized xmodel file,
3. per-layer unpacked weight buffers,
4. the input tensor (raw RGB24 — what Fig. 12 recovers),
5. the output tensor (int8 class scores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.dpu import DpuCore, DpuJob
from repro.mmu.paging import PAGE_MASK, PAGE_SHIFT
from repro.petalinux.process import Process
from repro.vitis.image import Image
from repro.vitis.xmodel import XModel

RUNTIME_LIBRARY_STRINGS = (
    "/usr/lib/libvart-runner.so.3.5",
    "/usr/lib/libvart-dpu-controller.so.3.5",
    "/usr/lib/libxir.so.3.5",
    "/usr/lib/libvitis_ai_library-dpu_task.so.3.5",
    "vart::Runner::create_runner",
    "xir::Subgraph::get_attr",
)
"""Strings the runtime itself leaves in the heap alongside the model."""

DEFAULT_RUNTIME_OVERHEAD = 64 * 1024
"""Bytes of runtime metadata written before the model blob — stands in
for the allocator chatter, handle tables and library structures a real
VART process accumulates before the model file lands in the heap."""


def _runtime_blob(length: int, seed: int = 0x5EED) -> bytes:
    """Deterministic runtime-metadata filler with embedded strings."""
    rng = np.random.default_rng(seed)
    body = bytearray(rng.integers(0, 256, size=length, dtype=np.uint8).tobytes())
    cursor = 64
    for text in RUNTIME_LIBRARY_STRINGS:
        encoded = text.encode() + b"\x00"
        if cursor + len(encoded) >= length:
            break
        body[cursor : cursor + len(encoded)] = encoded
        cursor += len(encoded) + 192
    return bytes(body)


@dataclass(frozen=True)
class InferenceResult:
    """What one ``run`` returns to the application."""

    scores: np.ndarray
    top_class: int
    macs: int
    estimated_cycles: int

    def top_k(self, k: int = 5) -> list[tuple[int, int]]:
        """(class_id, score) pairs for the k best classes."""
        order = np.argsort(self.scores)[::-1][:k]
        return [(int(index), int(self.scores[index])) for index in order]


class DpuRunner:
    """One model loaded into one process, executable on the DPU."""

    def __init__(
        self,
        process: Process,
        dpu: DpuCore,
        model: XModel,
        runtime_overhead: int = DEFAULT_RUNTIME_OVERHEAD,
    ) -> None:
        if process.heap_arena is None:
            raise ValueError(f"pid {process.pid} has no heap arena")
        self._process = process
        self._dpu = dpu
        self._model = model
        arena = process.heap_arena
        heap = process.address_space.heap()
        assert heap is not None
        self._heap_base = heap.start

        self.runtime_blob_address = arena.allocate_and_write(
            _runtime_blob(runtime_overhead)
        )
        self.model_blob_address = arena.allocate_and_write(model.serialize())
        self.weight_addresses: list[int] = []
        for layer in model.subgraph.layers:
            payload = layer.weight_bytes()
            if payload:
                self.weight_addresses.append(arena.allocate_and_write(payload))
        input_nbytes = model.subgraph.input_height * model.subgraph.input_width * 3
        self.input_address = arena.allocate(input_nbytes)
        self.input_nbytes = input_nbytes
        output_classes = model.subgraph.output_classes()
        self.output_address = arena.allocate(output_classes)
        self.output_nbytes = output_classes
        self.runs_completed = 0

    # -- layout ground truth (evaluation only) ------------------------------

    @property
    def model(self) -> XModel:
        """The loaded model."""
        return self._model

    @property
    def input_heap_offset(self) -> int:
        """Input buffer offset from the heap base.

        Ground truth the evaluation compares the attacker's *profiled*
        offset against; the attack itself never reads this.
        """
        return self.input_address - self._heap_base

    @property
    def model_blob_heap_offset(self) -> int:
        """Model file offset from the heap base (ground truth)."""
        return self.model_blob_address - self._heap_base

    # -- physical scatter-gather ----------------------------------------------

    def _physical_segments(self, address: int, length: int) -> list[tuple[int, int]]:
        """VA range -> coalesced global-physical-address segments."""
        soc = self._dpu.soc
        segments: list[tuple[int, int]] = []
        for frame_space, chunk in self._process.address_space.physical_segments(
            address, length
        ):
            cursor = frame_space
            remaining = chunk
            while remaining > 0:
                frame = cursor >> PAGE_SHIFT
                in_page = cursor & PAGE_MASK
                take = min(remaining, (1 << PAGE_SHIFT) - in_page)
                physical = soc.dram_frame_to_physical(frame) + in_page
                if segments and segments[-1][0] + segments[-1][1] == physical:
                    segments[-1] = (segments[-1][0], segments[-1][1] + take)
                else:
                    segments.append((physical, take))
                cursor += take
                remaining -= take
        return segments

    # -- inference ----------------------------------------------------------------

    def run(self, image: Image) -> InferenceResult:
        """Execute one inference on *image*.

        The image bytes are written into the heap input buffer (and
        therefore into physical DRAM) before the DPU job launches;
        they are never cleared afterwards — the residue the attack
        harvests.
        """
        if image.height != self._model.subgraph.input_height or (
            image.width != self._model.subgraph.input_width
        ):
            raise ValueError(
                f"model {self._model.name} expects "
                f"{self._model.subgraph.input_height}x"
                f"{self._model.subgraph.input_width}, got "
                f"{image.height}x{image.width}"
            )
        self._process.require_alive()
        arena = self._process.heap_arena
        assert arena is not None
        arena.write(self.input_address, image.to_raw_rgb())
        job = DpuJob(
            kernel=self._model.subgraph,
            input_segments=self._physical_segments(
                self.input_address, self.input_nbytes
            ),
            output_segments=self._physical_segments(
                self.output_address, self.output_nbytes
            ),
        )
        job_result = self._dpu.run(job)
        scores = np.frombuffer(
            arena.read(self.output_address, self.output_nbytes), dtype=np.int8
        ).copy()
        self.runs_completed += 1
        return InferenceResult(
            scores=scores,
            top_class=int(np.argmax(scores)),
            macs=job_result.macs,
            estimated_cycles=job_result.estimated_cycles,
        )
