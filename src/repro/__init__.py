"""Memory Scraping Attack on Xilinx FPGAs — reproduction package.

Reproduces Madabhushi, Kundu & Holcomb, "Memory Scraping Attack on
Xilinx FPGAs: Private Data Extraction from Terminated Processes"
(DATE 2024) as a software twin of the full board stack:

- :mod:`repro.hw` — ZCU104/ZCU102 hardware (DRAM, address map, DPU),
- :mod:`repro.mmu` — frames, page tables, Linux pagemap, VMAs,
- :mod:`repro.petalinux` — the OS twin with the paper's three
  vulnerability policies, procfs, devmem, XSDB, Xen,
- :mod:`repro.vitis` — the Vitis-AI-style runtime and model zoo,
- :mod:`repro.attack` — the four-step memory scraping attack (the
  paper's contribution) plus profiling, carving, variants, weights,
- :mod:`repro.evaluation` — metrics, scenarios, figure regeneration.

Quick start::

    from repro.evaluation.scenarios import BoardSession, run_paper_attack

    outcome = run_paper_attack(BoardSession.boot(input_hw=32))
    assert outcome.image_recovered_exactly
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
