"""Quantitative metrics for the attack and defense experiments.

The paper's evaluation is qualitative (figures showing each step
working); these metrics put numbers on the same claims so the extended
experiments can sweep parameters: how much residue survives, how
faithful the recovered image is, how often the right model is named.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mmu.frame_alloc import FrameAllocator
from repro.vitis.image import Image


def byte_recovery_rate(recovered: bytes, ground_truth: bytes) -> float:
    """Fraction of ground-truth bytes recovered at the right position.

    Both blobs must describe the same range; a scrubbed dump scores
    near zero (only incidental zero bytes line up).
    """
    if len(recovered) != len(ground_truth):
        raise ValueError(
            f"length mismatch: recovered {len(recovered)}, "
            f"ground truth {len(ground_truth)}"
        )
    if not ground_truth:
        return 1.0
    matches = sum(1 for a, b in zip(recovered, ground_truth) if a == b)
    return matches / len(ground_truth)


@dataclass(frozen=True)
class ImageFidelity:
    """Similarity of a reconstructed image to the victim's input."""

    pixel_match_rate: float
    psnr_db: float

    @property
    def is_exact(self) -> bool:
        """Whether the reconstruction is bit-perfect."""
        return self.pixel_match_rate == 1.0


def image_fidelity(reconstructed: Image, original: Image) -> ImageFidelity:
    """Pixel match rate plus PSNR between reconstruction and truth."""
    return ImageFidelity(
        pixel_match_rate=reconstructed.pixel_match_rate(original),
        psnr_db=reconstructed.psnr(original),
    )


def identification_accuracy(
    predictions: list[str], ground_truth: list[str]
) -> float:
    """Fraction of trials where the attributed model is correct."""
    if len(predictions) != len(ground_truth):
        raise ValueError("predictions and ground truth differ in length")
    if not predictions:
        raise ValueError("no trials")
    correct = sum(
        1 for predicted, actual in zip(predictions, ground_truth)
        if predicted == actual
    )
    return correct / len(predictions)


@dataclass(frozen=True)
class ThroughputStats:
    """Fleet-level scraping throughput over one campaign run."""

    nbytes: int
    victims: int
    wall_seconds: float

    def __post_init__(self) -> None:
        if self.nbytes < 0 or self.victims < 0 or self.wall_seconds < 0:
            raise ValueError("throughput inputs must be non-negative")

    @property
    def bytes_per_second(self) -> float:
        """Scraped bytes per wall-clock second (0.0 for a zero-time run)."""
        return self.nbytes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def victims_per_second(self) -> float:
        """Completed victim attacks per wall-clock second."""
        return self.victims / self.wall_seconds if self.wall_seconds else 0.0

    def describe(self) -> str:
        """One-line summary for the campaign report."""
        return (
            f"{self.victims} victims, {self.nbytes / 1024**2:.1f} MiB scraped "
            f"in {self.wall_seconds:.2f}s "
            f"({self.bytes_per_second / 1024**2:.1f} MiB/s, "
            f"{self.victims_per_second:.2f} victims/s)"
        )


def residue_survival(allocator: FrameAllocator, victim_frames: list[int]) -> float:
    """Fraction of a dead victim's frames not yet handed to a new owner.

    Frames still in the free pool retain their residue verbatim;
    reallocated frames may have been overwritten.  This is the
    denominator of the reuse-decay experiment.
    """
    if not victim_frames:
        raise ValueError("victim_frames is empty")
    surviving = sum(1 for frame in victim_frames if allocator.is_free(frame))
    return surviving / len(victim_frames)
