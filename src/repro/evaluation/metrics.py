"""Quantitative metrics for the attack and defense experiments.

The paper's evaluation is qualitative (figures showing each step
working); these metrics put numbers on the same claims so the extended
experiments can sweep parameters: how much residue survives, how
faithful the recovered image is, how often the right model is named.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scan import count_positive, nonzero_count
from repro.errors import EmptyMetricError
from repro.mmu.frame_alloc import FrameAllocator
from repro.vitis.image import Image


def byte_recovery_rate(recovered: bytes, ground_truth: bytes) -> float:
    """Fraction of ground-truth bytes recovered at the right position.

    Both blobs must describe the same range; a scrubbed dump scores
    near zero (only incidental zero bytes line up).
    """
    if len(recovered) != len(ground_truth):
        raise ValueError(
            f"length mismatch: recovered {len(recovered)}, "
            f"ground truth {len(ground_truth)}"
        )
    if not ground_truth:
        return 1.0
    matches = sum(1 for a, b in zip(recovered, ground_truth) if a == b)
    return matches / len(ground_truth)


@dataclass(frozen=True)
class ImageFidelity:
    """Similarity of a reconstructed image to the victim's input."""

    pixel_match_rate: float
    psnr_db: float

    @property
    def is_exact(self) -> bool:
        """Whether the reconstruction is bit-perfect."""
        return self.pixel_match_rate == 1.0


def image_fidelity(reconstructed: Image, original: Image) -> ImageFidelity:
    """Pixel match rate plus PSNR between reconstruction and truth."""
    return ImageFidelity(
        pixel_match_rate=reconstructed.pixel_match_rate(original),
        psnr_db=reconstructed.psnr(original),
    )


def identification_accuracy(
    predictions: list[str], ground_truth: list[str]
) -> float:
    """Fraction of trials where the attributed model is correct."""
    if len(predictions) != len(ground_truth):
        raise ValueError("predictions and ground truth differ in length")
    if not predictions:
        raise ValueError("no trials")
    correct = sum(
        1 for predicted, actual in zip(predictions, ground_truth)
        if predicted == actual
    )
    return correct / len(predictions)


@dataclass(frozen=True)
class ThroughputStats:
    """Fleet-level scraping throughput over one campaign run."""

    nbytes: int
    victims: int
    wall_seconds: float

    def __post_init__(self) -> None:
        if self.nbytes < 0 or self.victims < 0 or self.wall_seconds < 0:
            raise ValueError("throughput inputs must be non-negative")

    @property
    def bytes_per_second(self) -> float:
        """Scraped bytes per wall-clock second (0.0 for a zero-time run)."""
        return self.nbytes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def victims_per_second(self) -> float:
        """Completed victim attacks per wall-clock second."""
        return self.victims / self.wall_seconds if self.wall_seconds else 0.0

    def describe(self) -> str:
        """One-line summary for the campaign report."""
        return (
            f"{self.victims} victims, {self.nbytes / 1024**2:.1f} MiB scraped "
            f"in {self.wall_seconds:.2f}s "
            f"({self.bytes_per_second / 1024**2:.1f} MiB/s, "
            f"{self.victims_per_second:.2f} victims/s)"
        )


def nonzero_bytes(data: bytes) -> int:
    """Bytes of *data* that are not the 0x00 scrub pattern.

    The defense matrix's leakage unit: a vulnerable board's dump is
    almost entirely nonzero residue, a zero-on-free board's dump is
    the same size but counts 0 here.  Routed through the shared scan
    core (:mod:`repro.analysis.scan`).
    """
    return nonzero_count(data)


def leakage_reduction(baseline: float, defended: float) -> float:
    """Fraction of the baseline leakage a defense eliminated.

    Both arguments are leakage measures in the same unit (success
    rate, recovered bytes, ...).  1.0 = the defense zeroed the
    leakage, 0.0 = no effect, negative = the "defense" made leakage
    worse.  A zero baseline (nothing leaked even undefended) returns
    0.0 — there was nothing to reduce.
    """
    if baseline < 0 or defended < 0:
        raise ValueError("leakage measures must be non-negative")
    if baseline == 0:
        return 0.0
    return (baseline - defended) / baseline


def window_hit_rate(residue_counts: list[int]) -> float:
    """Fraction of victims scraped while residue still survived.

    For the asynchronous scrub-pool defense this is the probability
    the attacker's scrape landed inside the window of vulnerability
    (any nonzero residue recovered).  Synchronous zero-on-free drives
    it to 0.0; the undefended board sits at 1.0.

    An empty sample (a zero-victim campaign — degenerate explored
    scenarios produce them) has no defined rate; raises
    :class:`~repro.errors.EmptyMetricError` (a ``ValueError``
    subclass), which summarizers with a defined "no victims" answer
    catch explicitly.
    """
    if not residue_counts:
        raise EmptyMetricError("window_hit_rate", "residue_counts")
    return count_positive(residue_counts) / len(residue_counts)


def residue_survival(allocator: FrameAllocator, victim_frames: list[int]) -> float:
    """Fraction of a dead victim's frames not yet handed to a new owner.

    Frames still in the free pool retain their residue verbatim;
    reallocated frames may have been overwritten.  This is the
    denominator of the reuse-decay experiment.

    Raises :class:`~repro.errors.EmptyMetricError` (a ``ValueError``
    subclass) for a victim with no frames — there is no survival rate
    to report.
    """
    if not victim_frames:
        raise EmptyMetricError("residue_survival", "victim_frames")
    surviving = sum(1 for frame in victim_frames if allocator.is_free(frame))
    return surviving / len(victim_frames)
