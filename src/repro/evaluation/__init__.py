"""Evaluation: metrics, canned scenarios, paper-figure regeneration."""

from repro.evaluation.metrics import (
    ThroughputStats,
    byte_recovery_rate,
    identification_accuracy,
    image_fidelity,
    residue_survival,
)
from repro.evaluation.scenarios import (
    AttackOutcome,
    BoardSession,
    DefenseOutcome,
    attack_under_config,
    run_paper_attack,
)
from repro.evaluation.figures import FigureArtifact, generate_all_figures

__all__ = [
    "ThroughputStats",
    "byte_recovery_rate",
    "identification_accuracy",
    "image_fidelity",
    "residue_survival",
    "AttackOutcome",
    "BoardSession",
    "DefenseOutcome",
    "attack_under_config",
    "run_paper_attack",
    "FigureArtifact",
    "generate_all_figures",
]
