"""Regeneration of every figure in the paper's evaluation (§V).

The paper's results section is a sequence of console artifacts, one
per attack step (Figs. 4-12).  :func:`generate_all_figures` runs the
standard scenario once and produces a :class:`FigureArtifact` per
figure: the regenerated console text plus machine-checkable claims
capturing the figure's qualitative finding.  The per-figure benchmarks
print the artifact and assert its claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.config import AttackConfig
from repro.attack.pipeline import MemoryScrapingAttack
from repro.attack.profiling import ProfileStore
from repro.attack.reconstruct import ImageReconstructor
from repro.evaluation.metrics import image_fidelity
from repro.evaluation.scenarios import BoardSession
from repro.mmu.paging import PAGE_SIZE
from repro.vitis.image import Image


@dataclass
class FigureArtifact:
    """One regenerated paper figure."""

    figure_id: str
    title: str
    body: str
    claims: dict[str, bool] = field(default_factory=dict)

    @property
    def all_claims_hold(self) -> bool:
        """Whether every qualitative claim of the figure reproduced."""
        return all(self.claims.values())

    def render(self) -> str:
        """Printable form: header, body, claim checklist."""
        lines = [f"--- {self.figure_id}: {self.title} ---", self.body, ""]
        for claim, held in sorted(self.claims.items()):
            lines.append(f"  [{'ok' if held else 'FAIL'}] {claim}")
        return "\n".join(lines)


def generate_all_figures(
    input_hw: int = 32,
    victim_model: str = "resnet50_pt",
    corruption_fraction: float = 0.2,
) -> dict[str, FigureArtifact]:
    """Run the standard scenario and regenerate Figs. 4-12.

    One board boot, one profiling pass, one victim, one attack — all
    artifacts come from the same run, exactly as in the paper.
    """
    session = BoardSession.boot(input_hw=input_hw)
    profiles = session.profile([victim_model, "squeezenet_pt", "inception_v1_tf"])

    original = Image.test_pattern(input_hw, input_hw, seed=7)
    corrupted = original.corrupted(corruption_fraction)

    # Constructing the attack snapshots the Fig. 5 baseline (the
    # attacker starts watching before the victim launches).
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)

    run = session.victim_application().launch(victim_model, image=corrupted)
    sighting = attack.observe_victim(victim_model)
    harvested = attack.harvest_addresses()
    run.terminate()
    dump = attack.extract()
    report = attack.analyze()

    figures: dict[str, FigureArtifact] = {}
    config = AttackConfig()

    # -- Fig. 4: original vs corrupted input image -------------------------
    marker_fraction = corrupted.marker_fraction(config.corruption_marker)
    figures["fig04"] = FigureArtifact(
        figure_id="fig04",
        title="Original vs corrupted input image (0xFFFFFF marker)",
        body=(
            f"original: {original.width}x{original.height}, "
            f"marker fraction {original.marker_fraction(config.corruption_marker):.3f}\n"
            f"corrupted: {corrupted.width}x{corrupted.height}, "
            f"marker fraction {marker_fraction:.3f}"
        ),
        claims={
            "about 20% of pixels replaced with 0xFFFFFF": (
                abs(marker_fraction - corruption_fraction) < 0.05
            ),
            "remaining pixels untouched": bool(
                (corrupted.pixels[int(input_hw * corruption_fraction) + 1 :]
                 == original.pixels[int(input_hw * corruption_fraction) + 1 :]).all()
            ),
        },
    )

    # -- Fig. 5: ps -ef before the victim runs ------------------------------
    figures["fig05"] = FigureArtifact(
        figure_id="fig05",
        title="Process list before victim model was run",
        body=report.ps_before,
        claims={
            "victim model not in process list": (
                victim_model not in report.ps_before
            ),
            "board daemons visible": "kworker" in report.ps_before,
        },
    )

    # -- Fig. 6: ps -ef with the victim running ------------------------------
    ps_during = report.ps_during
    figures["fig06"] = FigureArtifact(
        figure_id="fig06",
        title="Process list after victim model was run (pid observed)",
        body=ps_during,
        claims={
            "victim pid visible from attacker terminal": (
                str(sighting.pid) in ps_during
            ),
            "victim cmdline (xmodel path) leaked across users": (
                f"vitis_ai_library/models/{victim_model}" in ps_during
            ),
        },
    )

    # -- Fig. 7: /proc/<pid>/maps heap range ----------------------------------
    maps_excerpt = "\n".join(_maps_of_dead_victim(harvested))
    figures["fig07"] = FigureArtifact(
        figure_id="fig07",
        title="Virtual address range of the heap from /proc/<pid>/maps",
        body=maps_excerpt,
        claims={
            "heap VMA present and read-write": harvested.length > 0,
            "heap in the aarch64 0xaaaa... range": (
                harvested.heap_start >> 40
            ) == 0xAAAA_EE >> 8 or (harvested.heap_start >> 44) == 0xA,
        },
    )

    # -- Fig. 8: virtual_to_physical conversions -------------------------------
    first_page = harvested.heap_start
    last_page = harvested.heap_end - PAGE_SIZE
    pa_first = harvested.physical_of(first_page)
    pa_last = harvested.physical_of(last_page)
    figures["fig08"] = FigureArtifact(
        figure_id="fig08",
        title="Physical address values of the heap virtual addresses",
        body=(
            f"./virtual_to_physical.out {sighting.pid} {first_page:#x}\n"
            f"{pa_first:#x}\n"
            f"./virtual_to_physical.out {sighting.pid} {last_page:#x}\n"
            f"{pa_last:#x}"
        ),
        claims={
            "heap start translates to DRAM physical address": pa_first > 0,
            "translations fall in user DRAM (>= 0x60000000)": (
                pa_first >= 0x6000_0000 and pa_last >= 0x6000_0000
            ),
        },
    )

    # -- Fig. 9: pid absent after termination -----------------------------------
    ps_after = report.ps_after
    figures["fig09"] = FigureArtifact(
        figure_id="fig09",
        title="PID absent from process list after termination",
        body=ps_after,
        claims={
            "victim pid gone from ps output": (
                f" {sighting.pid} " not in ps_after
            ),
            "other processes still listed": "init" in ps_after,
        },
    )

    # -- Fig. 10: devmem reads of the residue --------------------------------------
    word_first = int.from_bytes(dump.data[:4], "little")
    profile = profiles.get(victim_model)
    image_word_offset = profile.image_offset
    word_image = int.from_bytes(
        dump.data[image_word_offset : image_word_offset + 4], "little"
    )
    figures["fig10"] = FigureArtifact(
        figure_id="fig10",
        title="devmem reads at harvested physical addresses",
        body=(
            f"devmem {pa_first:#x}\n0x{word_first:08X}\n"
            f"devmem {harvested.physical_of(first_page + image_word_offset):#x}\n"
            f"0x{word_image:08X}"
        ),
        claims={
            "devmem returns data after process termination": dump.pages_read > 0,
            "image-region word is the corruption marker": word_image == 0xFFFFFFFF,
        },
    )

    # -- Fig. 11: model name found in hexdump ---------------------------------------
    identification = report.identification
    assert identification is not None
    grep_lines = "\n".join(hit.row_text for hit in identification.grep_hits)
    figures["fig11"] = FigureArtifact(
        figure_id="fig11",
        title='grep "resnet50" over the scraped hexdump',
        body=grep_lines,
        claims={
            "model name visible in dump": bool(identification.grep_hits),
            "correct model identified": identification.best_model == victim_model,
        },
    )

    # -- Fig. 12: corrupted-image marker rows + reconstruction ------------------------
    reconstruction = report.reconstruction
    assert reconstruction is not None
    fidelity = image_fidelity(reconstruction.image, corrupted)
    marker_rows = reconstruction.marker_rows
    expected_marker_bytes = int(input_hw * corruption_fraction) * input_hw * 3
    body_rows = [
        f"first marker row: {marker_rows[0]}" if marker_rows else "no marker rows",
        f"solid 'FFFF FFFF' rows: {len(marker_rows)}",
        f"profiled image offset: {profile.image_offset:#x} "
        f"(hexdump row {profile.hexdump_row})",
        f"reconstruction pixel match: {fidelity.pixel_match_rate:.3f}",
    ]
    figures["fig12"] = FigureArtifact(
        figure_id="fig12",
        title="Corrupted-image identifier in the dump and reconstruction",
        body="\n".join(body_rows),
        claims={
            "solid FFFF FFFF rows found (image residue)": bool(marker_rows),
            "marker row count matches corrupted band size": (
                abs(len(marker_rows) - expected_marker_bytes // 16) <= 2
            ),
            "input image reconstructed exactly": fidelity.is_exact,
        },
    )
    return figures


def _maps_of_dead_victim(harvested) -> list[str]:
    """Synthesize the Fig. 7 maps excerpt from the harvested range.

    The victim is gone by the time figures are assembled, so the heap
    line is re-rendered from the snapshot the attack took while the
    victim lived — the same bytes the attacker saw.
    """
    return [
        f"{harvested.heap_start:08x}-{harvested.heap_end:08x} rw-p "
        f"00000000 00:00 0                          [heap]"
    ]


def render_figure_report(figures: dict[str, FigureArtifact]) -> str:
    """All artifacts concatenated — what ``repro figures`` prints."""
    ordered = sorted(figures)
    return "\n\n".join(figures[figure_id].render() for figure_id in ordered)
