"""Canned experiment scenarios.

:class:`BoardSession` is the shared fixture of the whole evaluation: a
booted ZCU104 twin with the paper's two-terminal setup (attacker on
``pts/0``, victim on ``pts/1``).  On top of it:

- :func:`run_paper_attack` — the full §IV/§V experiment: profile,
  launch victim with a corrupted image, attack, score fidelity.
- :func:`attack_under_config` — the same attack against an arbitrary
  kernel configuration, recording *which step* fails; drives the
  defense-ablation benchmark.
- :func:`reuse_decay_experiment` — how recovery decays as freed frames
  get reallocated to new workloads.
- :func:`multi_tenant_scrub_experiment` — the §I-B motivation: naive
  contiguous-range scrubbing corrupts the co-tenant, per-page scrubbing
  does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.config import AttackConfig
from repro.attack.pipeline import AttackReport, MemoryScrapingAttack
from repro.attack.profiling import OfflineProfiler, ProfileStore
from repro.errors import (
    AttackError,
    ExtractionError,
    IdentificationError,
    PermissionDeniedError,
    ProfilingError,
)
from repro.evaluation.metrics import ImageFidelity, image_fidelity
from repro.hw.board import BoardSpec, ZCU104
from repro.hw.soc import ZynqMpSoC
from repro.petalinux.kernel import KernelConfig, PetaLinuxKernel
from repro.petalinux.shell import Shell
from repro.petalinux.users import Terminal, User, default_terminals
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image


@dataclass
class BoardSession:
    """A booted board with the paper's attacker/victim terminals."""

    soc: ZynqMpSoC
    kernel: PetaLinuxKernel
    attacker_shell: Shell
    victim_shell: Shell
    input_hw: int = 32

    @classmethod
    def boot(
        cls,
        config: KernelConfig | None = None,
        board: BoardSpec = ZCU104,
        input_hw: int = 32,
        fill_seed: int = 0,
    ) -> "BoardSession":
        """Power up a board, install Vitis AI, log the two users in."""
        from repro.petalinux.rootfs import install_vitis_ai

        soc = ZynqMpSoC(board=board, fill_seed=fill_seed)
        kernel = PetaLinuxKernel(soc, config=config)
        install_vitis_ai(kernel.rootfs, input_hw=input_hw)
        attacker_terminal, victim_terminal = default_terminals()
        return cls(
            soc=soc,
            kernel=kernel,
            attacker_shell=Shell(kernel, attacker_terminal),
            victim_shell=Shell(kernel, victim_terminal),
            input_hw=input_hw,
        )

    def add_tenant(self, name: str, uid: int, tty: str) -> Shell:
        """Log an extra guest in (multi-tenant experiments)."""
        return Shell(self.kernel, Terminal(tty, User(name, uid)))

    def victim_application(self) -> VictimApplication:
        """An application factory bound to the victim terminal."""
        return VictimApplication(self.victim_shell, input_hw=self.input_hw)

    def profile(
        self, model_names: list[str], config: AttackConfig | None = None
    ) -> ProfileStore:
        """Run the attacker's offline profiling pass."""
        profiler = OfflineProfiler(
            self.attacker_shell, input_hw=self.input_hw, config=config
        )
        return profiler.profile_library(model_names)


@dataclass
class AttackOutcome:
    """Result of one full paper attack, with ground truth attached."""

    report: AttackReport
    victim_model: str
    victim_image: Image
    fidelity: ImageFidelity | None

    @property
    def model_identified_correctly(self) -> bool:
        """Whether step 4a named the model the victim actually ran."""
        return (
            self.report.identification is not None
            and self.report.identification.best_model == self.victim_model
        )

    @property
    def image_recovered_exactly(self) -> bool:
        """Whether step 4b recovered the input bit-for-bit."""
        return self.fidelity is not None and self.fidelity.is_exact


def run_paper_attack(
    session: BoardSession,
    victim_model: str = "resnet50_pt",
    profiles: ProfileStore | None = None,
    profile_models: list[str] | None = None,
    corruption_fraction: float = 0.2,
    attack_config: AttackConfig | None = None,
    image_seed: int = 7,
) -> AttackOutcome:
    """The paper's end-to-end experiment on one session.

    Profiles the library (unless a store is supplied), launches the
    victim with a partially corrupted test image (Fig. 4), runs the
    four attack steps, and scores the reconstruction against ground
    truth.
    """
    if profiles is None:
        names = profile_models or [victim_model, "squeezenet_pt", "inception_v1_tf"]
        if victim_model not in names:
            names = [victim_model] + list(names)
        profiles = session.profile(names, config=attack_config)
    secret = Image.test_pattern(
        session.input_hw, session.input_hw, seed=image_seed
    ).corrupted(corruption_fraction)
    run = session.victim_application().launch(victim_model, image=secret)
    attack = MemoryScrapingAttack(
        session.attacker_shell, profiles, config=attack_config
    )
    report = attack.execute(victim_model, terminate_victim=run.terminate)
    fidelity = None
    if report.reconstruction is not None:
        fidelity = image_fidelity(report.reconstruction.image, secret)
    return AttackOutcome(
        report=report,
        victim_model=victim_model,
        victim_image=secret,
        fidelity=fidelity,
    )


@dataclass
class DefenseOutcome:
    """How far the attack got against one kernel configuration."""

    config_label: str
    profiling_succeeded: bool
    steps_completed: int
    failed_step: str | None
    model_identified: bool
    image_recovered: bool
    detail: str = ""

    @property
    def attack_succeeded(self) -> bool:
        """Success means private data actually leaked."""
        return self.model_identified or self.image_recovered


def attack_under_config(
    config: KernelConfig,
    config_label: str,
    victim_model: str = "resnet50_pt",
    input_hw: int = 32,
    profiles: ProfileStore | None = None,
) -> DefenseOutcome:
    """Run the paper attack against an arbitrarily hardened kernel.

    Profiling runs on a *vulnerable reference board* when a profile
    store is not supplied — the adversary preps on hardware they
    control; the defense only has to protect the victim's board.
    Records which step the defense kills.
    """
    if profiles is None:
        reference = BoardSession.boot(input_hw=input_hw)
        try:
            profiles = reference.profile([victim_model, "squeezenet_pt"])
        except ProfilingError as error:
            return DefenseOutcome(
                config_label=config_label,
                profiling_succeeded=False,
                steps_completed=0,
                failed_step="offline profiling",
                model_identified=False,
                image_recovered=False,
                detail=str(error),
            )

    session = BoardSession.boot(config=config, input_hw=input_hw)
    secret = Image.test_pattern(input_hw, input_hw, seed=7).corrupted(0.2)
    run = session.victim_application().launch(victim_model, image=secret)
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)

    steps_completed = 0
    failed_step: str | None = None
    detail = ""
    report: AttackReport | None = None
    try:
        attack.observe_victim(victim_model)
        steps_completed = 1
        attack.harvest_addresses()
        steps_completed = 2
        run.terminate()
        attack.extract()
        steps_completed = 3
        report = attack.analyze()
        steps_completed = 4
    except (PermissionDeniedError, ExtractionError, IdentificationError,
            AttackError) as error:
        failed_step = {
            0: "step 1 (polling)",
            1: "step 2 (address harvest)",
            2: "step 3 (extraction)",
            3: "step 4 (analysis)",
        }[steps_completed]
        detail = str(error)
        if run.alive:
            run.terminate()

    model_identified = False
    image_recovered = False
    if report is not None and report.identification is not None:
        model_identified = report.identification.best_model == victim_model
    if report is not None and report.reconstruction is not None:
        fidelity = image_fidelity(report.reconstruction.image, secret)
        image_recovered = fidelity.pixel_match_rate > 0.99
    return DefenseOutcome(
        config_label=config_label,
        profiling_succeeded=True,
        steps_completed=steps_completed,
        failed_step=failed_step,
        model_identified=model_identified,
        image_recovered=image_recovered,
        detail=detail,
    )


@dataclass
class ReuseDecayPoint:
    """One point of the residue-decay curve."""

    filler_processes: int
    frames_surviving_fraction: float
    image_recovery_rate: float


def reuse_decay_experiment(
    filler_counts: list[int],
    victim_model: str = "resnet50_pt",
    input_hw: int = 32,
    filler_pages: int = 16,
) -> list[ReuseDecayPoint]:
    """Residue decay as freed frames are reallocated.

    After the victim dies, *n* filler processes are spawned (each
    dirtying ``filler_pages`` heap pages) before the attacker scrapes.
    With the default LIFO allocator the victim's own frames are reused
    first, so recovery decays quickly — the curve the extension
    benchmark plots.
    """
    from repro.evaluation.metrics import byte_recovery_rate

    points = []
    for count in filler_counts:
        session = BoardSession.boot(input_hw=input_hw)
        profiles = session.profile([victim_model])
        secret = Image.test_pattern(input_hw, input_hw, seed=7)
        run = session.victim_application().launch(victim_model, image=secret)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        attack.observe_victim(victim_model)
        attack.harvest_addresses()
        run.terminate()
        # Snapshot the victim's frames now — fillers will take them over.
        victim_frames = _victim_frames(session, run.pid)
        for filler_index in range(count):
            filler = session.kernel.spawn(
                [f"./filler_{filler_index}"],
                user=session.victim_shell.user,
                terminal=session.victim_shell.terminal,
            )
            arena = filler.heap_arena
            assert arena is not None
            arena.allocate_and_write(b"\xa5" * (filler_pages * 4096))
        dump = attack.extract()
        profile = profiles.get(victim_model)
        recovered = dump.data[
            profile.image_offset : profile.image_offset + profile.image_nbytes
        ]
        recovery = byte_recovery_rate(recovered, secret.to_raw_rgb())
        surviving = (
            sum(1 for frame in victim_frames if session.kernel.allocator.is_free(frame))
            / len(victim_frames)
        )
        points.append(
            ReuseDecayPoint(
                filler_processes=count,
                frames_surviving_fraction=surviving,
                image_recovery_rate=recovery,
            )
        )
    return points


def _victim_frames(session: BoardSession, pid: int) -> list[int]:
    """Ground-truth frame list of a dead victim (diagnostic)."""
    return [
        frame
        for frame in range(session.kernel.allocator.total_frames)
        if session.kernel.allocator.last_owner_of(frame) == pid
    ]


def warm_reboot(session: BoardSession, scrub_on_boot: bool = False) -> BoardSession:
    """Reboot the OS while DRAM keeps its contents (a Zynq warm reset).

    A warm reset (PS-only reset, or a reboot fast enough that the DDR
    retains charge) does not clear the DDR4 — so residue from before
    the reboot is still scrapeable afterwards, and the deterministic
    allocator reproduces the same physical layout.  ``scrub_on_boot``
    models a boot-time memory wipe, the boot-level analogue of
    zero-on-free.
    """
    from repro.petalinux.rootfs import install_vitis_ai

    if scrub_on_boot:
        reserved = session.kernel.config.reserved_frames
        dram = session.soc.dram
        for frame in range(reserved, dram.capacity // 4096):
            if dram.is_page_touched(frame):
                dram.scrub_page(frame)
    kernel = PetaLinuxKernel(session.soc, config=session.kernel.config)
    install_vitis_ai(kernel.rootfs, input_hw=session.input_hw)
    attacker_terminal, victim_terminal = default_terminals()
    return BoardSession(
        soc=session.soc,
        kernel=kernel,
        attacker_shell=Shell(kernel, attacker_terminal),
        victim_shell=Shell(kernel, victim_terminal),
        input_hw=session.input_hw,
    )


@dataclass
class MultiTenantOutcome:
    """Effect of a scrubbing strategy on a co-tenant's live data."""

    strategy: str
    victim_residue_cleared: bool
    cotenant_data_intact: bool


def multi_tenant_scrub_experiment(input_hw: int = 32) -> list[MultiTenantOutcome]:
    """Naive contiguous scrubbing vs per-page scrubbing (paper §I-B).

    Two tenants interleave heap allocations in physical memory.  When
    tenant A dies, scrubbing the *contiguous physical range* spanned by
    A's frames also wipes B's interleaved live pages; scrubbing exactly
    A's frames does not.  Reproduces the paper's argument for
    targeted, non-contiguous sanitization.
    """
    outcomes = []
    for strategy in ("contiguous_range", "per_page"):
        session = BoardSession.boot(input_hw=input_hw)
        tenant_b_shell = session.add_tenant("guest_b", 1003, "pts/2")
        process_a = session.kernel.spawn(
            ["./tenant_a"], user=session.victim_shell.user,
            terminal=session.victim_shell.terminal,
        )
        process_b = session.kernel.spawn(
            ["./tenant_b"], user=tenant_b_shell.user,
            terminal=tenant_b_shell.terminal,
            heap_base=0xAAAB_0000_0000,
        )
        marker_b = b"TENANT_B_LIVE_DATA" * 256
        arena_a = process_a.heap_arena
        arena_b = process_b.heap_arena
        assert arena_a is not None and arena_b is not None
        # Interleave allocations so the tenants' frames alternate.
        addresses_b = []
        for _ in range(8):
            arena_a.allocate_and_write(b"\x41" * 4096)
            addresses_b.append(arena_b.allocate_and_write(marker_b[:4096]))
        a_frames = sorted(
            frame
            for frame in range(session.kernel.allocator.total_frames)
            if session.kernel.allocator.owner_of(frame) == process_a.pid
        )
        session.kernel.exit_process(process_a.pid)
        if strategy == "contiguous_range":
            low = min(a_frames)
            high = max(a_frames)
            for frame in range(low, high + 1):
                session.soc.dram.scrub_page(frame)
        else:
            for frame in a_frames:
                session.soc.dram.scrub_page(frame)
        residue_cleared = all(
            session.soc.dram.read(frame * 4096, 4096) == b"\x00" * 4096
            for frame in a_frames
        )
        intact = all(
            arena_b.read(address, 4096) == marker_b[:4096]
            for address in addresses_b
        )
        outcomes.append(
            MultiTenantOutcome(
                strategy=strategy,
                victim_residue_cleared=residue_cleared,
                cotenant_data_intact=intact,
            )
        )
    return outcomes
