"""Memory management: frames, page tables, pagemap, address spaces."""

from repro.mmu.paging import (
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    align_down,
    align_up,
    is_page_aligned,
    page_count,
    page_offset,
    vpn_of,
)
from repro.mmu.frame_alloc import FrameAllocator, ReusePolicy
from repro.mmu.pagetable import PageTable, PageTableEntry
from repro.mmu.pagemap import (
    PM_FILE_BIT,
    PM_PFN_BITS,
    PM_PRESENT_BIT,
    PM_SOFT_DIRTY_BIT,
    PM_SWAP_BIT,
    PagemapEntry,
    decode_entry,
    encode_entry,
)
from repro.mmu.address_space import AddressSpace, Vma, VmaKind

__all__ = [
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "align_down",
    "align_up",
    "is_page_aligned",
    "page_count",
    "page_offset",
    "vpn_of",
    "FrameAllocator",
    "ReusePolicy",
    "PageTable",
    "PageTableEntry",
    "PM_FILE_BIT",
    "PM_PFN_BITS",
    "PM_PRESENT_BIT",
    "PM_SOFT_DIRTY_BIT",
    "PM_SWAP_BIT",
    "PagemapEntry",
    "decode_entry",
    "encode_entry",
    "AddressSpace",
    "Vma",
    "VmaKind",
]
