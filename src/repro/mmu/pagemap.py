"""Bit-exact Linux ``/proc/<pid>/pagemap`` entry encoding.

The attack's step 2 parses real pagemap bytes, so the encoding follows
``fs/proc/task_mmu.c`` exactly: one little-endian u64 per virtual page,

====== =======================================
bits   meaning
====== =======================================
0-54   page frame number (when present)
55     soft-dirty
56     exclusively mapped
61     file-page / shared-anon
62     swapped
63     present
====== =======================================

The attacker-side tool (:mod:`repro.attack.addressing`) re-implements
the paper's C program: ``seek(pagemap_fd, (va / PAGE_SIZE) * 8)``, read
8 bytes, mask out the PFN.  Keeping the format bit-exact means that
code would work unchanged against a real board's pagemap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitfield import bit, extract_bits, insert_bits

PM_PFN_BITS = 55
PM_SOFT_DIRTY_BIT = 55
PM_MMAP_EXCLUSIVE_BIT = 56
PM_FILE_BIT = 61
PM_SWAP_BIT = 62
PM_PRESENT_BIT = 63

ENTRY_SIZE = 8
"""Bytes per pagemap entry (one u64)."""


@dataclass(frozen=True)
class PagemapEntry:
    """Decoded view of one pagemap u64."""

    present: bool
    pfn: int
    swapped: bool = False
    file_page: bool = False
    soft_dirty: bool = False
    exclusive: bool = False

    def __post_init__(self) -> None:
        if self.pfn < 0 or self.pfn >= 1 << PM_PFN_BITS:
            raise ValueError(f"PFN {self.pfn:#x} does not fit in {PM_PFN_BITS} bits")
        if self.present and self.swapped:
            raise ValueError("a page cannot be both present and swapped")


def encode_entry(entry: PagemapEntry) -> int:
    """Pack a :class:`PagemapEntry` into its u64 wire value."""
    value = 0
    if entry.present:
        value = insert_bits(value, 0, PM_PFN_BITS, entry.pfn)
        value |= bit(PM_PRESENT_BIT)
    if entry.swapped:
        value |= bit(PM_SWAP_BIT)
    if entry.file_page:
        value |= bit(PM_FILE_BIT)
    if entry.soft_dirty:
        value |= bit(PM_SOFT_DIRTY_BIT)
    if entry.exclusive:
        value |= bit(PM_MMAP_EXCLUSIVE_BIT)
    return value


def decode_entry(value: int) -> PagemapEntry:
    """Unpack a u64 wire value into a :class:`PagemapEntry`.

    The PFN field is only meaningful when the present bit is set; for
    non-present pages it decodes as zero, matching the kernel's
    behaviour of hiding frame numbers for unmapped pages.  A value with
    both present and swap set (which the kernel never emits) decodes
    as present — tolerating garbage keeps the attacker-side parser
    total over arbitrary u64 input.
    """
    if value < 0 or value >= 1 << 64:
        raise ValueError(f"pagemap value {value:#x} is not a u64")
    present = bool(value & bit(PM_PRESENT_BIT))
    pfn = extract_bits(value, 0, PM_PFN_BITS) if present else 0
    return PagemapEntry(
        present=present,
        pfn=pfn,
        swapped=bool(value & bit(PM_SWAP_BIT)) and not present,
        file_page=bool(value & bit(PM_FILE_BIT)),
        soft_dirty=bool(value & bit(PM_SOFT_DIRTY_BIT)),
        exclusive=bool(value & bit(PM_MMAP_EXCLUSIVE_BIT)),
    )


def entry_to_bytes(entry: PagemapEntry) -> bytes:
    """Little-endian 8-byte wire form, as read from the pagemap file."""
    return encode_entry(entry).to_bytes(ENTRY_SIZE, "little")


def entry_from_bytes(data: bytes) -> PagemapEntry:
    """Parse one 8-byte little-endian pagemap record."""
    if len(data) != ENTRY_SIZE:
        raise ValueError(f"pagemap entries are {ENTRY_SIZE} bytes, got {len(data)}")
    return decode_entry(int.from_bytes(data, "little"))


def absent_entry() -> PagemapEntry:
    """The all-clear entry the kernel emits for unmapped pages."""
    return PagemapEntry(present=False, pfn=0)
