"""Per-process page tables.

A flat VPN → PTE map stands in for the ARMv8 four-level walk; the
translation *result* (which frame backs which virtual page, with what
permissions) is identical, and that result is all the pagemap file and
the attack consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TranslationFault
from repro.mmu.paging import PAGE_SHIFT, page_offset, vpn_of


@dataclass(frozen=True)
class PageTableEntry:
    """One mapping: virtual page -> physical frame with permissions."""

    frame: int
    readable: bool = True
    writable: bool = True
    executable: bool = False

    def perms(self) -> str:
        """Render as the maps-file style triple, e.g. ``rw-``."""
        return (
            ("r" if self.readable else "-")
            + ("w" if self.writable else "-")
            + ("x" if self.executable else "-")
        )


class PageTable:
    """Mutable VPN → :class:`PageTableEntry` mapping for one process."""

    def __init__(self) -> None:
        self._entries: dict[int, PageTableEntry] = {}

    def map_page(self, vpn: int, entry: PageTableEntry) -> None:
        """Install a mapping; remapping an already-mapped VPN is an error."""
        if vpn in self._entries:
            raise ValueError(f"VPN {vpn:#x} is already mapped")
        self._entries[vpn] = entry

    def unmap_page(self, vpn: int) -> PageTableEntry:
        """Remove and return the mapping for *vpn*."""
        try:
            return self._entries.pop(vpn)
        except KeyError:
            raise TranslationFault(vpn << PAGE_SHIFT) from None

    def lookup(self, vpn: int) -> PageTableEntry | None:
        """The PTE for *vpn*, or ``None`` when unmapped."""
        return self._entries.get(vpn)

    def translate(self, virtual_address: int) -> int:
        """Translate a virtual address to a physical frame-space address.

        Returns ``frame * PAGE_SIZE + page_offset`` — the *DRAM frame
        address*; the SoC address map turns frames into global physical
        addresses.  Raises :class:`~repro.errors.TranslationFault` for
        unmapped addresses.
        """
        entry = self._entries.get(vpn_of(virtual_address))
        if entry is None:
            raise TranslationFault(virtual_address)
        return (entry.frame << PAGE_SHIFT) | page_offset(virtual_address)

    def mapped_vpns(self) -> list[int]:
        """All mapped VPNs, ascending."""
        return sorted(self._entries)

    def frames(self) -> list[int]:
        """All backing frames, in VPN order."""
        return [self._entries[vpn].frame for vpn in self.mapped_vpns()]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
