"""Per-process virtual address spaces: VMAs, brk, virtual I/O.

The layout mirrors 48-bit aarch64 PetaLinux, which is why the figures
this package regenerates show the same shapes as the paper's: the heap
lives in the ``0xaaaa_...`` range (paper Fig. 7) and mmap'd device
regions near ``0xffff_...``.

Pages are mapped eagerly when a VMA is created or the heap grows —
demand paging would add machinery without changing anything the attack
observes (the victim touches its whole heap anyway, so by scrape time
every heap page is present and the pagemap walk succeeds for the full
range, as in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TranslationFault, VmaError
from repro.hw.dram import DramDevice
from repro.mmu.frame_alloc import FrameAllocator
from repro.mmu.paging import (
    PAGE_SHIFT,
    PAGE_SIZE,
    align_up,
    is_page_aligned,
    page_count,
    vpn_of,
)
from repro.mmu.pagetable import PageTable, PageTableEntry


class VmaKind(enum.Enum):
    """What a VMA holds; drives the name column of the maps file."""

    TEXT = "text"
    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    ANON = "anon"
    FILE = "file"
    DEVICE = "device"


@dataclass
class Vma:
    """One virtual memory area (half-open byte range, page aligned)."""

    start: int
    end: int
    perms: str
    kind: VmaKind
    name: str = ""
    file_offset: int = 0
    dev: str = "00:00"
    inode: int = 0

    def __post_init__(self) -> None:
        if not is_page_aligned(self.start) or not is_page_aligned(self.end):
            raise VmaError(
                f"VMA [{self.start:#x}, {self.end:#x}) is not page aligned"
            )
        if self.end <= self.start:
            raise VmaError(f"empty or inverted VMA [{self.start:#x}, {self.end:#x})")
        if len(self.perms) != 4 or any(c not in "rwxps-" for c in self.perms):
            raise VmaError(f"malformed perms {self.perms!r}")

    @property
    def length(self) -> int:
        """Size of the area in bytes."""
        return self.end - self.start

    def contains(self, address: int) -> bool:
        """Whether *address* falls inside the area."""
        return self.start <= address < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """Whether the byte range [start, end) intersects this VMA."""
        return self.start < end and start < self.end

    def maps_line(self) -> str:
        """Render the area as one ``/proc/<pid>/maps`` line.

        Matches the kernel's ``show_map_vma`` format, e.g. (paper
        Fig. 7)::

            aaaaee775000-aaaaefd8a000 rw-p 00000000 00:00 0    [heap]
        """
        prefix = (
            f"{self.start:08x}-{self.end:08x} {self.perms} "
            f"{self.file_offset:08x} {self.dev} {self.inode}"
        )
        if not self.name:
            return prefix
        return f"{prefix:<73}{self.name}"


@dataclass
class AddressSpace:
    """Virtual memory of one process, backed by physical DRAM frames.

    ``allocator``/``owner`` obtain frames, ``memory`` is the DRAM
    device the frames live in (frame-space addresses, i.e. the
    device-offset space the page table translates into).
    """

    allocator: FrameAllocator
    memory: DramDevice
    owner: int | None = None
    page_table: PageTable = field(default_factory=PageTable)
    _vmas: list[Vma] = field(default_factory=list)
    _torn_down: bool = False

    # -- VMA management -----------------------------------------------------

    def vmas(self) -> list[Vma]:
        """All areas, ascending by start address."""
        return list(self._vmas)

    def find_vma(self, address: int) -> Vma | None:
        """The VMA containing *address*, if any."""
        for vma in self._vmas:
            if vma.contains(address):
                return vma
        return None

    def vma_by_name(self, name: str) -> Vma | None:
        """First VMA whose name column equals *name* (e.g. ``[heap]``)."""
        for vma in self._vmas:
            if vma.name == name:
                return vma
        return None

    def _check_no_overlap(self, start: int, end: int) -> None:
        for vma in self._vmas:
            if vma.overlaps(start, end):
                raise VmaError(
                    f"range [{start:#x}, {end:#x}) overlaps VMA "
                    f"[{vma.start:#x}, {vma.end:#x}) {vma.name!r}"
                )

    def _map_range(self, start: int, end: int, perms: str) -> None:
        frames = self.allocator.allocate(page_count(end - start), owner=self.owner)
        # Anonymous pages are zero-filled when handed to userspace, as on
        # any Linux.  The paper's residue lives in *freed* frames read
        # through /dev/mem — a path this zeroing does not touch.
        for frame in frames:
            self.memory.scrub_page(frame)
        for index, vpn in enumerate(range(vpn_of(start), vpn_of(end - 1) + 1)):
            self.page_table.map_page(
                vpn,
                PageTableEntry(
                    frame=frames[index],
                    readable="r" in perms,
                    writable="w" in perms,
                    executable="x" in perms,
                ),
            )

    def add_vma(
        self,
        start: int,
        length: int,
        perms: str,
        kind: VmaKind,
        name: str = "",
        file_offset: int = 0,
        dev: str = "00:00",
        inode: int = 0,
    ) -> Vma:
        """Create an area and eagerly back it with fresh frames."""
        if self._torn_down:
            raise VmaError("address space has been torn down")
        end = start + align_up(length)
        self._check_no_overlap(start, end)
        vma = Vma(start, end, perms, kind, name, file_offset, dev, inode)
        self._map_range(start, end, perms)
        self._vmas.append(vma)
        self._vmas.sort(key=lambda area: area.start)
        return vma

    def remove_vma(self, vma: Vma) -> list[int]:
        """Unmap an area; returns the frames that backed it (not freed).

        The caller (the kernel) decides what happens to the frames —
        that decision point is where the sanitize-on-free policy lives.
        """
        if vma not in self._vmas:
            raise VmaError(f"VMA {vma.name!r} not part of this address space")
        frames = []
        for vpn in range(vpn_of(vma.start), vpn_of(vma.end - 1) + 1):
            frames.append(self.page_table.unmap_page(vpn).frame)
        self._vmas.remove(vma)
        return frames

    # -- heap (brk) ----------------------------------------------------------

    def heap(self) -> Vma | None:
        """The ``[heap]`` area, if the process has one."""
        for vma in self._vmas:
            if vma.kind is VmaKind.HEAP:
                return vma
        return None

    def create_heap(self, start: int, initial_length: int = PAGE_SIZE) -> Vma:
        """Create the heap area at *start* (one per address space)."""
        if self.heap() is not None:
            raise VmaError("address space already has a heap")
        return self.add_vma(
            start, initial_length, "rw-p", VmaKind.HEAP, name="[heap]"
        )

    def brk(self, new_end: int) -> Vma:
        """Grow (or keep) the heap so it ends at or beyond *new_end*.

        Models the kernel's ``brk`` syscall for the grow direction the
        victim application uses; shrinking is intentionally not
        supported (glibc malloc on the board never trims the main
        arena during the victim's run).
        """
        heap = self.heap()
        if heap is None:
            raise VmaError("no heap to grow; call create_heap first")
        aligned_end = align_up(new_end)
        if aligned_end <= heap.end:
            return heap
        self._check_no_overlap(heap.end, aligned_end)
        self._map_range(heap.end, aligned_end, heap.perms)
        heap.end = aligned_end
        return heap

    # -- virtual memory I/O ----------------------------------------------------

    def translate(self, virtual_address: int) -> int:
        """Virtual address → frame-space (DRAM device offset) address."""
        return self.page_table.translate(virtual_address)

    def _walk(self, virtual_address: int, length: int):
        """Yield (frame_space_address, chunk_length) page by page."""
        cursor = virtual_address
        remaining = length
        while remaining > 0:
            frame_space = self.page_table.translate(cursor)
            in_page = cursor & (PAGE_SIZE - 1)
            take = min(remaining, PAGE_SIZE - in_page)
            yield frame_space, take
            cursor += take
            remaining -= take

    def read_virtual(self, virtual_address: int, length: int) -> bytes:
        """Read *length* bytes at a virtual address (page-wise gather)."""
        out = bytearray()
        for frame_space, take in self._walk(virtual_address, length):
            out += self.memory.read(frame_space, take)
        return bytes(out)

    def write_virtual(self, virtual_address: int, data: bytes) -> None:
        """Write *data* at a virtual address (page-wise scatter)."""
        position = 0
        for frame_space, take in self._walk(virtual_address, len(data)):
            self.memory.write(frame_space, data[position : position + take])
            position += take

    def physical_segments(self, virtual_address: int, length: int) -> list[tuple[int, int]]:
        """Coalesced (frame_space_address, length) list covering a VA range.

        This is the scatter-gather list the DPU DMA uses, and also what
        the attack effectively rebuilds from the pagemap.
        """
        segments: list[tuple[int, int]] = []
        for frame_space, take in self._walk(virtual_address, length):
            if segments and segments[-1][0] + segments[-1][1] == frame_space:
                segments[-1] = (segments[-1][0], segments[-1][1] + take)
            else:
                segments.append((frame_space, take))
        return segments

    # -- teardown ---------------------------------------------------------------

    def teardown(self) -> list[int]:
        """Unmap everything; returns all frames in VPN order (not freed).

        After teardown the address space is dead: any further mapping
        or I/O raises.  The kernel passes the returned frames through
        its sanitizer policy and then to the allocator's free list.
        """
        frames = []
        for vma in list(self._vmas):
            frames.extend(self.remove_vma(vma))
        self._torn_down = True
        return frames

    @property
    def torn_down(self) -> bool:
        """Whether :meth:`teardown` has run."""
        return self._torn_down

    # -- rendering ----------------------------------------------------------------

    def render_maps(self) -> str:
        """The full ``/proc/<pid>/maps`` content for this address space."""
        return "\n".join(vma.maps_line() for vma in self._vmas)

    def resident_bytes(self) -> int:
        """Total mapped bytes (RSS — everything is resident here)."""
        return len(self.page_table) * PAGE_SIZE
