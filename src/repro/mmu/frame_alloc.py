"""The physical frame allocator.

Two of its properties carry the paper's findings:

1. **Frames are never cleared here.**  ``free()`` just returns the frame
   to the free pool; the bytes the owning process wrote stay in DRAM.
   Sanitization, when enabled, is a kernel policy layered on top
   (:mod:`repro.petalinux.sanitizer`).
2. **Allocation order is deterministic** by default (ascending
   first-fit with LIFO reuse), which is what lets the attacker's
   offline profiling predict physical layout run after run — the
   paper's third PetaLinux finding ("no randomization in physical page
   layout").  The ``RANDOM`` policy is the physical-ASLR defense knob.

The allocator also remembers, for every frame, the pid that last held
it.  That bookkeeping is *diagnostic only* (used by the evaluation
metrics to check ground truth); neither the kernel nor the attack read
it.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field

from repro.errors import OutOfMemoryError


class ReusePolicy(enum.Enum):
    """Order in which freed frames are handed back out."""

    LIFO = "lifo"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass
class FrameAllocatorStats:
    """Counters used by the reuse-decay experiment."""

    allocations: int = 0
    frees: int = 0
    frames_allocated: int = 0
    frames_freed: int = 0


class FrameAllocator:
    """Allocates physical page frames from a contiguous frame range.

    ``base_frame`` reserves the low frames (kernel image, DMA pools) so
    user allocations land in the region the paper's devmem reads hit
    (PAs around 0x6... on the ZCU104 — well above the kernel).
    """

    def __init__(
        self,
        total_frames: int,
        base_frame: int = 0,
        policy: ReusePolicy = ReusePolicy.LIFO,
        seed: int = 0,
    ) -> None:
        if total_frames <= 0:
            raise ValueError(f"total_frames must be positive, got {total_frames}")
        if not 0 <= base_frame < total_frames:
            raise ValueError(
                f"base_frame {base_frame} outside [0, {total_frames})"
            )
        self._total_frames = total_frames
        self._base_frame = base_frame
        self._policy = policy
        self._rng = random.Random(seed)
        # Deterministic policies hand out never-used frames in ascending
        # order from this watermark; freed frames go to the reuse pool.
        # RANDOM models physical ASLR: placement must be unpredictable
        # for *first* allocations too, so the whole frame range starts
        # in the (randomly drawn-from) pool and the watermark is spent.
        if policy is ReusePolicy.RANDOM:
            self._watermark = total_frames
            # A plain list allows O(1) swap-remove random draws.
            self._free_pool: "deque[int] | list[int]" = list(
                range(base_frame, total_frames)
            )
            self._free_set: set[int] = set(self._free_pool)
        else:
            self._watermark = base_frame
            self._free_pool = deque()
            self._free_set = set()
        self._owner: dict[int, int | None] = {}
        self._last_owner: dict[int, int] = {}
        self.stats = FrameAllocatorStats()

    # -- introspection -----------------------------------------------------

    @property
    def policy(self) -> ReusePolicy:
        """The configured reuse policy."""
        return self._policy

    @property
    def total_frames(self) -> int:
        """Size of the managed frame range (including reserved base)."""
        return self._total_frames

    def free_frames(self) -> int:
        """How many frames are currently allocatable."""
        return (self._total_frames - self._watermark) + len(self._free_pool)

    def allocated_frames(self) -> int:
        """How many frames are currently held by owners."""
        return len(self._owner)

    def owner_of(self, frame: int) -> int | None:
        """Current owner pid of *frame*, or ``None`` if free/never used."""
        return self._owner.get(frame)

    def last_owner_of(self, frame: int) -> int | None:
        """Pid that most recently held *frame* (diagnostic ground truth)."""
        return self._last_owner.get(frame)

    def is_allocated(self, frame: int) -> bool:
        """Whether *frame* is currently allocated."""
        return frame in self._owner

    # -- allocation --------------------------------------------------------

    def _take_from_pool(self) -> int:
        if self._policy is ReusePolicy.LIFO:
            frame = self._free_pool.pop()
        elif self._policy is ReusePolicy.FIFO:
            frame = self._free_pool.popleft()
        else:
            # Swap-remove keeps random draws O(1) even with the whole
            # frame range pooled (the physical-ASLR configuration).
            index = self._rng.randrange(len(self._free_pool))
            last = self._free_pool[-1]
            frame = self._free_pool[index]
            self._free_pool[index] = last
            self._free_pool.pop()
        self._free_set.discard(frame)
        return frame

    def allocate(self, count: int, owner: int | None = None) -> list[int]:
        """Allocate *count* frames for *owner* (a pid, or None for kernel).

        Freed frames are preferred over never-used frames, because that
        is what exposes residue to reuse — and what the reuse-decay
        experiment measures.  Raises
        :class:`~repro.errors.OutOfMemoryError` if the request cannot
        be satisfied (no partial allocation is left behind).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if count > self.free_frames():
            raise OutOfMemoryError(
                f"requested {count} frames, only {self.free_frames()} free"
            )
        frames = []
        for _ in range(count):
            if self._free_pool:
                frame = self._take_from_pool()
            else:
                frame = self._watermark
                self._watermark += 1
            self._owner[frame] = owner
            if owner is not None:
                self._last_owner[frame] = owner
            frames.append(frame)
        self.stats.allocations += 1
        self.stats.frames_allocated += count
        return frames

    def free(self, frames: list[int]) -> None:
        """Return *frames* to the pool.  Contents are NOT cleared.

        Raises ``ValueError`` on double-free or freeing an unallocated
        frame — those are simulation bugs, not modelled behaviour.
        """
        for frame in frames:
            if frame not in self._owner:
                raise ValueError(f"double free or wild free of frame {frame}")
        for frame in frames:
            del self._owner[frame]
            self._free_pool.append(frame)
            self._free_set.add(frame)
        self.stats.frees += 1
        self.stats.frames_freed += len(frames)

    def is_free(self, frame: int) -> bool:
        """Whether *frame* is in the reuse pool (freed, residue intact)."""
        return frame in self._free_set
