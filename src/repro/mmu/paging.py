"""Page-granularity constants and alignment helpers.

PetaLinux on the Cortex-A53 uses 4 KiB pages; every layer of the
simulation shares these constants so a "page" means the same thing to
the DRAM device, the frame allocator, the pagemap encoder and the
attack's address arithmetic.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


def is_page_aligned(address: int) -> bool:
    """Whether *address* sits on a page boundary."""
    return (address & PAGE_MASK) == 0


def align_down(address: int) -> int:
    """Round *address* down to its page boundary."""
    return address & ~PAGE_MASK


def align_up(address: int) -> int:
    """Round *address* up to the next page boundary (identity if aligned)."""
    return (address + PAGE_MASK) & ~PAGE_MASK


def page_offset(address: int) -> int:
    """Byte offset of *address* within its page."""
    return address & PAGE_MASK


def vpn_of(address: int) -> int:
    """Virtual page number containing *address*."""
    return address >> PAGE_SHIFT


def page_count(length: int) -> int:
    """Number of pages needed to hold *length* bytes."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return (length + PAGE_MASK) >> PAGE_SHIFT


def page_span(start: int, end: int) -> range:
    """Iterate the VPNs covering the half-open byte range [start, end)."""
    if end < start:
        raise ValueError(f"end {end:#x} precedes start {start:#x}")
    if start == end:
        return range(0)
    return range(vpn_of(start), vpn_of(end - 1) + 1)
