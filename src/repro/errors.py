"""Exception hierarchy for the repro package.

Every error raised by the simulation or the attack pipeline derives from
:class:`ReproError`, so callers can catch one base class.  The hierarchy
mirrors the layers of the system: hardware bus faults, MMU translation
faults, OS-level errors (bad pid, permission), and attack-stage failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class HardwareError(ReproError):
    """Base class for hardware-layer errors."""


class BusError(HardwareError):
    """A physical address does not decode to any device on the SoC bus."""

    def __init__(self, address: int, message: str | None = None) -> None:
        self.address = address
        super().__init__(message or f"bus error at physical address {address:#x}")


class DramAddressError(HardwareError):
    """A DRAM-relative offset is outside the device's capacity."""

    def __init__(self, offset: int, capacity: int) -> None:
        self.offset = offset
        self.capacity = capacity
        super().__init__(
            f"DRAM offset {offset:#x} out of range (capacity {capacity:#x})"
        )


class MmuError(ReproError):
    """Base class for memory-management errors."""


class OutOfMemoryError(MmuError):
    """The physical frame allocator has no free frames left."""


class TranslationFault(MmuError):
    """A virtual address has no mapping in the page table."""

    def __init__(self, virtual_address: int, pid: int | None = None) -> None:
        self.virtual_address = virtual_address
        self.pid = pid
        detail = f" (pid {pid})" if pid is not None else ""
        super().__init__(
            f"no translation for virtual address {virtual_address:#x}{detail}"
        )


class VmaError(MmuError):
    """An operation on a virtual memory area is invalid (overlap, bad range)."""


class OsError(ReproError):
    """Base class for PetaLinux (simulated OS) errors."""


class NoSuchProcessError(OsError):
    """The referenced pid does not exist (``ESRCH``)."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        super().__init__(f"no such process: pid {pid}")


class PermissionDeniedError(OsError):
    """The calling user may not perform the operation (``EACCES``).

    Raised only when the kernel is configured with hardened isolation;
    the paper's insecure default never raises this for procfs reads.
    """


class ProcessStateError(OsError):
    """The process is in the wrong state for the operation."""


class VitisError(ReproError):
    """Base class for Vitis-AI-runtime errors."""


class XModelFormatError(VitisError):
    """An xmodel blob fails to parse (bad magic, truncated, corrupt)."""


class UnknownModelError(VitisError):
    """The requested model name is not in the zoo."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown model: {name!r}")


class ImageFormatError(VitisError):
    """An image blob fails to parse or has inconsistent dimensions."""


class AttackError(ReproError):
    """Base class for attack-stage failures."""


class VictimNotFoundError(AttackError):
    """Step 1 polling never observed the victim process."""


class AddressHarvestError(AttackError):
    """Step 2 could not obtain the heap range or translate it."""


class ExtractionError(AttackError):
    """Step 3 failed to read physical memory (e.g. devmem blocked)."""


class IdentificationError(AttackError):
    """Step 4a could not attribute the dump to any profiled model."""


class ReconstructionError(AttackError):
    """Step 4b could not recover the input image from the dump."""


class ProfilingError(AttackError):
    """Offline profiling failed to locate the marker in the dump."""


class SpoolClosedError(ReproError):
    """A closed mmap-backed spool handle was used after ``close()``.

    The campaign spool memory-maps dump objects on read
    (``DumpSpool.open``); once the handle is closed the mapping is
    gone, and any further access raises this instead of handing out a
    segfault-adjacent stale view.
    """


class FabricError(ReproError):
    """Base class for distributed-campaign-fabric failures.

    The fabric (:mod:`repro.campaign.runtime.fabric`) runs one
    campaign across many hosts: a coordinator leases board shards to
    remote workers over a line-delimited JSON protocol.  Everything
    that can go wrong *between* hosts — protocol violations, fenced-off
    leases, corrupted dump transfers — derives from this class so a
    worker loop can catch one base and keep the board simulation's own
    error taxonomy (:class:`AttackError` and friends) untouched.
    """


class FabricProtocolError(FabricError):
    """A malformed or unanswerable fabric message (torn stream, bad
    JSON, unknown op, missing field, or a connection that died
    mid-exchange)."""


class FabricConnectionError(FabricProtocolError):
    """The transport under a fabric exchange died — the connection was
    refused, reset, timed out, or closed mid-frame.

    Distinguished from its parent because this class is *retryable*:
    the request may never have reached the coordinator (or its reply
    was lost), so a :class:`~repro.utils.resilience.RetryPolicy`-driven
    client can redial, re-handshake, and replay the op.  Every fabric
    op is safe to replay — the journal dedups by ``job_id`` and leases
    fence by epoch — so reconnect-and-replay can never corrupt state.
    """


class FabricTimeoutError(FabricError):
    """``run_until_complete`` gave up waiting for the campaign.

    A *clean* timeout: the coordinator's journal, spool, and lease
    table are untouched — outstanding leases simply keep expiring —
    and ``close()`` remains safe to call.  The run directory stays
    resumable via :meth:`FabricCoordinator.resume
    <repro.campaign.runtime.fabric.FabricCoordinator.resume>`.
    """


class CircuitOpenError(ReproError):
    """A :class:`~repro.utils.resilience.CircuitBreaker` is open.

    The protected operation has failed enough times in a row that the
    breaker refuses to even attempt it until the reset window passes;
    callers should back off rather than hammer a peer that is down.
    """

    def __init__(self, name: str, retry_after: float) -> None:
        self.name = name
        self.retry_after = retry_after
        super().__init__(
            f"circuit {name!r} is open; retry in {retry_after:.3f}s"
        )


class RetryExhaustedError(ReproError):
    """A retried operation ran out of attempts or deadline budget.

    Raised by :meth:`RetryPolicy.call
    <repro.utils.resilience.RetryPolicy.call>` (and the fabric's
    reconnect-and-replay client built on it) with the final underlying
    failure chained as ``__cause__``.  A fabric worker that surfaces
    this has deliberately given up on an unreachable coordinator —
    ``repro campaign work`` maps it to the documented exit code 4.
    """

    def __init__(self, op: str, attempts: int, elapsed: float) -> None:
        self.op = op
        self.attempts = attempts
        self.elapsed = elapsed
        super().__init__(
            f"{op}: retry budget exhausted after {attempts} attempt(s) "
            f"over {elapsed:.3f}s"
        )


class StaleLeaseError(FabricError):
    """An operation arrived under a lease that is no longer current.

    Leases are fencing tokens: when a worker misses its heartbeat
    deadline the coordinator reclaims the board and re-issues it under
    a new token, and every late message from the old holder — waves,
    heartbeats, completion markers — is rejected with this error so a
    partitioned-then-healed worker can never corrupt the journal.
    """

    def __init__(self, token: str, detail: str = "") -> None:
        self.token = token
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"lease {token!r} is not current{suffix}")


class DumpTransferError(FabricError):
    """A dump shipped over the wire failed content verification.

    Spool objects travel by digest; both ends re-hash the payload and
    refuse bytes that do not hash to the digest they claim, so a
    corrupted or tampered transfer can never be filed under a name it
    does not match.
    """


class ServiceError(ReproError):
    """Base class for analysis-service failures.

    The serving layer (:mod:`repro.service`) accepts dump uploads and
    analysis jobs from external clients over a newline-JSON protocol.
    Everything that can go wrong between a client and the daemon —
    admission refusals, unknown references, protocol violations —
    derives from this class so service loops can catch one base while
    the analysis itself keeps the :class:`AttackError` taxonomy.
    """


class QuotaExceededError(ServiceError):
    """A tenant's token bucket refused the request.

    Carries ``retry_after`` — the seconds until the bucket will have
    refilled enough to admit the identical request (``inf`` when the
    request is larger than the bucket's burst capacity and can never
    pass).  The daemon maps this to a ``quota`` wire response instead
    of buffering the work, so a hot tenant is throttled without
    degrading anyone else.
    """

    def __init__(self, tenant: str, what: str, retry_after: float) -> None:
        self.tenant = tenant
        self.what = what
        self.retry_after = retry_after
        super().__init__(
            f"tenant {tenant!r} exceeded its {what} quota; "
            f"retry in {retry_after:.3f}s"
        )


class BackpressureError(ServiceError):
    """The analysis queue is full; the daemon refuses to buffer more.

    Explicit backpressure: a bounded queue answers ``retry-after``
    instead of growing without bound.  Carries the advisory
    ``retry_after`` hint the wire response forwards.
    """

    def __init__(self, retry_after: float) -> None:
        self.retry_after = retry_after
        super().__init__(
            f"analysis queue is full; retry in {retry_after:.3f}s"
        )


class UnknownJobError(ServiceError):
    """A ``status`` request referenced a job id never issued."""

    def __init__(self, job_id: int) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job id {job_id}")


class ServiceDrainingError(ServiceError):
    """The daemon is draining (SIGTERM received); no new work is
    admitted.  Jobs accepted before the drain began still complete and
    stream their deltas — drain loses nothing, it only closes the
    door."""


class MetricsError(ReproError):
    """Base class for evaluation-metric failures.

    Metrics are pure functions over campaign artifacts; everything that
    can make one undefined — an empty sample, mismatched inputs —
    derives from this class so summarizers can catch one base instead
    of a bare ``ValueError`` they cannot tell apart from a programming
    mistake.
    """


class EmptyMetricError(MetricsError, ValueError):
    """A metric was asked to summarize an empty sample.

    Zero-victim runs are legal inputs now that explored scenarios and
    degenerate sweeps can produce them, so rate metrics raise this
    *typed* error instead of a bare ``ValueError``; callers that have a
    defined answer for "no victims" (``summarize_run`` reports 0.0)
    catch it explicitly.  Subclasses ``ValueError`` too, so pre-typed
    ``except ValueError`` call sites keep working unchanged.
    """

    def __init__(self, metric: str, what: str) -> None:
        self.metric = metric
        self.what = what
        super().__init__(f"{metric}: {what} is empty; the rate is undefined")


class CampaignInterrupted(ReproError):
    """A checkpointable campaign stopped before finishing every board.

    Raised by the campaign runtime when its configured fault-injection
    point (``interrupt_after``) fires — the simulated equivalent of the
    operator's process dying mid-run.  The run directory's journal and
    spool survive; ``repro campaign run --resume <dir>`` continues the
    campaign deterministically.
    """

    def __init__(self, run_dir: str, outcomes_journaled: int) -> None:
        self.run_dir = run_dir
        self.outcomes_journaled = outcomes_journaled
        super().__init__(
            f"campaign interrupted after {outcomes_journaled} journaled "
            f"outcome(s); resume from {run_dir}"
        )
