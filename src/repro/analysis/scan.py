"""Single-pass scanning primitives shared by every dump-analysis hot path.

PR 1 made extraction ~250x faster, which moved the fleet bottleneck
downstream into step-4 analysis: characterizing each multi-megabyte
dump (`repro.attack.carving`) and grepping it for model signatures
(`repro.attack.identify`) still walked the bytes in Python.  This
module is the shared engine those paths now route through:

- **256-entry byte-class translate tables** — :data:`CLASS_TABLE` maps
  every byte to a two-bit class (printable / low-magnitude), so class
  membership counts over any window are C-speed ``bytes.translate`` +
  ``bytes.count`` calls instead of per-byte Python loops.
- **Buffer-generic dispatch** — every entry point accepts any
  C-contiguous bytes-like object (``bytes``, ``bytearray``,
  ``memoryview``, ``mmap.mmap``) without copying it: ``bytes`` and
  ``bytearray`` keep their C-level ``count``/``translate`` fast paths,
  everything else routes through zero-copy ``np.frombuffer`` views
  (see :func:`as_uint8`) and vectorized equivalents.  An mmap-backed
  spool object therefore scans at the same speed as a slurped copy,
  minus the copy.
- **Windowed counts over ``memoryview`` slices** — per-window byte
  histograms come from ``np.bincount`` over zero-copy ``memoryview``
  slices; the batch classifier histograms thousands of windows in one
  vectorized pass.
- **A precomputed log2 table** — entropy is derived from counts as
  ``log2(n) - sum(c*log2(c))/n`` using a lazily grown ``c*log2(c)``
  table, never from per-byte probability loops.
- **Zero/constant fast paths** — all-zero and single-byte windows are
  detected with ``data.count(value, start, end)`` before any histogram
  is built, so the (dominant) scrubbed and marker regions cost two C
  calls per window.

:class:`ScanCore` owns the reusable scratch state (the log2 table,
the batch offset vector); the module-level core shared by
:mod:`repro.attack.carving` warms those tables once per process and
serves every dump of every campaign wave, across all board-worker
threads.  The straightforward implementations these fast paths replaced
live on in :mod:`repro.analysis.reference` and the equivalence between
the two is asserted by ``tests/test_analysis_scan.py`` and enforced at
benchmark time by ``tools/bench_runner.py``.
"""

from __future__ import annotations

import math

import numpy as np

CLASS_PRINTABLE = 0x01
"""Class bit: printable ASCII (0x20-0x7E) or NUL (string terminators
ride along with C strings in memory)."""

CLASS_LOW_MAGNITUDE = 0x02
"""Class bit: byte < 64 or byte >= 192 — a signed int8 value near
zero, the footprint of quantized weights."""

CLASS_TABLE = bytes(
    (CLASS_PRINTABLE if (byte == 0 or 0x20 <= byte <= 0x7E) else 0)
    | (CLASS_LOW_MAGNITUDE if (byte < 64 or byte >= 192) else 0)
    for byte in range(256)
)
"""The 256-entry byte→class translate table.  ``data.translate(
CLASS_TABLE)`` turns a dump into class bytes whose windowed
``count(class, start, end)`` calls replace per-byte Python loops."""

PRINTABLE_BYTES = bytes(
    byte for byte in range(256) if CLASS_TABLE[byte] & CLASS_PRINTABLE
)
"""Every printable byte value, as a ``translate``/``count`` operand."""

LOW_MAGNITUDE_BYTES = bytes(
    byte for byte in range(256) if CLASS_TABLE[byte] & CLASS_LOW_MAGNITUDE
)
"""Every low-magnitude byte value (see :data:`CLASS_LOW_MAGNITUDE`)."""

CLASS_NP = np.frombuffer(CLASS_TABLE, dtype=np.uint8)
"""The translate table as a numpy gather table: ``CLASS_NP[arr]`` is
the vectorized equivalent of ``data.translate(CLASS_TABLE)`` for
buffers (mmap, memoryview) that have no ``translate`` method."""

_LOW_MAGNITUDE_VALUES = np.flatnonzero(CLASS_NP & CLASS_LOW_MAGNITUDE)

_PRINTABLE_VALUES = np.flatnonzero(CLASS_NP & CLASS_PRINTABLE)

# Window-kind codes produced by the classifiers.  repro.attack.carving
# maps them onto its public RegionKind enum; the numeric order encodes
# the classification priority (first match wins).
KIND_ZERO = 0
KIND_CONSTANT = 1
KIND_TEXT = 2
KIND_RANDOM = 3
KIND_QUANTIZED = 4
KIND_MIXED = 5


def as_uint8(data, start: int = 0, end: int | None = None) -> np.ndarray:
    """Zero-copy ``uint8`` array view of ``data[start:end]``.

    Works for any C-contiguous bytes-like buffer — ``bytes``,
    ``bytearray``, ``memoryview``, ``mmap.mmap`` — and never copies:
    the array aliases the caller's buffer (and keeps it alive via the
    buffer protocol, so an mmap cannot be closed while the array is
    referenced).
    """
    view = memoryview(data)
    if start or end is not None:
        view = view[start : view.nbytes if end is None else end]
    return np.frombuffer(view, dtype=np.uint8)


def nonzero_count(data) -> int:
    """Bytes of *data* that are not 0x00, without copying *data*.

    ``bytes``/``bytearray`` use the single C-level ``count`` call;
    other buffers (mmap, memoryview) have no ``count`` and go through
    a zero-copy numpy view instead.
    """
    if isinstance(data, (bytes, bytearray)):
        return len(data) - data.count(0)
    return int(np.count_nonzero(as_uint8(data)))


def count_value(data, value: int, start: int = 0, end: int | None = None) -> int:
    """Occurrences of byte *value* in ``data[start:end]``, copy-free."""
    if end is None:
        end = len(data)
    if isinstance(data, (bytes, bytearray)):
        return data.count(value, start, end)
    return int(np.count_nonzero(as_uint8(data, start, end) == value))


def count_positive(values) -> int:
    """How many of *values* are strictly positive."""
    return sum(1 for value in values if value > 0)


def _entropy_from_counts(counts: np.ndarray, n: int) -> float:
    """``log2(n) - sum(c*log2(c))/n`` over the nonzero histogram bins."""
    nonzero = counts[counts > 0].astype(np.float64)
    return math.log2(n) - float((nonzero * np.log2(nonzero)).sum()) / n


class ScanCore:
    """Reusable single-pass scanning engine.

    Holds the scratch state the fast paths share — the ``c*log2(c)``
    table, the vectorized batch offsets, nothing per-dump — so one
    core instance can serve every dump of a whole campaign.  The
    scratch only ever grows and lookups return local references, so
    the default shared core in :mod:`repro.attack.carving` is safe
    across the campaign engine's board-worker threads.
    """

    BATCH_WINDOWS = 2048
    """Windows histogrammed per vectorized batch; bounds temp arrays
    to a few MiB regardless of dump size."""

    def __init__(self) -> None:
        self._clog2: np.ndarray | None = None
        self._offsets: np.ndarray | None = None

    # -- shared scratch tables ----------------------------------------------

    def _clog2_table(self, n: int) -> np.ndarray:
        """The ``c * log2(c)`` lookup table, grown to cover counts <= n.

        Only the batched window classifier gathers through this, so
        *n* is bounded by the cartographer's window size.  The table
        grows monotonically and the locally built array is returned,
        so concurrent callers sharing one core (the module-level
        default serves every thread) can never hand each other a
        too-small table.
        """
        table = self._clog2
        if table is None or len(table) <= n:
            size = max(n + 1, 4097)
            c = np.arange(size, dtype=np.float64)
            table = np.zeros(size, dtype=np.float64)
            np.log2(c, where=c > 0, out=table)
            table *= c
            current = self._clog2
            if current is None or len(current) < len(table):
                self._clog2 = table
        return table

    def _batch_offsets(self, m: int) -> np.ndarray:
        """Per-window histogram offsets (window i counts into bins
        ``[256*i, 256*i+256)``) for the batched ``bincount`` trick."""
        if self._offsets is None or len(self._offsets) < m:
            self._offsets = np.arange(
                max(m, self.BATCH_WINDOWS), dtype=np.int32
            ) * 256
        return self._offsets[:m, None]

    # -- windowed statistics ------------------------------------------------

    @staticmethod
    def byte_counts(data, start: int = 0, end: int | None = None) -> np.ndarray:
        """256-bin byte histogram of ``data[start:end]`` (zero-copy slice)."""
        return np.bincount(as_uint8(data, start, end), minlength=256)

    def entropy(self, data, start: int = 0, end: int | None = None) -> float:
        """Bits of Shannon entropy per byte of ``data[start:end]``.

        Computed from counts as ``log2(n) - sum(c*log2(c))/n`` — the
        algebraic rewrite of ``-sum(p*log2(p))`` that never touches
        per-byte probabilities.  A histogram has at most 256 nonzero
        bins, so the ``c*log2(c)`` terms are computed directly on
        them; memory stays O(256) for any input size.
        """
        counts = self.byte_counts(data, start, end)
        n = int(counts.sum())
        if n == 0:
            return 0.0
        return _entropy_from_counts(counts, n)

    @staticmethod
    def printable_count(data, start: int = 0, end: int | None = None) -> int:
        """Printable-class bytes in ``data[start:end]``.

        ``bytes``/``bytearray`` use the C-level translate-delete trick
        on the (window-sized) slice; other buffers sum the printable
        bins of a zero-copy histogram instead of materializing a copy.
        """
        if end is None:
            end = len(data)
        if isinstance(data, (bytes, bytearray)):
            segment = data if (start == 0 and end == len(data)) else data[start:end]
            return len(segment) - len(segment.translate(None, PRINTABLE_BYTES))
        counts = ScanCore.byte_counts(data, start, end)
        return int(counts[_PRINTABLE_VALUES].sum())

    @staticmethod
    def low_magnitude_count(
        data, start: int = 0, end: int | None = None
    ) -> int:
        """Low-magnitude-class bytes in ``data[start:end]`` (copy-free)."""
        if end is None:
            end = len(data)
        if isinstance(data, (bytes, bytearray)):
            segment = data if (start == 0 and end == len(data)) else data[start:end]
            return len(segment) - len(segment.translate(None, LOW_MAGNITUDE_BYTES))
        counts = ScanCore.byte_counts(data, start, end)
        return int(counts[_LOW_MAGNITUDE_VALUES].sum())

    @staticmethod
    def nonzero_bytes(data) -> int:
        """Bytes of *data* that are not the 0x00 scrub pattern."""
        return nonzero_count(data)

    # -- window classification ----------------------------------------------

    def classify_span(
        self,
        data,
        start: int,
        end: int,
        text_threshold: float,
        random_entropy: float,
        quantized_max_alphabet: int,
    ) -> int:
        """Classify one window ``data[start:end]``; returns a KIND code.

        The decision order matches the reference implementation
        exactly: zero → constant → text → random → quantized → mixed.
        *data* may be any bytes-like buffer; nothing is copied.
        """
        n = end - start
        if n <= 0 or count_value(data, 0, start, end) == n:
            return KIND_ZERO
        if count_value(data, data[start], start, end) == n:
            return KIND_CONSTANT
        if self.printable_count(data, start, end) / n >= text_threshold:
            return KIND_TEXT
        counts = self.byte_counts(data, start, end)
        if _entropy_from_counts(counts, n) >= min(
            random_entropy, math.log2(n) - 0.7
        ):
            return KIND_RANDOM
        if int((counts > 0).sum()) <= quantized_max_alphabet:
            low_magnitude = int(counts[_LOW_MAGNITUDE_VALUES].sum())
            if low_magnitude / n > 0.9:
                return KIND_QUANTIZED
        return KIND_MIXED

    def classify_windows(
        self,
        data,
        window: int,
        text_threshold: float,
        random_entropy: float,
        quantized_max_alphabet: int,
    ) -> list[int]:
        """KIND codes for every *window*-sized slice of *data*.

        Full windows are classified in vectorized batches: one
        ``bincount`` builds the histograms of :data:`BATCH_WINDOWS`
        windows at a time, and every statistic (zero, constant,
        printable fraction, entropy, alphabet size, low-magnitude
        fraction) falls out of the histogram matrix.  The trailing
        partial window (if any) goes through :meth:`classify_span`,
        which applies the identical decision order.
        """
        n = len(data)
        if n == 0:
            return []
        codes: list[int] = []
        full = (n // window) * window
        if full:
            arr = as_uint8(data, 0, full).reshape(-1, window)
            nwin = arr.shape[0]
            # Class-bit counts for every window at once: one C-level
            # translate of the dump (bytes/bytearray), or the numpy
            # gather equivalent for buffers without a translate method.
            if isinstance(data, (bytes, bytearray)):
                classes = np.frombuffer(
                    memoryview(data.translate(CLASS_TABLE))[:full],
                    dtype=np.uint8,
                ).reshape(-1, window)
            else:
                classes = CLASS_NP[arr]
            printable = np.add.reduce(classes & 1, axis=1, dtype=np.intp)
            low = np.add.reduce(classes >> 1, axis=1, dtype=np.intp)
            text = (printable / window) >= text_threshold
            low_fraction = (low / window) > 0.9

            threshold = min(random_entropy, math.log2(window) - 0.7)
            log2_window = math.log2(window)
            table = self._clog2_table(window)
            # Zero/constant fast path, vectorized: a uniform window
            # never needs a histogram.  Alphabet size and entropy are
            # then computed only for windows the earlier checks
            # (uniform, text) did not already settle.
            zero = np.empty(nwin, dtype=bool)
            constant = np.empty(nwin, dtype=bool)
            distinct = np.zeros(nwin, dtype=np.intp)
            entropy = np.zeros(nwin, dtype=np.float64)
            for batch_start in range(0, nwin, self.BATCH_WINDOWS):
                block = arr[batch_start : batch_start + self.BATCH_WINDOWS]
                stop = batch_start + block.shape[0]
                uniform = (block == block[:, :1]).all(axis=1)
                first_is_zero = block[:, 0] == 0
                zero[batch_start:stop] = uniform & first_is_zero
                constant[batch_start:stop] = uniform & ~first_is_zero
                need = ~(uniform | text[batch_start:stop])
                if not need.any():
                    continue
                sub = block[need]
                m = sub.shape[0]
                counts = np.bincount(
                    (sub + self._batch_offsets(m)).ravel(),
                    minlength=m * 256,
                ).reshape(m, 256)
                distinct[batch_start:stop][need] = (counts > 0).sum(axis=1)
                entropy[batch_start:stop][need] = (
                    log2_window - table[counts].sum(axis=1) / window
                )
            random_kind = entropy >= threshold
            quantized = (distinct <= quantized_max_alphabet) & low_fraction
            codes.extend(
                np.select(
                    [zero, constant, text, random_kind, quantized],
                    [
                        KIND_ZERO, KIND_CONSTANT, KIND_TEXT, KIND_RANDOM,
                        KIND_QUANTIZED,
                    ],
                    default=KIND_MIXED,
                ).tolist()
            )
        if full < n:
            codes.append(
                self.classify_span(
                    data, full, n,
                    text_threshold, random_entropy, quantized_max_alphabet,
                )
            )
        return codes
