"""Pure-Python Aho–Corasick automaton for multi-pattern presence scans.

Step 4a scores every model by which of its signature tokens appear in
the dump.  The straightforward way — one ``token in dump`` scan per
token — re-reads the whole dump once *per token per model*, which is
exactly the O(models × tokens) wall the fleet campaign hit once
extraction got fast.  :class:`AhoCorasick` compiles the union of all
tokens into one automaton (a byte trie with failure links and merged
output sets) so a **single pass** over the dump reports every token
present, no matter how many models share the database.

The production scan, :meth:`AhoCorasick.find_present`, adds a
256-entry translate prefilter on top of the automaton: any match must
start with the first byte of some pattern, so the dump is translated
once into a candidate-flag string and the trie walk is anchored only
at flagged offsets (``flags.find`` skips the zero, quantized-weight
and marker regions that dominate real dumps at C speed).  The
textbook goto/fail streaming scan is kept as
:meth:`find_present_streaming` — it is the in-automaton reference the
equivalence tests hold the anchored scan to.

Presence semantics mirror the replaced ``in`` scans exactly,
including the degenerate case: an empty pattern is reported present
in any haystack, as ``b"" in data`` is always ``True``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable


class AhoCorasick:
    """A multi-pattern matcher compiled once and reused for every scan."""

    def __init__(self, patterns: Iterable[bytes]) -> None:
        unique = list(dict.fromkeys(bytes(pattern) for pattern in patterns))
        self._patterns = tuple(unique)
        self._always_present = frozenset(p for p in unique if not p)
        real = [pattern for pattern in unique if pattern]

        # Trie construction: goto[node] maps byte -> next node.
        goto: list[dict[int, int]] = [{}]
        out_sets: list[set[bytes]] = [set()]
        for pattern in real:
            node = 0
            for byte in pattern:
                nxt = goto[node].get(byte)
                if nxt is None:
                    goto.append({})
                    out_sets.append(set())
                    nxt = len(goto) - 1
                    goto[node][byte] = nxt
                node = nxt
            out_sets[node].add(pattern)

        # Failure links (BFS), merging output sets along the links so
        # a node also reports every pattern that is a proper suffix of
        # its path — both scans below then surface suffix matches.
        fail = [0] * len(goto)
        queue = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            for byte, child in goto[node].items():
                queue.append(child)
                link = fail[node]
                while link and byte not in goto[link]:
                    link = fail[link]
                fail[child] = goto[link].get(byte, 0)
                out_sets[child] |= out_sets[fail[child]]

        self._goto = goto
        self._fail = fail
        self._out: list[tuple[bytes, ...]] = [tuple(s) for s in out_sets]
        first_bytes = {pattern[0] for pattern in real}
        self._prefilter = bytes(
            1 if byte in first_bytes else 0 for byte in range(256)
        )

    @property
    def patterns(self) -> tuple[bytes, ...]:
        """The compiled patterns, deduplicated, in insertion order."""
        return self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def find_present(self, data) -> set[bytes]:
        """The set of patterns occurring anywhere in *data* — one pass.

        Translates *data* through the first-byte prefilter, then walks
        the trie only from candidate anchors; stops early once every
        pattern has been seen.
        """
        if not isinstance(data, bytes):
            data = bytes(data)
        found = set(self._always_present)
        target = len(self._patterns)
        if len(found) == target or not data:
            return found
        flags = data.translate(self._prefilter)
        goto = self._goto
        out = self._out
        root = goto[0]
        find = flags.find
        n = len(data)
        pos = find(1)
        while pos != -1:
            node = root.get(data[pos])
            i = pos + 1
            while node is not None:
                if out[node]:
                    found.update(out[node])
                if i >= n:
                    break
                node = goto[node].get(data[i])
                i += 1
            if len(found) == target:
                break
            pos = find(1, pos + 1)
        return found

    def find_present_streaming(self, data) -> set[bytes]:
        """Textbook goto/fail scan over every byte of *data*.

        Kept as the in-automaton reference implementation: slower than
        :meth:`find_present` (no prefilter, no anchor skipping) but a
        direct transcription of the classic algorithm, which the
        equivalence tests compare the anchored scan against.
        """
        if not isinstance(data, bytes):
            data = bytes(data)
        found = set(self._always_present)
        goto = self._goto
        fail = self._fail
        out = self._out
        node = 0
        for byte in data:
            while node and byte not in goto[node]:
                node = fail[node]
            node = goto[node].get(byte, 0)
            if out[node]:
                found.update(out[node])
        return found
