"""Pure-Python Aho–Corasick automaton for multi-pattern presence scans.

Step 4a scores every model by which of its signature tokens appear in
the dump.  The straightforward way — one ``token in dump`` scan per
token — re-reads the whole dump once *per token per model*, which is
exactly the O(models × tokens) wall the fleet campaign hit once
extraction got fast.  :class:`AhoCorasick` compiles the union of all
tokens into one automaton (a byte trie with failure links and merged
output sets) so a **single pass** over the dump reports every token
present, no matter how many models share the database.

The production scan, :meth:`AhoCorasick.find_present`, adds a
vectorized two-byte prefilter on top of the automaton: a match of any
multi-byte pattern must start with a (first byte, second byte) pair
drawn from the compiled first/second-byte sets.  Candidate anchors
are computed in cache-sized batches over a zero-copy numpy view of
the dump — SIMD equality passes for the small first-byte alphabets
real signature databases have, then a second-byte refinement that
gathers only at the sparse candidate positions — and the Python trie
walk runs only from those anchors.  Single-byte patterns are settled
by one histogram pass.  This replaces the earlier
``bytes.translate``-based per-anchor ``flags.find`` loop (the
translate itself was the bottleneck: a byte-at-a-time C table walk),
accepts any bytes-like buffer (bytes, bytearray, memoryview, mmap)
without copying it, and skips the zero, quantized-weight and marker
regions that dominate real dumps at numpy speed.  The textbook
goto/fail streaming scan is kept as :meth:`find_present_streaming` —
it is the in-automaton reference the equivalence tests hold the
anchored scan to.

Presence semantics mirror the replaced ``in`` scans exactly,
including the degenerate case: an empty pattern is reported present
in any haystack, as ``b"" in data`` is always ``True``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.analysis.scan import as_uint8


class AhoCorasick:
    """A multi-pattern matcher compiled once and reused for every scan."""

    _PREFILTER_CHUNK = 1 << 18
    """Bytes prefiltered per batch: large enough to amortize the numpy
    call overhead, small enough that the boolean scratch stays
    cache-resident and an early exit skips the rest of the dump."""

    _EQ_OR_MAX_VALUES = 32
    """First-byte alphabet size up to which membership runs as SIMD
    equality passes; above it, a 256-entry table gather is used."""

    def __init__(self, patterns: Iterable[bytes]) -> None:
        unique = list(dict.fromkeys(bytes(pattern) for pattern in patterns))
        self._patterns = tuple(unique)
        self._always_present = frozenset(p for p in unique if not p)
        real = [pattern for pattern in unique if pattern]

        # Trie construction: goto[node] maps byte -> next node.
        goto: list[dict[int, int]] = [{}]
        out_sets: list[set[bytes]] = [set()]
        for pattern in real:
            node = 0
            for byte in pattern:
                nxt = goto[node].get(byte)
                if nxt is None:
                    goto.append({})
                    out_sets.append(set())
                    nxt = len(goto) - 1
                    goto[node][byte] = nxt
                node = nxt
            out_sets[node].add(pattern)

        # Failure links (BFS), merging output sets along the links so
        # a node also reports every pattern that is a proper suffix of
        # its path — both scans below then surface suffix matches.
        fail = [0] * len(goto)
        queue = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            for byte, child in goto[node].items():
                queue.append(child)
                link = fail[node]
                while link and byte not in goto[link]:
                    link = fail[link]
                fail[child] = goto[link].get(byte, 0)
                out_sets[child] |= out_sets[fail[child]]

        self._goto = goto
        self._fail = fail
        self._out: list[tuple[bytes, ...]] = [tuple(s) for s in out_sets]
        # Anchor prefilter state: a multi-byte match starting at offset
        # i requires data[i] in the first-byte set AND data[i+1] in the
        # second-byte set, so two mask gathers over the dump yield every
        # candidate anchor in one vectorized pass.  One-byte patterns
        # carry no second byte and are resolved by a histogram instead.
        multi = [pattern for pattern in real if len(pattern) >= 2]
        first_table = np.zeros(256, dtype=np.uint8)
        second_table = np.zeros(256, dtype=np.uint8)
        for pattern in multi:
            first_table[pattern[0]] = 1
            second_table[pattern[1]] = 1
        self._first_values = np.flatnonzero(first_table).astype(np.uint8)
        self._first_table = first_table
        self._second_table = second_table
        self._has_multi = bool(multi)
        self._single_values = sorted({p[0] for p in real if len(p) == 1})

    @property
    def patterns(self) -> tuple[bytes, ...]:
        """The compiled patterns, deduplicated, in insertion order."""
        return self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def find_present(self, data) -> set[bytes]:
        """The set of patterns occurring anywhere in *data* — one pass.

        Computes every candidate anchor in one vectorized two-byte
        prefilter pass over a zero-copy view of *data* (any bytes-like
        buffer, never copied), then walks the trie only from those
        anchors; stops early once every pattern has been seen.
        """
        found = set(self._always_present)
        target = len(self._patterns)
        buf = data if isinstance(data, (bytes, bytearray)) else memoryview(data)
        n = len(buf)
        if len(found) == target or n == 0:
            return found
        arr = as_uint8(buf)
        if self._single_values:
            # One histogram pass settles every one-byte pattern.
            hist = np.bincount(arr, minlength=256)
            for value in self._single_values:
                if hist[value]:
                    found.add(bytes([value]))
            if len(found) == target:
                return found
        if not self._has_multi or n < 2:
            return found
        goto = self._goto
        out = self._out
        root = goto[0]
        firsts = self._first_values
        second_table = self._second_table
        few_firsts = firsts.size <= self._EQ_OR_MAX_VALUES
        chunk = self._PREFILTER_CHUNK
        scratch = np.empty(min(chunk, n - 1), dtype=bool)
        extra = np.empty_like(scratch)
        for start in range(0, n - 1, chunk):
            stop = min(start + chunk, n - 1)
            block = arr[start:stop]
            if few_firsts:
                # Membership by SIMD equality passes — for the small
                # first-byte alphabets real signature databases have,
                # this is an order of magnitude faster than any
                # 256-entry table gather.
                flags = scratch[: block.size]
                np.equal(block, firsts[0], out=flags)
                for value in firsts[1:]:
                    np.equal(block, value, out=extra[: block.size])
                    np.logical_or(flags, extra[: block.size], out=flags)
            else:
                flags = self._first_table[block].view(bool)
            anchors = np.flatnonzero(flags)
            if not anchors.size:
                continue
            anchors += start
            # Second-byte refinement gathers only at the (sparse)
            # candidate positions, not over the whole dump.
            anchors = anchors[second_table[arr[anchors + 1]].view(bool)]
            for pos in anchors.tolist():
                node = root.get(buf[pos])
                i = pos + 1
                while node is not None:
                    if out[node]:
                        found.update(out[node])
                    if i >= n:
                        break
                    node = goto[node].get(buf[i])
                    i += 1
                if len(found) == target:
                    return found
        return found

    def find_present_streaming(self, data) -> set[bytes]:
        """Textbook goto/fail scan over every byte of *data*.

        Kept as the in-automaton reference implementation: slower than
        :meth:`find_present` (no prefilter, no anchor skipping) but a
        direct transcription of the classic algorithm, which the
        equivalence tests compare the anchored scan against.
        """
        if not isinstance(data, bytes):
            data = bytes(data)
        found = set(self._always_present)
        goto = self._goto
        fail = self._fail
        out = self._out
        node = 0
        for byte in data:
            while node and byte not in goto[node]:
                node = fail[node]
            node = goto[node].get(byte, 0)
            if out[node]:
                found.update(out[node])
        return found
