"""Straightforward reference implementations of the scan-core fast paths.

These are the per-byte-loop versions the single-pass engine in
:mod:`repro.analysis.scan` replaced — kept verbatim so the fast paths
can always be held to them:

- ``tests/test_analysis_scan.py`` asserts byte-identical region maps
  and score-identical signature matches over randomized windows;
- ``tools/bench_runner.py`` re-verifies the same equivalences on the
  benchmark dump (exiting nonzero on any divergence) and times fast
  vs. reference to record the speedup trajectory in
  ``BENCH_analysis.json``.

Nothing here is wired into a production path; importing this module
costs nothing at attack time.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.attack.carving import Region, RegionKind


def reference_shannon_entropy(data: bytes) -> float:
    """Per-byte-probability Shannon entropy (0.0 for empty input)."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def reference_printable_fraction(data: bytes) -> float:
    """Per-byte printable-ASCII fraction (1.0 for empty input)."""
    if not data:
        return 1.0
    printable = sum(1 for byte in data if 0x20 <= byte <= 0x7E or byte == 0x00)
    return printable / len(data)


def reference_classify_window(
    data: bytes,
    *,
    text_threshold: float = 0.85,
    random_entropy: float = 7.0,
    quantized_max_alphabet: int = 48,
) -> RegionKind:
    """Classify one window with the original per-byte logic."""
    if not data or data == b"\x00" * len(data):
        return RegionKind.ZERO
    distinct = set(data)
    if len(distinct) == 1:
        return RegionKind.CONSTANT
    if reference_printable_fraction(data) >= text_threshold:
        return RegionKind.TEXT
    entropy = reference_shannon_entropy(data)
    # A window of n bytes cannot exceed log2(n) bits of measured
    # entropy, so the uniform-randomness threshold scales down for
    # short windows.
    effective_threshold = min(random_entropy, math.log2(len(data)) - 0.7)
    if entropy >= effective_threshold:
        return RegionKind.RANDOM
    if len(distinct) <= quantized_max_alphabet:
        low_magnitude = sum(1 for byte in data if byte < 64 or byte >= 192)
        if low_magnitude / len(data) > 0.9:
            return RegionKind.QUANTIZED
    return RegionKind.MIXED


def reference_map_dump(
    data: bytes,
    window: int = 256,
    *,
    text_threshold: float = 0.85,
    random_entropy: float = 7.0,
    quantized_max_alphabet: int = 48,
) -> list[Region]:
    """Window-classify and merge with the original slicing loop."""
    regions: list[Region] = []
    for start in range(0, len(data), window):
        chunk = data[start : start + window]
        kind = reference_classify_window(
            chunk,
            text_threshold=text_threshold,
            random_entropy=random_entropy,
            quantized_max_alphabet=quantized_max_alphabet,
        )
        end = min(start + window, len(data))
        if regions and regions[-1].kind is kind and regions[-1].end == start:
            regions[-1] = Region(regions[-1].start, end, kind)
        else:
            regions.append(Region(start, end, kind))
    return regions


def reference_region_at(regions: list[Region], offset: int) -> Region:
    """Linear-scan region lookup; raises ``ValueError`` outside."""
    for region in regions:
        if region.contains(offset):
            return region
    raise ValueError(f"offset {offset:#x} outside the mapped dump")


def reference_match(database, dump_data: bytes) -> dict:
    """O(models × tokens) signature matching via repeated ``in`` scans.

    *database* is a :class:`repro.attack.identify.SignatureDatabase`;
    only its public accessors are used, so the reference stays honest
    about what the fast path replaced.
    """
    results = {}
    for name in database.model_names():
        signature = database.signature(name)
        if not signature.tokens:
            results[name] = (0.0, [])
            continue
        matched = sorted(
            token
            for token in signature.tokens
            if token.encode("utf-8", errors="ignore") in dump_data
        )
        results[name] = (len(matched) / len(signature.tokens), matched)
    return results


def reference_nonzero_bytes(data: bytes) -> int:
    """Per-byte nonzero count."""
    return sum(1 for byte in data if byte)
