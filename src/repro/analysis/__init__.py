"""The shared dump-analysis engine — single-pass scanning for step 4.

Every dump-analysis hot path routes through this package:

- :mod:`repro.analysis.scan` — :class:`ScanCore`, the table-driven
  windowed-statistics engine behind
  :class:`repro.attack.carving.DumpCartographer`,
  ``repro.evaluation.metrics`` residue counting, and the campaign
  workers' per-victim analysis;
- :mod:`repro.analysis.ahocorasick` — :class:`AhoCorasick`, the
  multi-pattern automaton that makes
  :meth:`repro.attack.identify.SignatureDatabase.match` a single pass
  over the dump regardless of how many models are profiled;
- :mod:`repro.analysis.reference` — the straightforward per-byte
  implementations the fast paths replaced, kept for equivalence
  testing and for ``tools/bench_runner.py``'s divergence gate.

See ``docs/performance.md`` for the hot-path inventory, the design of
the scan core, and how to record/read ``BENCH_analysis.json``.
"""

from repro.analysis.ahocorasick import AhoCorasick
from repro.analysis.scan import (
    CLASS_LOW_MAGNITUDE,
    CLASS_PRINTABLE,
    CLASS_TABLE,
    LOW_MAGNITUDE_BYTES,
    PRINTABLE_BYTES,
    ScanCore,
    count_positive,
    nonzero_count,
)

__all__ = [
    "AhoCorasick",
    "CLASS_LOW_MAGNITUDE",
    "CLASS_PRINTABLE",
    "CLASS_TABLE",
    "LOW_MAGNITUDE_BYTES",
    "PRINTABLE_BYTES",
    "ScanCore",
    "count_positive",
    "nonzero_count",
]
