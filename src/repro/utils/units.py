"""Size formatting and parsing (KiB/MiB/GiB) for configs and reports."""

from __future__ import annotations

import re

_UNITS = {
    "B": 1,
    "KIB": 1024,
    "KB": 1024,
    "K": 1024,
    "MIB": 1024**2,
    "MB": 1024**2,
    "M": 1024**2,
    "GIB": 1024**3,
    "GB": 1024**3,
    "G": 1024**3,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse ``"2GiB"``/``"512K"``/``4096`` into a byte count.

    Binary units throughout (KB == KiB == 1024), matching how board
    datasheets quote DRAM capacities.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value, unit = match.groups()
    unit = unit.upper() or "B"
    if unit not in _UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    total = float(value) * _UNITS[unit]
    if total != int(total):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(total)


def format_size(num_bytes: int) -> str:
    """Render a byte count with the largest exact-or-rounded binary unit.

    >>> format_size(2 * 1024**3)
    '2.0GiB'
    >>> format_size(4096)
    '4.0KiB'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    for unit, factor in (("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f}{unit}"
    return f"{num_bytes}B"
