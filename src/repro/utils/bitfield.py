"""Bit-manipulation helpers.

The pagemap encoder/decoder and the DRAM word accessors all need the
same handful of operations; keeping them here (with explicit argument
validation) keeps the call sites short and obviously correct.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an integer with the low *width* bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(position: int) -> int:
    """Return an integer with only *position* set.

    >>> bit(63) == 1 << 63
    True
    """
    if position < 0:
        raise ValueError(f"position must be non-negative, got {position}")
    return 1 << position


def extract_bits(value: int, low: int, width: int) -> int:
    """Extract *width* bits of *value* starting at bit *low*.

    >>> extract_bits(0b1101_0000, 4, 4)
    13
    """
    if low < 0 or width < 0:
        raise ValueError("low and width must be non-negative")
    return (value >> low) & mask(width)


def insert_bits(value: int, low: int, width: int, field: int) -> int:
    """Return *value* with bits ``[low, low+width)`` replaced by *field*.

    Raises ``ValueError`` if *field* does not fit in *width* bits.

    >>> hex(insert_bits(0x0, 8, 8, 0xAB))
    '0xab00'
    """
    if field < 0 or field > mask(width):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend the low *width* bits of *value* to a Python int.

    >>> sign_extend(0xFF, 8)
    -1
    >>> sign_extend(0x7F, 8)
    127
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def bytes_to_words(data: bytes, word_size: int = 4, byteorder: str = "little") -> list[int]:
    """Split *data* into *word_size*-byte integers.

    The trailing partial word, if any, is zero-padded — matching how the
    attack's devmem loop reads a heap whose length is not word-aligned.
    """
    if word_size <= 0:
        raise ValueError(f"word_size must be positive, got {word_size}")
    words = []
    for offset in range(0, len(data), word_size):
        chunk = data[offset : offset + word_size]
        if len(chunk) < word_size:
            chunk = chunk + b"\x00" * (word_size - len(chunk))
        words.append(int.from_bytes(chunk, byteorder))
    return words


def words_to_bytes(words: list[int], word_size: int = 4, byteorder: str = "little") -> bytes:
    """Inverse of :func:`bytes_to_words` (without trimming padding)."""
    if word_size <= 0:
        raise ValueError(f"word_size must be positive, got {word_size}")
    out = bytearray()
    for word in words:
        if word < 0 or word > mask(word_size * 8):
            raise ValueError(f"word {word:#x} does not fit in {word_size} bytes")
        out += word.to_bytes(word_size, byteorder)
    return bytes(out)
