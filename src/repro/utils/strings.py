"""Printable-string extraction, the ``strings(1)`` equivalent.

Step 4a of the attack inspects the scraped dump for "meaningful,
readable words".  The model-identification stage builds on this:
it extracts every printable run and scores them against the signature
database learned by offline profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

_PRINTABLE = frozenset(range(0x20, 0x7F))


@dataclass(frozen=True)
class StringHit:
    """A printable run found in a binary blob."""

    offset: int
    text: str


def extract_strings(data: bytes, minimum_length: int = 4) -> list[StringHit]:
    """Return every run of >= *minimum_length* printable ASCII bytes.

    Mirrors ``strings -n <minimum_length>``: tabs and newlines are not
    treated as printable (GNU strings includes tab; the attack only
    cares about path and identifier fragments, where this makes no
    difference).
    """
    if minimum_length < 1:
        raise ValueError(f"minimum_length must be >= 1, got {minimum_length}")
    hits = []
    run_start = None
    for index, byte in enumerate(data):
        if byte in _PRINTABLE:
            if run_start is None:
                run_start = index
        else:
            if run_start is not None and index - run_start >= minimum_length:
                hits.append(
                    StringHit(run_start, data[run_start:index].decode("ascii"))
                )
            run_start = None
    if run_start is not None and len(data) - run_start >= minimum_length:
        hits.append(StringHit(run_start, data[run_start:].decode("ascii")))
    return hits


def find_pattern_offsets(data: bytes, pattern: bytes, limit: int | None = None) -> list[int]:
    """All byte offsets of *pattern* in *data* (overlapping), oldest first.

    *limit* bounds the number of hits returned; ``None`` means all.
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    offsets = []
    start = 0
    while True:
        index = data.find(pattern, start)
        if index < 0:
            break
        offsets.append(index)
        if limit is not None and len(offsets) >= limit:
            break
        start = index + 1
    return offsets


def longest_common_token(strings: list[str], separator: str = "/") -> str:
    """The most frequent path token across *strings* (ties: longest).

    Used by the signature builder to pick a distinctive identifier out
    of the path strings a model leaves in memory, e.g. ``resnet50_pt``
    out of ``/usr/share/vitis_ai_library/models/resnet50_pt/...``.
    """
    counts: dict[str, int] = {}
    for text in strings:
        for token in text.split(separator):
            token = token.strip()
            if len(token) >= 4:
                counts[token] = counts.get(token, 0) + 1
    if not counts:
        return ""
    return max(counts, key=lambda token: (counts[token], len(token)))
