"""Reusable extraction buffers — allocation-free steady-state scraping.

A campaign scrapes one multi-megabyte heap image per victim, and every
wave used to allocate (and garbage-collect) those buffers afresh:
page chunks, the ``b"".join`` copy, the pickled queue copy.  The
zero-copy pipeline replaces all of that with a :class:`BufferPool` —
a size-keyed free list of ``bytearray`` buffers that the scraper
writes device bytes straight into (see ``Devmem.read_bytes_into``)
and the board worker returns once the dump has been analyzed and
spooled (``ScrapedDump.release``).  Victims of the same model have
identical heap sizes, so after the first wave the pool serves every
extraction without touching the allocator.

Ownership contract:

- :meth:`BufferPool.acquire` hands out a buffer with **undefined
  contents** (it may be a recycled dump); the caller must write every
  byte it will later read.
- A buffer handed back via :meth:`BufferPool.release` must no longer
  be read or written by the releasing party — it will be handed to
  the next acquirer verbatim.  ``ScrapedDump.release`` enforces this
  by swapping the dump's ``data`` for a sentinel that raises on use.

The pool is thread-safe (board workers of an in-process campaign share
one process) but deliberately unbounded in buffer *size* and bounded
in buffer *count* per size class, so a pathological mix of heap sizes
cannot hoard memory.
"""

from __future__ import annotations

import threading


class BufferPool:
    """A size-keyed free list of reusable ``bytearray`` buffers."""

    def __init__(self, max_buffers_per_size: int = 4) -> None:
        if max_buffers_per_size < 1:
            raise ValueError(
                f"max_buffers_per_size must be >= 1, got {max_buffers_per_size}"
            )
        self._lock = threading.Lock()
        self._free: dict[int, list[bytearray]] = {}
        self._max_per_size = max_buffers_per_size
        self.allocations = 0
        """Buffers created because no free one of the right size existed."""
        self.reuses = 0
        """Acquisitions served from the free list (the pool's win)."""

    def acquire(self, nbytes: int) -> bytearray:
        """A buffer of exactly *nbytes* bytes, contents undefined."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        with self._lock:
            stack = self._free.get(nbytes)
            if stack:
                self.reuses += 1
                return stack.pop()
            self.allocations += 1
        return bytearray(nbytes)

    def release(self, buffer: bytearray) -> None:
        """Hand *buffer* back for reuse; the caller must stop using it."""
        with self._lock:
            stack = self._free.setdefault(len(buffer), [])
            if len(stack) < self._max_per_size:
                stack.append(buffer)

    @property
    def free_buffers(self) -> int:
        """How many buffers currently sit on the free lists."""
        with self._lock:
            return sum(len(stack) for stack in self._free.values())
