"""Hexdump rendering in the two formats the paper uses.

Step 4a of the attack formats the scraped words "into rows of eight
nibbles each" and then runs ``hexdump`` on the file.  The figures show
an ``xxd``-style layout: sixteen bytes per row rendered as eight
two-byte groups *in memory order* followed by the ASCII column, e.g.
(paper Fig. 11, where ``6c73`` is the bytes of ``ls``)::

    6c73 2f72 6573 6e65 7435 305f 7074 2f72 ls/resnet50_pt/r

This module reproduces that layout bit-for-bit (so the attacker-side
``grep`` works on output identical to the paper's), plus the more
familiar ``hexdump -C`` canonical format for human inspection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_PAPER_ROW_BYTES = 16
_GROUP_RE = re.compile(r"^[0-9a-fA-F]{4}$")


def _printable(byte: int) -> str:
    """ASCII column rendering: printable chars verbatim, everything else '.'."""
    return chr(byte) if 0x20 <= byte <= 0x7E else "."


def hexdump_paper_rows(data: bytes) -> list[str]:
    """Render *data* in the paper's hexdump layout, one string per row.

    Each row covers sixteen bytes shown as eight groups of four hex
    digits.  Groups are two bytes in memory order (``xxd`` style),
    matching the figures: ``ls`` renders as ``6c73``.  A trailing
    partial row is zero-padded in the hex columns but the ASCII column
    only shows real bytes.
    """
    rows = []
    for start in range(0, len(data), _PAPER_ROW_BYTES):
        chunk = data[start : start + _PAPER_ROW_BYTES]
        padded = chunk + b"\x00" * (_PAPER_ROW_BYTES - len(chunk))
        groups = []
        for offset in range(0, _PAPER_ROW_BYTES, 2):
            word = (padded[offset] << 8) | padded[offset + 1]
            groups.append(f"{word:04x}")
        ascii_column = "".join(_printable(b) for b in chunk)
        rows.append(" ".join(groups) + " " + ascii_column)
    return rows


def parse_paper_row(row: str) -> bytes:
    """Recover the sixteen raw bytes from one paper-format hexdump row.

    Only the eight hex groups are used; the ASCII column is ignored
    (it is lossy).  Raises ``ValueError`` on a malformed row.
    """
    fields = row.split()
    if len(fields) < 8:
        raise ValueError(f"expected at least 8 hex groups, got {len(fields)}: {row!r}")
    out = bytearray()
    for group in fields[:8]:
        if not _GROUP_RE.match(group):
            raise ValueError(f"malformed hex group {group!r} in row {row!r}")
        word = int(group, 16)
        out.append(word >> 8)
        out.append(word & 0xFF)
    return bytes(out)


def hexdump_canonical(data: bytes, base_offset: int = 0) -> list[str]:
    """Render *data* like ``hexdump -C``: offset, 16 hex bytes, |ascii|."""
    rows = []
    for start in range(0, len(data), 16):
        chunk = data[start : start + 16]
        hex_halves = []
        for half in (chunk[:8], chunk[8:]):
            hex_halves.append(" ".join(f"{b:02x}" for b in half))
        hex_field = f"{hex_halves[0]:<23}  {hex_halves[1]:<23}"
        ascii_column = "".join(_printable(b) for b in chunk)
        rows.append(f"{base_offset + start:08x}  {hex_field} |{ascii_column}|")
    return rows


def format_devmem_words(words: list[int]) -> str:
    """Format 32-bit words one per line as eight nibbles (paper step 4a).

    This is the intermediate file the paper builds from the automated
    ``devmem`` reads before hexdumping it.
    """
    return "\n".join(f"{word & 0xFFFFFFFF:08x}" for word in words)


@dataclass(frozen=True)
class GrepHit:
    """One matching hexdump row, as returned by :meth:`HexDump.grep`."""

    row_number: int
    row_text: str


class HexDump:
    """A scraped memory dump with paper-style search operations.

    Wraps raw bytes and exposes the three queries the paper's analysis
    step performs: ``grep`` for an ASCII substring (Fig. 11), search for
    a repeated hex marker (Fig. 12), and "row number of first
    occurrence" used by the offline profiler (the paper's row 646768).
    """

    def __init__(self, data) -> None:
        # bytes, bytearray and mmap all support find + slicing, so they
        # are kept as-is (zero-copy); only buffers without ``find``
        # (memoryview) are copied.
        self._data = data if hasattr(data, "find") else bytes(data)
        self._rows: list[str] | None = None

    @property
    def data(self):
        """The underlying buffer (bytes, bytearray or mmap)."""
        return self._data

    def rows(self) -> list[str]:
        """All paper-format hexdump rows (computed lazily, cached)."""
        if self._rows is None:
            self._rows = hexdump_paper_rows(self._data)
        return self._rows

    def grep(self, needle: str) -> list[GrepHit]:
        """Return rows whose ASCII column contains *needle*.

        Matches the paper's ``grep "resnet50" 1391_hexdump.log`` usage:
        a hit means the string is visible in the dump at that row.  The
        search runs on the raw bytes first (fast path) and only renders
        the affected rows, so grepping a multi-megabyte dump is cheap.
        """
        encoded = needle.encode("ascii", errors="ignore")
        if not encoded:
            return []
        hits = []
        seen_rows = set()
        start = 0
        while True:
            index = self._data.find(encoded, start)
            if index < 0:
                break
            first_row = index // _PAPER_ROW_BYTES
            last_row = (index + len(encoded) - 1) // _PAPER_ROW_BYTES
            for row_number in range(first_row, last_row + 1):
                if row_number not in seen_rows:
                    seen_rows.add(row_number)
                    row_start = row_number * _PAPER_ROW_BYTES
                    row_text = hexdump_paper_rows(
                        self._data[row_start : row_start + _PAPER_ROW_BYTES]
                    )[0]
                    hits.append(GrepHit(row_number, row_text))
            start = index + 1
        hits.sort(key=lambda hit: hit.row_number)
        return hits

    def find_bytes(self, pattern: bytes, start: int = 0) -> int:
        """Byte offset of the first occurrence of *pattern*, or -1."""
        return self._data.find(pattern, start)

    def first_row_of(self, pattern: bytes) -> int:
        """Hexdump row number containing the first occurrence of *pattern*.

        This is the quantity the paper's offline profiling records
        ("specifically at row number 646768").  Returns -1 when the
        pattern is absent.
        """
        index = self.find_bytes(pattern)
        if index < 0:
            return -1
        return index // _PAPER_ROW_BYTES

    def marker_run_rows(self, marker_word: int, minimum_rows: int = 2) -> list[int]:
        """Row numbers where every 32-bit word equals *marker_word*.

        Used to locate the corrupted-image block of Fig. 12 (rows that
        are solid ``FFFF FFFF ...``).  Only runs of at least
        *minimum_rows* consecutive solid rows are reported, which
        filters out accidental single-row matches.
        """
        solid_word = (marker_word & 0xFFFFFFFF).to_bytes(4, "little") * 4
        solid_rows = []
        for row_number in range(len(self._data) // _PAPER_ROW_BYTES):
            start = row_number * _PAPER_ROW_BYTES
            if self._data[start : start + _PAPER_ROW_BYTES] == solid_word:
                solid_rows.append(row_number)
        if minimum_rows <= 1:
            return solid_rows
        kept: list[int] = []
        run: list[int] = []
        for row_number in solid_rows:
            if run and row_number == run[-1] + 1:
                run.append(row_number)
            else:
                if len(run) >= minimum_rows:
                    kept.extend(run)
                run = [row_number]
        if len(run) >= minimum_rows:
            kept.extend(run)
        return kept

    def __len__(self) -> int:
        return len(self._data)
