"""Retry, backoff, and circuit-breaking — the self-healing toolkit.

Distributed campaigns fail in boring, recoverable ways: a connection
resets, a coordinator restarts, a link stalls past its timeout.  This
module is the policy layer every transport-level recovery in the
fabric routes through, built on three deliberate choices:

- **Determinism.**  A :class:`RetryPolicy`'s backoff schedule — delays,
  jitter included — is a pure function of ``(policy, attempt)``.  Two
  workers with the same policy and seed produce byte-identical
  schedules, and a test can assert the exact schedule without running
  a single sleep.
- **Injectable time.**  Every component takes a ``() -> float`` clock
  and a ``(seconds) -> None`` sleep.  Production uses
  ``time.monotonic`` / ``time.sleep``; tests use :class:`ManualClock`,
  whose :meth:`ManualClock.sleep` *advances* the clock instead of
  waiting, so retry/deadline/breaker behaviour is drilled exactly and
  instantly.
- **Bounded budgets.**  Retries are capped twice — by attempt count
  and by an optional wall-clock deadline budget — so a worker facing a
  dead coordinator gives up *deliberately*
  (:class:`~repro.errors.RetryExhaustedError`) instead of spinning
  forever or dying on the first blip.

>>> policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
>>> policy.schedule()
(1.0, 2.0, 4.0)
>>> clock = ManualClock()
>>> attempts = []
>>> policy.call(
...     lambda: attempts.append(len(attempts)) or 1 / 0,
...     retry_on=(ZeroDivisionError,),
...     clock=clock, sleep=clock.sleep, op="drill",
... )
Traceback (most recent call last):
    ...
repro.errors.RetryExhaustedError: drill: retry budget exhausted after 4 attempt(s) over 7.000s
>>> (len(attempts), clock())
(4, 7.0)
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError, RetryExhaustedError

T = TypeVar("T")

_JITTER_STRIDE = 1_000_003
"""Prime mixing a policy's seed with the attempt number, so each
attempt's jitter draw is independent but fully determined."""


class ManualClock:
    """A hand-advanced monotonic clock for deterministic time drills.

    Anything in this package that takes a ``clock`` accepts one of
    these; tests *advance* it past deadlines instead of sleeping, so
    lease expiry, retry budgets, and breaker reset windows are exact
    and instant.  :meth:`sleep` advances the clock, which is what lets
    a whole retry schedule "run" in zero wall time.

    >>> clock = ManualClock()
    >>> clock()
    0.0
    >>> clock.advance(31.0)
    >>> clock.sleep(2.5)
    >>> clock()
    33.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward (never backward — the clock is monotonic)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot run backwards")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        """The injectable sleep: advance instead of waiting."""
        self.advance(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff with seeded jitter and budgets.

    The delay before retry attempt *n* (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)``, spread by up to
    ``±jitter`` (a fraction) using a :class:`random.Random` seeded from
    ``(seed, n)`` — so the full schedule is a pure function of the
    policy and two policies with different seeds desynchronize their
    retry storms.

    Two independent caps bound every retried operation:

    - *max_attempts* — total tries (the first non-retry attempt
      included);
    - *deadline* — an optional per-op wall-clock budget in seconds;
      a retry whose backoff would overshoot it is not attempted.

    ``max_attempts=1`` is a legitimate policy: try once, never retry.

    >>> RetryPolicy(max_attempts=5, base_delay=0.5, jitter=0.0).schedule()
    (0.5, 1.0, 2.0, 4.0)
    >>> a = RetryPolicy(seed=1).schedule()
    >>> a == RetryPolicy(seed=1).schedule() != RetryPolicy(seed=2).schedule()
    True
    """

    max_attempts: int = 5
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 15.0
    deadline: float | None = None
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1.0, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be a fraction in [0, 1], got {self.jitter}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive or None, got {self.deadline}"
            )

    def delay(self, attempt: int) -> float:
        """The backoff before retry *attempt* (1-based), jitter applied."""
        if attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {attempt}")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if not self.jitter or not raw:
            return raw
        rng = random.Random(self.seed * _JITTER_STRIDE + attempt)
        spread = raw * self.jitter
        return raw - spread + rng.random() * 2.0 * spread

    def schedule(self) -> tuple[float, ...]:
        """Every backoff delay the policy will ever use, in order.

        ``max_attempts - 1`` entries: there is no delay after the
        final attempt, only the exhaustion error.
        """
        return tuple(
            self.delay(attempt) for attempt in range(1, self.max_attempts)
        )

    def call(
        self,
        fn: Callable[[], T],
        *,
        retry_on: tuple[type[BaseException], ...],
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        op: str = "operation",
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Run *fn* under this policy; return its result.

        Exceptions in *retry_on* trigger backoff-and-retry; anything
        else propagates immediately.  When the attempt cap is hit, or
        the next backoff would overshoot the deadline budget, the
        *final* failure is wrapped in
        :class:`~repro.errors.RetryExhaustedError` (chained as
        ``__cause__``).  *on_retry* fires before each backoff sleep
        with ``(attempt, exception)`` — the observability hook the
        fabric worker uses to count reconnects.
        """
        start = clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                elapsed = clock() - start
                if attempt >= self.max_attempts:
                    raise RetryExhaustedError(op, attempt, elapsed) from exc
                pause = self.delay(attempt)
                if (
                    self.deadline is not None
                    and elapsed + pause > self.deadline
                ):
                    raise RetryExhaustedError(op, attempt, elapsed) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(pause)


class CircuitBreaker:
    """Classic three-state circuit breaker on an injectable clock.

    *closed* (normal) → *open* after ``failure_threshold`` consecutive
    failures (every :meth:`allow` raises
    :class:`~repro.errors.CircuitOpenError` until ``reset_timeout``
    passes) → *half-open* (exactly one probe call allowed through; its
    success closes the breaker, its failure re-opens and re-arms the
    window).

    Thread-safe; the fabric uses one per upstream so a coordinator
    that is *down* is probed at the reset cadence instead of hammered
    by every worker thread's own retry loop.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "circuit",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.name = name
        self._threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open`` (reset window passed)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self._reset_timeout
        ):
            self._state = self.HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> None:
        """Gate one attempt; raises when the circuit refuses it.

        In the half-open state exactly one caller wins the probe slot;
        concurrent callers are still refused until the probe reports.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return
            remaining = max(
                0.0,
                self._reset_timeout - (self._clock() - self._opened_at),
            )
            raise CircuitOpenError(self.name, remaining)

    def record_success(self) -> None:
        """The protected op worked; close the circuit and reset counts."""
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED
            self._probing = False

    def record_failure(self) -> None:
        """The protected op failed; trip the circuit at the threshold."""
        with self._lock:
            state = self._state_locked()
            self._failures += 1
            if state == self.HALF_OPEN or self._failures >= self._threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False

    def call(
        self,
        fn: Callable[[], T],
        *,
        failure_on: tuple[type[BaseException], ...] = (Exception,),
    ) -> T:
        """Run *fn* through the breaker, recording the outcome."""
        self.allow()
        try:
            result = fn()
        except failure_on:
            self.record_failure()
            raise
        self.record_success()
        return result
