"""Low-level helpers shared by every layer of the simulation."""

from repro.utils.bitfield import (
    bit,
    extract_bits,
    insert_bits,
    mask,
    sign_extend,
)
from repro.utils.hexdump import (
    HexDump,
    hexdump_canonical,
    hexdump_paper_rows,
    parse_paper_row,
)
from repro.utils.strings import extract_strings, find_pattern_offsets
from repro.utils.units import format_size, parse_size

__all__ = [
    "bit",
    "extract_bits",
    "insert_bits",
    "mask",
    "sign_extend",
    "HexDump",
    "hexdump_canonical",
    "hexdump_paper_rows",
    "parse_paper_row",
    "extract_strings",
    "find_pattern_offsets",
    "format_size",
    "parse_size",
]
