"""Tests for dump characterization (region carving)."""

import pytest

from repro.attack.addressing import AddressHarvester
from repro.attack.carving import (
    DumpCartographer,
    Region,
    RegionKind,
    printable_fraction,
    shannon_entropy,
)
from repro.attack.extraction import MemoryScraper
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image

INPUT_HW = 32


class TestEntropy:
    def test_empty(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_is_zero_entropy(self):
        assert shannon_entropy(b"\xaa" * 100) == 0.0

    def test_two_symbols_equal_split(self):
        assert shannon_entropy(b"\x00\xff" * 50) == pytest.approx(1.0)

    def test_uniform_bytes_near_eight_bits(self):
        assert shannon_entropy(bytes(range(256)) * 4) == pytest.approx(8.0)


class TestPrintableFraction:
    def test_all_text(self):
        assert printable_fraction(b"hello world") == 1.0

    def test_binary(self):
        assert printable_fraction(bytes([0x01, 0x02, 0x9F, 0xFF])) == 0.0

    def test_nul_counts_as_stringish(self):
        # NUL terminators ride along with C strings in memory.
        assert printable_fraction(b"path\x00") == 1.0


class TestClassifyWindow:
    def setup_method(self):
        self.cartographer = DumpCartographer(window=64)

    def test_zero(self):
        assert self.cartographer.classify_window(b"\x00" * 64) is RegionKind.ZERO

    def test_constant_marker(self):
        assert (
            self.cartographer.classify_window(b"\xff" * 64)
            is RegionKind.CONSTANT
        )

    def test_text(self):
        window = b"/usr/share/vitis_ai_library/models/resnet50_pt\x00" * 2
        assert self.cartographer.classify_window(window[:64]) is RegionKind.TEXT

    def test_random(self):
        import hashlib

        window = b"".join(
            hashlib.sha256(bytes([i])).digest() for i in range(4)
        )
        assert self.cartographer.classify_window(window) is RegionKind.RANDOM

    def test_quantized_weights(self):
        import numpy as np

        rng = np.random.default_rng(3)
        window = rng.integers(-8, 8, size=256, dtype=np.int8).tobytes()
        assert self.cartographer.classify_window(window) is RegionKind.QUANTIZED

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            DumpCartographer(window=8)


class TestMapDump:
    def test_merges_adjacent_windows(self):
        cartographer = DumpCartographer(window=64)
        data = b"\x00" * 256 + b"\xff" * 256
        regions = cartographer.map_dump(data)
        assert len(regions) == 2
        assert regions[0] == Region(0, 256, RegionKind.ZERO)
        assert regions[1] == Region(256, 512, RegionKind.CONSTANT)

    def test_kind_totals(self):
        cartographer = DumpCartographer(window=64)
        regions = cartographer.map_dump(b"\x00" * 128 + b"\xff" * 64)
        totals = cartographer.kind_totals(regions)
        assert totals[RegionKind.ZERO] == 128
        assert totals[RegionKind.CONSTANT] == 64

    def test_region_at(self):
        cartographer = DumpCartographer(window=64)
        regions = cartographer.map_dump(b"\x00" * 128)
        assert cartographer.region_at(regions, 100).kind is RegionKind.ZERO
        with pytest.raises(ValueError):
            cartographer.region_at(regions, 500)

    def test_render_table(self):
        cartographer = DumpCartographer(window=64)
        regions = cartographer.map_dump(b"\x00" * 64 + b"\xff" * 64)
        text = cartographer.render(regions)
        assert "zero" in text
        assert "constant" in text


class TestOnRealDump:
    """Characterize an actual victim dump against ground truth."""

    @pytest.fixture()
    def dump_and_offsets(self, shells):
        attacker_shell, victim_shell = shells
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7).corrupted(0.3)
        run = VictimApplication(victim_shell, input_hw=INPUT_HW).launch(
            "resnet50_pt", image=secret
        )
        harvester = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        # Ground-truth offsets must be read before the teardown.
        heap_start = run.process.address_space.heap().start
        offsets = {
            "weights": run.runner.weight_addresses[0] - heap_start,
            "image": run.runner.input_heap_offset,
        }
        run.terminate()
        dump = MemoryScraper(
            attacker_shell.devmem_tool, attacker_shell.user
        ).scrape(harvested)
        return dump, offsets

    def test_model_string_area_is_text(self, dump_and_offsets):
        dump, _ = dump_and_offsets
        cartographer = DumpCartographer()
        regions = cartographer.map_dump(dump.data)
        name_offset = dump.data.find(b"/usr/share/vitis_ai_library")
        region = cartographer.region_at(regions, name_offset)
        assert region.kind in (RegionKind.TEXT, RegionKind.MIXED)

    @staticmethod
    def _aligned_probe(offset: int, window: int = 256) -> int:
        """First window-aligned offset fully past *offset* (plus slack).

        Windows sit at absolute multiples of the window size, so a
        buffer that starts mid-window shares its first window with the
        preceding buffer; probing one window boundary later guarantees
        the probe window holds only the target buffer's bytes.
        """
        return ((offset // window) + 1) * window + window // 4

    def test_weight_buffer_is_quantized(self, dump_and_offsets):
        dump, offsets = dump_and_offsets
        cartographer = DumpCartographer()
        regions = cartographer.map_dump(dump.data)
        region = cartographer.region_at(
            regions, self._aligned_probe(offsets["weights"])
        )
        assert region.kind is RegionKind.QUANTIZED

    def test_corrupted_band_is_constant(self, dump_and_offsets):
        dump, offsets = dump_and_offsets
        cartographer = DumpCartographer()
        regions = cartographer.map_dump(dump.data)
        region = cartographer.region_at(
            regions, self._aligned_probe(offsets["image"])
        )
        assert region.kind is RegionKind.CONSTANT

    def test_runtime_blob_is_random(self, dump_and_offsets):
        dump, _ = dump_and_offsets
        cartographer = DumpCartographer()
        regions = cartographer.map_dump(dump.data)
        # Deep inside the runtime metadata blob, past the embedded strings.
        region = cartographer.region_at(regions, 32 * 1024)
        assert region.kind is RegionKind.RANDOM

    def test_slack_pages_are_zero(self, dump_and_offsets):
        dump, _ = dump_and_offsets
        cartographer = DumpCartographer()
        regions = cartographer.map_dump(dump.data)
        totals = cartographer.kind_totals(regions)
        assert totals[RegionKind.ZERO] > 0
