"""Unit tests for attack step 1 — pid polling."""

import pytest

from repro.attack.polling import PidPoller
from repro.errors import VictimNotFoundError
from repro.vitis.app import VictimApplication


class TestFindVictim:
    def test_sees_victim_from_other_user_space(self, shells):
        attacker_shell, victim_shell = shells
        app = VictimApplication(victim_shell)
        run = app.launch("resnet50_pt", infer=False)
        poller = PidPoller(attacker_shell)
        sighting = poller.find_victim("resnet50_pt")
        assert sighting is not None
        assert sighting.pid == run.pid
        assert sighting.uid == "victim"
        assert "resnet50_pt.xmodel" in sighting.cmdline

    def test_absent_victim_returns_none(self, shells):
        attacker_shell, _ = shells
        assert PidPoller(attacker_shell).find_victim("resnet50_pt") is None

    def test_wait_for_victim_already_running(self, shells):
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell).launch("resnet50_pt", infer=False)
        sighting = PidPoller(attacker_shell).wait_for_victim("resnet50_pt")
        assert sighting.pid == run.pid

    def test_wait_for_victim_times_out(self, shells):
        attacker_shell, _ = shells
        poller = PidPoller(attacker_shell, poll_limit=5)
        with pytest.raises(VictimNotFoundError):
            poller.wait_for_victim("ghost_model")
        assert poller.polls_performed == 5

    def test_waiting_advances_kernel_clock(self, shells):
        attacker_shell, _ = shells
        ticks_before = attacker_shell.kernel.clock_ticks
        poller = PidPoller(attacker_shell, poll_limit=5)
        with pytest.raises(VictimNotFoundError):
            poller.wait_for_victim("ghost_model")
        assert attacker_shell.kernel.clock_ticks == ticks_before + 5

    def test_sighting_describe(self, shells):
        attacker_shell, victim_shell = shells
        VictimApplication(victim_shell).launch("resnet50_pt", infer=False)
        sighting = PidPoller(attacker_shell).find_victim("resnet50_pt")
        text = sighting.describe()
        assert str(sighting.pid) in text
        assert "victim" in text


class TestTermination:
    def test_is_alive_tracks_process_table(self, shells):
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell).launch("resnet50_pt", infer=False)
        poller = PidPoller(attacker_shell)
        assert poller.is_alive(run.pid)
        run.terminate()
        assert not poller.is_alive(run.pid)

    def test_wait_for_termination_returns_poll_count(self, shells):
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell).launch("resnet50_pt", infer=False)
        run.terminate()
        polls = PidPoller(attacker_shell).wait_for_termination(run.pid)
        assert polls == 1

    def test_wait_for_termination_times_out_on_live_pid(self, shells):
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell).launch("resnet50_pt", infer=False)
        poller = PidPoller(attacker_shell, poll_limit=3)
        with pytest.raises(VictimNotFoundError):
            poller.wait_for_termination(run.pid)

    def test_snapshot_is_full_ps_output(self, shells):
        attacker_shell, _ = shells
        snapshot = PidPoller(attacker_shell).snapshot()
        assert "UID" in snapshot
        assert "kworker" in snapshot
