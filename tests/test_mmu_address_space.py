"""Unit tests for VMAs and address spaces."""

import pytest

from repro.errors import TranslationFault, VmaError
from repro.hw.dram import DramDevice
from repro.mmu.address_space import AddressSpace, Vma, VmaKind
from repro.mmu.frame_alloc import FrameAllocator
from repro.mmu.paging import PAGE_SIZE

HEAP_BASE = 0xAAAA_EE77_5000


@pytest.fixture
def space() -> AddressSpace:
    dram = DramDevice(capacity=1024 * PAGE_SIZE)
    allocator = FrameAllocator(total_frames=1024)
    return AddressSpace(allocator=allocator, memory=dram, owner=1391)


class TestVma:
    def test_unaligned_rejected(self):
        with pytest.raises(VmaError):
            Vma(0x1001, 0x2000, "rw-p", VmaKind.ANON)

    def test_empty_rejected(self):
        with pytest.raises(VmaError):
            Vma(0x1000, 0x1000, "rw-p", VmaKind.ANON)

    def test_bad_perms_rejected(self):
        with pytest.raises(VmaError):
            Vma(0x1000, 0x2000, "rwZp", VmaKind.ANON)

    def test_maps_line_matches_paper_format(self):
        vma = Vma(0xAAAAEE775000, 0xAAAAEFD8A000, "rw-p", VmaKind.HEAP, "[heap]")
        line = vma.maps_line()
        assert line.startswith("aaaaee775000-aaaaefd8a000 rw-p 00000000 00:00 0")
        assert line.endswith("[heap]")

    def test_maps_line_anonymous_has_no_name(self):
        vma = Vma(0x1000, 0x2000, "rw-p", VmaKind.ANON)
        assert vma.maps_line().endswith(" 0")

    def test_overlaps(self):
        vma = Vma(0x2000, 0x4000, "rw-p", VmaKind.ANON)
        assert vma.overlaps(0x3000, 0x5000)
        assert vma.overlaps(0x1000, 0x2001)
        assert not vma.overlaps(0x4000, 0x5000)
        assert not vma.overlaps(0x1000, 0x2000)


class TestAddVma:
    def test_add_backs_pages_eagerly(self, space):
        vma = space.add_vma(0x10000, 3 * PAGE_SIZE, "rw-p", VmaKind.ANON)
        assert vma.length == 3 * PAGE_SIZE
        assert len(space.page_table) == 3

    def test_length_rounds_up_to_page(self, space):
        vma = space.add_vma(0x10000, 100, "rw-p", VmaKind.ANON)
        assert vma.length == PAGE_SIZE

    def test_overlap_rejected(self, space):
        space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)
        with pytest.raises(VmaError):
            space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)

    def test_vmas_sorted_by_start(self, space):
        space.add_vma(0x30000, PAGE_SIZE, "rw-p", VmaKind.ANON)
        space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)
        starts = [vma.start for vma in space.vmas()]
        assert starts == sorted(starts)

    def test_find_vma(self, space):
        space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)
        assert space.find_vma(0x10800) is not None
        assert space.find_vma(0x20000) is None

    def test_vma_by_name(self, space):
        space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.HEAP, name="[heap]")
        assert space.vma_by_name("[heap]") is not None
        assert space.vma_by_name("[stack]") is None


class TestHeap:
    def test_create_heap(self, space):
        heap = space.create_heap(HEAP_BASE)
        assert heap.name == "[heap]"
        assert heap.start == HEAP_BASE

    def test_second_heap_rejected(self, space):
        space.create_heap(HEAP_BASE)
        with pytest.raises(VmaError):
            space.create_heap(HEAP_BASE + 0x100000)

    def test_brk_grows_heap(self, space):
        space.create_heap(HEAP_BASE)
        space.brk(HEAP_BASE + 5 * PAGE_SIZE)
        heap = space.heap()
        assert heap.end == HEAP_BASE + 5 * PAGE_SIZE
        assert len(space.page_table) == 5

    def test_brk_below_current_end_is_noop(self, space):
        space.create_heap(HEAP_BASE, 4 * PAGE_SIZE)
        space.brk(HEAP_BASE + PAGE_SIZE)
        assert space.heap().end == HEAP_BASE + 4 * PAGE_SIZE

    def test_brk_without_heap_rejected(self, space):
        with pytest.raises(VmaError):
            space.brk(0x1000)

    def test_grown_heap_is_writable(self, space):
        space.create_heap(HEAP_BASE)
        space.brk(HEAP_BASE + 3 * PAGE_SIZE)
        address = HEAP_BASE + 2 * PAGE_SIZE + 17
        space.write_virtual(address, b"deep")
        assert space.read_virtual(address, 4) == b"deep"


class TestVirtualIO:
    def test_roundtrip_within_page(self, space):
        space.create_heap(HEAP_BASE)
        space.write_virtual(HEAP_BASE + 10, b"hello")
        assert space.read_virtual(HEAP_BASE + 10, 5) == b"hello"

    def test_roundtrip_across_pages(self, space):
        space.create_heap(HEAP_BASE, 3 * PAGE_SIZE)
        payload = bytes(range(256)) * 24
        space.write_virtual(HEAP_BASE + PAGE_SIZE - 100, payload)
        assert space.read_virtual(HEAP_BASE + PAGE_SIZE - 100, len(payload)) == payload

    def test_unmapped_read_faults(self, space):
        with pytest.raises(TranslationFault):
            space.read_virtual(0xDEAD0000, 4)

    def test_translate_preserves_offset(self, space):
        space.create_heap(HEAP_BASE)
        physical = space.translate(HEAP_BASE + 0x123)
        assert physical % PAGE_SIZE == 0x123

    def test_physical_segments_coalesce_adjacent_frames(self, space):
        # Fresh allocator hands out ascending frames -> one segment.
        space.create_heap(HEAP_BASE, 4 * PAGE_SIZE)
        segments = space.physical_segments(HEAP_BASE, 4 * PAGE_SIZE)
        assert len(segments) == 1
        assert segments[0][1] == 4 * PAGE_SIZE

    def test_physical_segments_split_on_scatter(self, space):
        space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)  # takes frame 0
        space.create_heap(HEAP_BASE, PAGE_SIZE)  # frame 1
        space.brk(HEAP_BASE + 2 * PAGE_SIZE)  # frame 2 - contiguous with 1
        segments = space.physical_segments(HEAP_BASE, 2 * PAGE_SIZE)
        assert len(segments) == 1  # frames 1,2 still adjacent
        total = sum(length for _, length in segments)
        assert total == 2 * PAGE_SIZE


class TestTeardown:
    def test_teardown_returns_all_frames(self, space):
        space.create_heap(HEAP_BASE, 2 * PAGE_SIZE)
        space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)
        frames = space.teardown()
        assert len(frames) == 3
        assert space.torn_down
        assert len(space.page_table) == 0

    def test_teardown_does_not_free_frames(self, space):
        """The kernel owns the free decision — that is where sanitize hooks."""
        space.create_heap(HEAP_BASE)
        frames = space.teardown()
        assert space.allocator.is_allocated(frames[0])

    def test_operations_after_teardown_rejected(self, space):
        space.create_heap(HEAP_BASE)
        space.teardown()
        with pytest.raises(VmaError):
            space.add_vma(0x10000, PAGE_SIZE, "rw-p", VmaKind.ANON)

    def test_remove_foreign_vma_rejected(self, space):
        foreign = Vma(0x50000, 0x51000, "rw-p", VmaKind.ANON)
        with pytest.raises(VmaError):
            space.remove_vma(foreign)


class TestRenderMaps:
    def test_render_contains_heap_line(self, space):
        space.create_heap(HEAP_BASE)
        rendered = space.render_maps()
        assert "[heap]" in rendered
        assert f"{HEAP_BASE:08x}" in rendered

    def test_resident_bytes(self, space):
        space.create_heap(HEAP_BASE, 3 * PAGE_SIZE)
        assert space.resident_bytes() == 3 * PAGE_SIZE
