"""Unit tests for the DRAM device — residue retention is the paper's core."""

import pytest

from repro.errors import DramAddressError
from repro.hw.dram import PAGE_SIZE, DramDevice, PowerUpFill


@pytest.fixture
def dram() -> DramDevice:
    return DramDevice(capacity=64 * PAGE_SIZE)


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DramDevice(capacity=0)

    def test_capacity_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            DramDevice(capacity=PAGE_SIZE + 1)

    def test_page_count(self, dram):
        assert dram.page_count == 64


class TestReadWrite:
    def test_write_then_read(self, dram):
        dram.write(100, b"secret")
        assert dram.read(100, 6) == b"secret"

    def test_read_untouched_is_powerup_fill(self, dram):
        assert dram.read(0, 16) == b"\x00" * 16

    def test_write_across_page_boundary(self, dram):
        payload = bytes(range(200)) * 50
        dram.write(PAGE_SIZE - 100, payload)
        assert dram.read(PAGE_SIZE - 100, len(payload)) == payload

    def test_read_across_page_boundary(self, dram):
        dram.write(PAGE_SIZE - 2, b"abcd")
        assert dram.read(PAGE_SIZE - 2, 4) == b"abcd"

    def test_out_of_range_read_rejected(self, dram):
        with pytest.raises(DramAddressError):
            dram.read(dram.capacity - 1, 2)

    def test_out_of_range_write_rejected(self, dram):
        with pytest.raises(DramAddressError):
            dram.write(dram.capacity, b"x")

    def test_negative_offset_rejected(self, dram):
        with pytest.raises(DramAddressError):
            dram.read(-1, 1)

    def test_zero_length_read(self, dram):
        assert dram.read(0, 0) == b""


class TestWords:
    def test_word_roundtrip(self, dram):
        dram.write_word(256, 0xF7F5F8FD)
        assert dram.read_word(256) == 0xF7F5F8FD

    def test_word_is_little_endian(self, dram):
        dram.write(0, b"\xfd\xf8\xf5\xf7")
        assert dram.read_word(0) == 0xF7F5F8FD

    def test_word64(self, dram):
        dram.write_word(8, 0x1122334455667788, word_size=8)
        assert dram.read_word(8, word_size=8) == 0x1122334455667788

    def test_word_value_too_large_rejected(self, dram):
        with pytest.raises(ValueError):
            dram.write_word(0, 1 << 32)


class TestResidueRetention:
    """The security property under test: nothing clears on its own."""

    def test_data_survives_many_unrelated_operations(self, dram):
        dram.write(0, b"victim data")
        for page in range(8, 32):
            dram.write(page * PAGE_SIZE, b"other tenant")
        assert dram.read(0, 11) == b"victim data"

    def test_scrub_is_the_only_way_to_clear(self, dram):
        dram.write(PAGE_SIZE, b"residue")
        dram.scrub_page(1)
        assert dram.read(PAGE_SIZE, 7) == b"\x00" * 7

    def test_scrub_pattern(self, dram):
        dram.scrub_page(2, pattern=0xA5)
        assert dram.read(2 * PAGE_SIZE, 4) == b"\xa5" * 4

    def test_scrub_only_affects_target_page(self, dram):
        dram.write(0, b"keep")
        dram.scrub_page(1)
        assert dram.read(0, 4) == b"keep"

    def test_scrub_range_unaligned(self, dram):
        dram.write(100, b"\xff" * 300)
        dram.scrub_range(150, 100)
        assert dram.read(100, 50) == b"\xff" * 50
        assert dram.read(150, 100) == b"\x00" * 100
        assert dram.read(250, 150) == b"\xff" * 150

    def test_scrub_bad_page_rejected(self, dram):
        with pytest.raises(DramAddressError):
            dram.scrub_page(64)


class TestPowerUpFill:
    def test_pseudo_random_fill_is_deterministic(self):
        first = DramDevice(capacity=4 * PAGE_SIZE, fill=PowerUpFill.PSEUDO_RANDOM)
        second = DramDevice(capacity=4 * PAGE_SIZE, fill=PowerUpFill.PSEUDO_RANDOM)
        assert first.read(0, 64) == second.read(0, 64)

    def test_pseudo_random_differs_per_page(self):
        dram = DramDevice(capacity=4 * PAGE_SIZE, fill=PowerUpFill.PSEUDO_RANDOM)
        assert dram.read(0, 32) != dram.read(PAGE_SIZE, 32)

    def test_pseudo_random_differs_by_seed(self):
        first = DramDevice(
            capacity=PAGE_SIZE, fill=PowerUpFill.PSEUDO_RANDOM, fill_seed=1
        )
        second = DramDevice(
            capacity=PAGE_SIZE, fill=PowerUpFill.PSEUDO_RANDOM, fill_seed=2
        )
        assert first.read(0, 32) != second.read(0, 32)

    def test_write_preserves_surrounding_powerup_bytes(self):
        dram = DramDevice(capacity=PAGE_SIZE, fill=PowerUpFill.PSEUDO_RANDOM)
        before = dram.read(0, 64)
        dram.write(16, b"XX")
        after = dram.read(0, 64)
        assert after[:16] == before[:16]
        assert after[16:18] == b"XX"
        assert after[18:] == before[18:]


class TestStats:
    def test_counters_accumulate(self, dram):
        dram.write(0, b"abcd")
        dram.read(0, 4)
        dram.read(0, 4)
        assert dram.stats.bytes_written == 4
        assert dram.stats.bytes_read == 8
        assert dram.stats.read_operations == 2
        assert dram.stats.write_operations == 1

    def test_touched_pages(self, dram):
        assert dram.touched_pages == 0
        dram.write(0, b"x")
        dram.write(5 * PAGE_SIZE, b"y")
        assert dram.touched_pages == 2
        assert dram.is_page_touched(5)
        assert not dram.is_page_touched(6)

    def test_stats_reset(self, dram):
        dram.write(0, b"x")
        dram.stats.reset()
        assert dram.stats.bytes_written == 0
