"""Multi-client soak of the analysis daemon (the PR's acceptance bar).

Three async tenants interleave uploads, duplicate uploads, job
submissions, and subscriptions against one in-process daemon with
deliberately tight limits — a wedged single-worker pool with a
capacity-2 queue and token buckets sized so the scripted load *must*
hit both refusal paths.  Time is a :class:`ManualClock`, so quota
rejections and their retry-after healing are exact, not statistical.

The acceptance assertions:

- the aggregate assembled from streamed deltas is **byte-identical**
  to a batch ``repro analyze`` CLI run over the same dump files;
- backpressure and quota rejections each fired at least once;
- the SIGTERM-style drain lost no accepted job (every accepted job id
  has a streamed delta, early and late subscribers agree).
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import threading

import pytest

from repro import cli
from repro.service.analysis import AnalysisReport, DumpAnalysis
from repro.service.client import AsyncServiceClient
from repro.service.daemon import AnalysisService
from repro.service.quotas import TenantQuotaConfig
from repro.utils.resilience import ManualClock

INPUT_HW = 32
MODELS = "resnet50_pt,squeezenet_pt"
SEED = 2024


def _scrape(session, model_name: str):
    from repro.attack.addressing import AddressHarvester
    from repro.attack.extraction import MemoryScraper
    from repro.vitis.app import VictimApplication
    from repro.vitis.image import Image

    run = VictimApplication(session.victim_shell, input_hw=INPUT_HW).launch(
        model_name, image=Image.test_pattern(INPUT_HW, INPUT_HW)
    )
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    scraper = MemoryScraper(
        session.attacker_shell.devmem_tool, session.attacker_shell.user
    )
    return bytes(scraper.scrape(harvested).data)


@pytest.fixture(scope="module")
def corpus() -> list[bytes]:
    """Simulated dumps plus one externally-captured-style blob."""
    from repro.evaluation.scenarios import BoardSession

    session = BoardSession.boot(input_hw=INPUT_HW)
    dumps = [
        _scrape(session, "resnet50_pt"),
        _scrape(session, "squeezenet_pt"),
    ]
    # The external-ingest case: bytes no board of ours ever produced —
    # seeded noise around a verbatim model-name string.
    rng = random.Random(SEED)
    external = (
        bytes(rng.randrange(256) for _ in range(2048))
        + b"/usr/share/vitis_ai_library/models/resnet50_pt\x00"
        + bytes(rng.randrange(256) for _ in range(2048))
    )
    dumps.append(external)
    return dumps


@pytest.mark.slow
def test_soak_streamed_aggregate_matches_batch_cli(corpus, tmp_path, capsys):
    clock = ManualClock()
    gate = threading.Event()  # starts wedged: workers wait for set()
    observed = {"backpressure": 0, "quota": 0, "dup_uploads": 0}
    max_dump = max(len(dump) for dump in corpus)
    service = AnalysisService(
        tmp_path / "spool",
        tuple(MODELS.split(",")),
        INPUT_HW,
        workers=1,
        queue_capacity=2,
        quota_config=TenantQuotaConfig(
            # Byte bucket: one largest dump fits, two in a burst do not
            # — every tenant uploads its whole slice, so at least one
            # quota rejection is structurally guaranteed.
            upload_bytes_per_sec=float(max_dump),
            upload_burst_bytes=float(max_dump) * 1.5,
            jobs_per_sec=100.0,
            jobs_burst=100.0,
        ),
        clock=clock,
        worker_gate=gate,
    )

    async def upload_all(client, tenant: str, dumps: list[bytes]) -> list[str]:
        digests = []
        for dump in dumps:
            while True:
                response = await client.put_dump(tenant, dump)
                if response.get("ok"):
                    if response["deduplicated"]:
                        observed["dup_uploads"] += 1
                    digests.append(response["sha256"])
                    break
                assert response["code"] == "quota"
                observed["quota"] += 1
                clock.advance(response["retry_after"])
        return digests

    async def submit_all(client, tenant: str, digests: list[str]) -> list[int]:
        job_ids = []
        for digest in digests:
            while True:
                response = await client.request(
                    "submit", tenant=tenant, sha256=digest
                )
                if response.get("ok"):
                    job_ids.append(response["job_id"])
                    break
                assert response["code"] == "backpressure"
                observed["backpressure"] += 1
                # Release the wedge so the backlog can drain, then
                # yield real time for the pool to make room.
                gate.set()
                await asyncio.sleep(0.01)
        return job_ids

    async def tenant_script(host, port, tenant, dumps):
        async with await AsyncServiceClient.connect(host, port) as client:
            digests = await upload_all(client, tenant, dumps)
            # Re-upload everything: pure dedup hits, quota depleting.
            await upload_all(client, tenant, dumps)
            return await submit_all(client, tenant, digests)

    async def subscribe_events(host, port, events):
        async with await AsyncServiceClient.connect(host, port) as client:
            async for event in client.subscribe():
                events.append(event)

    async def scenario():
        host, port = await service.start()
        early_events: list[dict] = []
        early = asyncio.create_task(
            subscribe_events(host, port, early_events)
        )
        await asyncio.sleep(0.01)
        # Three tenants, overlapping slices: every dump is uploaded by
        # at least two tenants (cross-tenant dedup), concurrently.
        slices = {
            "tenant-a": corpus,
            "tenant-b": corpus[:2] + corpus[:1],
            "tenant-c": corpus[1:] + corpus[2:],
        }
        job_lists = await asyncio.gather(
            *(
                tenant_script(host, port, tenant, dumps)
                for tenant, dumps in slices.items()
            )
        )
        accepted_jobs = [job for jobs in job_lists for job in jobs]
        # SIGTERM equivalent: drain must finish every accepted job.
        service.request_drain()
        await service.drained()
        late_events: list[dict] = []
        await subscribe_events(host, port, late_events)  # pure backlog
        await asyncio.wait_for(early, timeout=10)
        stats = None
        async with await AsyncServiceClient.connect(host, port) as client:
            stats = (await client.request("stats"))["stats"]
        await service.close()
        return accepted_jobs, early_events, late_events, stats

    accepted_jobs, early_events, late_events, stats = asyncio.run(scenario())

    # The scripted load actually exercised both refusal paths.
    assert observed["quota"] >= 1
    assert observed["backpressure"] >= 1
    assert observed["dup_uploads"] >= len(corpus)
    assert stats["spool"]["hits"] >= len(corpus)
    assert any(
        counters["uploads_rejected"] >= 1
        for counters in stats["tenants"].values()
    )

    # No accepted job was lost to the drain: every job id streamed a
    # delta, and early/live and late/backlog subscribers agree.
    deltas = [event for event in early_events if event["event"] == "delta"]
    assert sorted(event["job_id"] for event in deltas) == sorted(accepted_jobs)
    assert early_events[-1]["event"] == "drained"
    assert late_events == early_events
    assert stats["jobs"]["failed"] == 0

    # Byte-identity: the streamed aggregate equals a batch CLI run
    # over the same (unique) dump files.
    streamed = AnalysisReport()
    for event in deltas:
        streamed.add(DumpAnalysis.from_payload(event["analysis"]))
    dump_paths = []
    for dump in {hashlib.sha256(d).hexdigest(): d for d in corpus}.values():
        path = tmp_path / f"{hashlib.sha256(dump).hexdigest()}.bin"
        path.write_bytes(dump)
        dump_paths.append(str(path))
    batch_report = tmp_path / "batch.json"
    exit_code = cli.main(
        [
            "analyze",
            *dump_paths,
            "--models",
            MODELS,
            "--input-hw",
            str(INPUT_HW),
            "-o",
            str(batch_report),
        ]
    )
    capsys.readouterr()
    assert exit_code == 0
    assert batch_report.read_bytes() == streamed.to_json().encode("utf-8")
