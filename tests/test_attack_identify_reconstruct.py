"""Unit tests for attack steps 4a (identification) and 4b (reconstruction)."""

import pytest

from repro.attack.identify import ModelIdentifier, SignatureDatabase
from repro.attack.profiling import ModelProfile, OfflineProfiler, ProfileStore
from repro.attack.reconstruct import ImageReconstructor
from repro.attack.addressing import AddressHarvester
from repro.attack.extraction import MemoryScraper
from repro.attack.config import AttackConfig
from repro.errors import IdentificationError, ReconstructionError
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image

INPUT_HW = 32


@pytest.fixture
def profiles(shells) -> ProfileStore:
    attacker_shell, _ = shells
    profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
    return profiler.profile_library(
        ["resnet50_pt", "squeezenet_pt", "inception_v1_tf"]
    )


def _scrape_victim(shells, model_name: str, image: Image):
    attacker_shell, victim_shell = shells
    run = VictimApplication(victim_shell, input_hw=INPUT_HW).launch(
        model_name, image=image
    )
    harvester = AddressHarvester(attacker_shell.procfs, caller=attacker_shell.user)
    harvested = harvester.harvest(run.pid)
    run.terminate()
    scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
    return scraper.scrape(harvested)


class TestSignatureDatabase:
    def test_distinctive_tokens_exclude_shared_strings(self, profiles):
        database = SignatureDatabase.from_profiles(profiles)
        resnet_tokens = database.signature("resnet50_pt").tokens
        squeeze_tokens = database.signature("squeezenet_pt").tokens
        assert not resnet_tokens & squeeze_tokens
        # Shared runtime library paths must not be signatures.
        assert not any("libvart" in token for token in resnet_tokens)

    def test_signatures_contain_model_specific_strings(self, profiles):
        database = SignatureDatabase.from_profiles(profiles)
        tokens = database.signature("resnet50_pt").tokens
        assert any("resnet50" in token for token in tokens)

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            SignatureDatabase.from_profiles(ProfileStore())

    def test_match_scores_all_models(self, shells, profiles):
        dump = _scrape_victim(
            shells, "resnet50_pt", Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        database = SignatureDatabase.from_profiles(profiles)
        scores = database.match(dump.data)
        assert set(scores) == {"resnet50_pt", "squeezenet_pt", "inception_v1_tf"}
        assert scores["resnet50_pt"][0] > scores["squeezenet_pt"][0]


class TestIdentification:
    def test_identifies_the_running_model(self, shells, profiles):
        dump = _scrape_victim(
            shells, "resnet50_pt", Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        identifier = ModelIdentifier(SignatureDatabase.from_profiles(profiles))
        result = identifier.identify(dump)
        assert result.best_model == "resnet50_pt"
        assert result.confident
        assert result.matched_tokens

    def test_identifies_each_profiled_model(self, shells, profiles):
        for name in ("squeezenet_pt", "inception_v1_tf"):
            dump = _scrape_victim(
                shells, name, Image.test_pattern(INPUT_HW, INPUT_HW)
            )
            identifier = ModelIdentifier(SignatureDatabase.from_profiles(profiles))
            assert identifier.identify(dump).best_model == name

    def test_grep_hits_show_model_name_rows(self, shells, profiles):
        dump = _scrape_victim(
            shells, "resnet50_pt", Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        identifier = ModelIdentifier(SignatureDatabase.from_profiles(profiles))
        result = identifier.identify(dump)
        assert any("resnet50" in hit.row_text for hit in result.grep_hits)

    def test_zeroed_dump_fails_identification(self, profiles):
        from repro.attack.extraction import ScrapedDump

        dump = ScrapedDump(
            pid=1, heap_start=0, data=b"\x00" * 4096,
            pages_read=1, pages_skipped=0, devmem_reads=1024,
        )
        identifier = ModelIdentifier(SignatureDatabase.from_profiles(profiles))
        with pytest.raises(IdentificationError):
            identifier.identify(dump)

    def test_describe_mentions_model(self, shells, profiles):
        dump = _scrape_victim(
            shells, "resnet50_pt", Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        identifier = ModelIdentifier(SignatureDatabase.from_profiles(profiles))
        assert "resnet50_pt" in identifier.identify(dump).describe()


class TestReconstruction:
    def test_recovers_exact_image(self, shells, profiles):
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=11)
        dump = _scrape_victim(shells, "resnet50_pt", secret)
        reconstructor = ImageReconstructor()
        result = reconstructor.reconstruct(dump, profiles.get("resnet50_pt"))
        assert result.image.pixel_match_rate(secret) == 1.0

    def test_recovers_arbitrary_uncorrupted_image(self, shells, profiles):
        """No marker needed — the offset alone suffices."""
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=23)
        dump = _scrape_victim(shells, "resnet50_pt", secret)
        result = ImageReconstructor().reconstruct(
            dump, profiles.get("resnet50_pt")
        )
        assert not result.corruption_marker_seen
        assert result.image.pixel_match_rate(secret) == 1.0

    def test_marker_rows_found_for_corrupted_image(self, shells, profiles):
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=11).corrupted(0.2)
        dump = _scrape_victim(shells, "resnet50_pt", secret)
        result = ImageReconstructor().reconstruct(
            dump, profiles.get("resnet50_pt")
        )
        assert result.corruption_marker_seen
        expected_rows = int(INPUT_HW * 0.2) * INPUT_HW * 3 // 16
        assert abs(len(result.marker_rows) - expected_rows) <= 2

    def test_profile_exceeding_dump_rejected(self, shells, profiles):
        secret = Image.test_pattern(INPUT_HW, INPUT_HW)
        dump = _scrape_victim(shells, "resnet50_pt", secret)
        oversized = ModelProfile(
            model_name="resnet50_pt",
            image_offset=dump.nbytes - 10,
            image_height=INPUT_HW, image_width=INPUT_HW,
            heap_size=dump.nbytes,
        )
        with pytest.raises(ReconstructionError):
            ImageReconstructor().reconstruct(dump, oversized)

    def test_non_grayscale_marker_rejected(self, shells, profiles):
        secret = Image.test_pattern(INPUT_HW, INPUT_HW)
        dump = _scrape_victim(shells, "resnet50_pt", secret)
        config = AttackConfig(corruption_marker=(255, 0, 0))
        reconstructor = ImageReconstructor(config)
        with pytest.raises(ReconstructionError):
            reconstructor.find_marker_rows(dump)

    def test_describe_mentions_offset(self, shells, profiles):
        secret = Image.test_pattern(INPUT_HW, INPUT_HW)
        dump = _scrape_victim(shells, "resnet50_pt", secret)
        result = ImageReconstructor().reconstruct(
            dump, profiles.get("resnet50_pt")
        )
        assert hex(result.image_offset) in result.describe()
