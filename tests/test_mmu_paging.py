"""Unit tests for page constants and alignment helpers."""

import pytest

from repro.mmu.paging import (
    PAGE_SIZE,
    align_down,
    align_up,
    is_page_aligned,
    page_count,
    page_offset,
    page_span,
    vpn_of,
)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234) == 0x1000
        assert align_down(0x1000) == 0x1000

    def test_align_up(self):
        assert align_up(0x1001) == 0x2000
        assert align_up(0x1000) == 0x1000
        assert align_up(0) == 0

    def test_is_page_aligned(self):
        assert is_page_aligned(0)
        assert is_page_aligned(0x3000)
        assert not is_page_aligned(0x3001)

    def test_page_offset(self):
        assert page_offset(0xAAAA_EE77_5123) == 0x123

    def test_vpn_of(self):
        assert vpn_of(0xAAAA_EE77_5000) == 0xAAAA_EE77_5000 >> 12


class TestPageCount:
    def test_exact(self):
        assert page_count(PAGE_SIZE) == 1
        assert page_count(3 * PAGE_SIZE) == 3

    def test_rounds_up(self):
        assert page_count(1) == 1
        assert page_count(PAGE_SIZE + 1) == 2

    def test_zero(self):
        assert page_count(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            page_count(-1)


class TestPageSpan:
    def test_single_page(self):
        span = page_span(0x1000, 0x1800)
        assert list(span) == [1]

    def test_crossing_boundary(self):
        span = page_span(0x1800, 0x2800)
        assert list(span) == [1, 2]

    def test_exact_page_end_not_included(self):
        span = page_span(0x1000, 0x2000)
        assert list(span) == [1]

    def test_empty_range(self):
        assert list(page_span(0x1000, 0x1000)) == []

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            page_span(0x2000, 0x1000)
