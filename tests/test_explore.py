"""The explorer: genomes, evolution determinism, Pareto frontiers."""

from __future__ import annotations

import random

import pytest

from repro.explore import (
    AttackGenome,
    EvolutionConfig,
    FrontierReport,
    GenomeEvaluator,
    attack_report,
    crossover,
    defense_report,
    deployment_overhead,
    dominates,
    evolve,
    export_elites,
    genome_from_dict,
    genome_to_dict,
    mutate,
    pareto_front,
    random_genome,
    sweep_defense_space,
)
from repro.explore.genome import (
    CARVE_WINDOWS,
    CORRUPTION_LEVELS,
    DELAY_TICKS,
    MODEL_POOL,
)

TINY = EvolutionConfig(seed=0, population=3, generations=2, elites=1)


# -- genomes ------------------------------------------------------------------


class TestGenome:
    def test_random_genomes_are_valid_and_seeded(self):
        first = [random_genome(random.Random(11)) for _ in range(8)]
        second = [random_genome(random.Random(11)) for _ in range(8)]
        assert first == second

    def test_dict_round_trip(self):
        genome = random_genome(random.Random(5))
        assert genome_from_dict(genome_to_dict(genome)) == genome

    def test_mutation_changes_exactly_one_gene(self):
        rng = random.Random(13)
        for _ in range(50):
            genome = random_genome(rng)
            mutant = mutate(genome, rng)
            before = genome_to_dict(genome)
            after = genome_to_dict(mutant)
            changed = [k for k in before if before[k] != after[k]]
            assert len(changed) == 1

    def test_crossover_stays_in_parent_gene_pools(self):
        rng = random.Random(17)
        for _ in range(50):
            a, b = random_genome(rng), random_genome(rng)
            child = genome_to_dict(crossover(a, b, rng))
            da, db = genome_to_dict(a), genome_to_dict(b)
            for gene, value in child.items():
                assert value in (da[gene], db[gene])

    def test_out_of_pool_genes_rejected(self):
        genome = random_genome(random.Random(0))
        fields = genome_to_dict(genome)
        fields["delay_ticks"] = max(DELAY_TICKS) + 1
        with pytest.raises(ValueError, match="delay_ticks"):
            genome_from_dict(fields)
        fields = genome_to_dict(genome)
        fields["model_mix"] = ["yolov3_voc_tf"]
        with pytest.raises(ValueError, match="outside the genome pool"):
            genome_from_dict(fields)
        fields = genome_to_dict(genome)
        fields["model_mix"] = sorted(MODEL_POOL[:2], reverse=True)
        with pytest.raises(ValueError, match="sorted"):
            genome_from_dict(fields)

    def test_to_scenario_is_runnable_and_deterministic(self):
        genome = random_genome(random.Random(2))
        scenario = genome.to_scenario()
        assert scenario == genome.to_scenario()
        assert scenario.carve_window in CARVE_WINDOWS
        assert scenario.corruption_fraction in CORRUPTION_LEVELS
        assert scenario.executor == "inprocess"


# -- fitness ------------------------------------------------------------------


class TestGenomeEvaluator:
    def test_scores_cached_by_genome_identity(self):
        evaluator = GenomeEvaluator(fitness="residue")
        genome = random_genome(random.Random(4))
        clone = genome_from_dict(genome_to_dict(genome))
        first = evaluator.score(genome)
        assert evaluator.score(clone) == first
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1

    def test_hardened_profile_scores_no_higher(self):
        genome = random_genome(random.Random(4))
        open_score = GenomeEvaluator(profile="none").score(genome)
        hard_score = GenomeEvaluator(profile="zero_on_free").score(genome)
        assert hard_score <= open_score
        assert hard_score == 0.0

    def test_unknown_fitness_rejected(self):
        with pytest.raises(ValueError, match="unknown fitness"):
            GenomeEvaluator(fitness="vibes")


# -- evolution ----------------------------------------------------------------


class TestEvolve:
    def test_same_seed_byte_identical_report(self):
        first = attack_report({"none": evolve(TINY)}, seed=0, params={})
        second = attack_report({"none": evolve(TINY)}, seed=0, params={})
        assert first.to_json() == second.to_json()

    def test_different_seeds_diverge(self):
        other = EvolutionConfig(
            seed=1, population=3, generations=2, elites=1
        )
        assert evolve(TINY).frontier != evolve(other).frontier

    def test_frontier_is_ranked_and_distinct(self):
        result = evolve(TINY)
        scores = [score for score, _ in result.frontier]
        assert scores == sorted(scores, reverse=True)
        keys = [genome.key() for _, genome in result.frontier]
        assert len(keys) == len(set(keys))

    def test_stats_track_every_generation(self):
        result = evolve(TINY)
        assert [s.generation for s in result.stats] == [0, 1]
        assert all(s.best >= s.mean for s in result.stats)
        assert result.evaluations + result.cache_hits >= (
            TINY.population * TINY.generations
        )

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="population"):
            EvolutionConfig(population=1)
        with pytest.raises(ValueError, match="elites"):
            EvolutionConfig(population=4, elites=4)
        with pytest.raises(ValueError, match="tournament"):
            EvolutionConfig(population=4, tournament=5)
        with pytest.raises(ValueError, match="mutation_rate"):
            EvolutionConfig(mutation_rate=1.5)
        with pytest.raises(ValueError, match="unknown fitness"):
            EvolutionConfig(fitness="vibes")


# -- pareto -------------------------------------------------------------------


class TestParetoFront:
    def test_dominates_is_strict(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (2, 2))
        assert not dominates((2, 2), (2, 2))
        assert not dominates((1, 3), (2, 2))
        with pytest.raises(ValueError, match="arity"):
            dominates((1,), (1, 2))

    def test_front_membership_property(self):
        # Property: a flagged point is dominated by nobody; an
        # unflagged point is dominated by at least one flagged point.
        rng = random.Random(23)
        for _ in range(20):
            points = [
                (rng.randrange(8), rng.randrange(8)) for _ in range(12)
            ]
            flags = pareto_front(points)
            assert any(flags)
            for i, (point, flag) in enumerate(zip(points, flags)):
                dominators = [
                    j
                    for j, other in enumerate(points)
                    if j != i and dominates(other, point)
                ]
                if flag:
                    assert not dominators
                else:
                    assert any(flags[j] for j in dominators)

    def test_equal_points_share_the_front(self):
        assert pareto_front([(1, 1), (1, 1), (2, 2)]) == (
            True, True, False,
        )


class TestDefenseSweep:
    @pytest.fixture(scope="class")
    def points(self):
        genome = AttackGenome(
            boards=1,
            victims=2,
            wave_size=1,
            tenants_per_board=1,
            model_mix=("resnet50_pt",),
            coalesce_reads=True,
            delay_ticks=2,
            carve_window=256,
            corruption=0.0,
            seed=0,
        )
        return sweep_defense_space(genome, scrub_rates=(16,))

    def test_swept_front_is_non_dominated(self, points):
        front = [p for p in points if p.on_front]
        assert front
        for point in front:
            assert not any(
                dominates(other.objectives, point.objectives)
                for other in points
            )

    def test_dominated_points_are_flagged_off_front(self, points):
        for point in points:
            if not point.on_front:
                assert any(
                    other.on_front
                    and dominates(other.objectives, point.objectives)
                    for other in points
                )

    def test_undefended_point_pays_zero_overhead(self, points):
        by_name = {p.config.name: p for p in points}
        none = by_name["none"]
        assert none.overhead == 0
        assert none.leakage_bytes > 0
        assert none.on_front  # nothing can beat free

    def test_overhead_model_is_deterministic(self, points):
        for point in points:
            assert point.overhead >= 0
            assert isinstance(point.overhead, int)

    def test_sweep_is_deterministic(self, points):
        genome = AttackGenome(
            boards=1,
            victims=2,
            wave_size=1,
            tenants_per_board=1,
            model_mix=("resnet50_pt",),
            coalesce_reads=True,
            delay_ticks=2,
            carve_window=256,
            corruption=0.0,
            seed=0,
        )
        again = sweep_defense_space(genome, scrub_rates=(16,))
        assert again == points


# -- reports and elites -------------------------------------------------------


class TestFrontierReport:
    def test_attack_report_round_trip(self):
        report = attack_report(
            {"none": evolve(TINY)}, seed=0, params={"population": 3}
        )
        rebuilt = FrontierReport.from_json(report.to_json())
        assert rebuilt == report
        assert rebuilt.elite_genomes() == report.elite_genomes()

    def test_unsupported_format_rejected(self):
        report = attack_report({"none": evolve(TINY)}, seed=0, params={})
        broken = report.to_json().replace('"format": 1', '"format": 99')
        with pytest.raises(ValueError, match="frontier format"):
            FrontierReport.from_json(broken)

    def test_defense_report_has_no_elites(self):
        genome = random_genome(random.Random(0))
        report = defense_report(
            sweep_defense_space(genome, scrub_rates=(16,)),
            seed=0,
            params={},
        )
        with pytest.raises(ValueError, match="attack"):
            report.elite_genomes()
        assert "frontier" in report.render()

    def test_elites_replay_green_as_corpus_seeds(self, tmp_path):
        from repro.fuzzlab import replay

        report = attack_report({"none": evolve(TINY)}, seed=0, params={})
        paths = export_elites(report, tmp_path / "elites")
        assert len(paths) == len(report.entries)
        verdicts = replay([str(tmp_path / "elites")])
        assert verdicts
        assert all(verdict.ok for _, verdict in verdicts)

    def test_export_is_stable_across_reruns(self, tmp_path):
        report = attack_report({"none": evolve(TINY)}, seed=0, params={})
        first = export_elites(report, tmp_path / "a")
        second = export_elites(report, tmp_path / "b")
        for one, two in zip(first, second):
            assert one.name == two.name
            assert one.read_bytes() == two.read_bytes()
