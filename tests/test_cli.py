"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.model == "resnet50_pt"
        assert args.input_hw == 32
        assert args.board == "ZCU104"

    def test_bad_board_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--board", "VCK190"])


class TestCommands:
    def test_boards_lists_both(self, capsys):
        assert main(["boards"]) == 0
        output = capsys.readouterr().out
        assert "ZCU104" in output
        assert "ZCU102" in output

    def test_zoo_lists_models(self, capsys):
        assert main(["zoo", "--input-hw", "16"]) == 0
        output = capsys.readouterr().out
        assert "resnet50_pt" in output
        assert "pytorch" in output
        assert "tensorflow" in output

    def test_demo_succeeds_on_vulnerable_board(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Step 4a" in output
        assert "resnet50_pt" in output
        assert "100.0% pixel match" in output

    def test_demo_other_model(self, capsys):
        assert main(["demo", "--model", "squeezenet_pt"]) == 0
        assert "squeezenet_pt" in capsys.readouterr().out

    def test_figures_all_pass(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "fig04" in output
        assert "fig12" in output
        assert "[FAIL]" not in output

    def test_defenses_matrix(self, capsys):
        assert main(["defenses"]) == 0
        output = capsys.readouterr().out
        assert "vulnerable-default" in output
        assert "fully-hardened" in output
        assert "YES" in output
        assert "no" in output

    def test_profile_to_stdout(self, capsys):
        assert main(["profile", "resnet50_pt"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "resnet50_pt" in payload
        assert payload["resnet50_pt"]["image_offset"] > 0

    def test_profile_to_file(self, tmp_path, capsys):
        target = tmp_path / "notebook.json"
        assert main(
            ["profile", "resnet50_pt", "squeezenet_pt", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert set(payload) == {"resnet50_pt", "squeezenet_pt"}
