"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.model == "resnet50_pt"
        assert args.input_hw == 32
        assert args.board == "ZCU104"

    def test_bad_board_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--board", "VCK190"])


class TestCommands:
    def test_boards_lists_both(self, capsys):
        assert main(["boards"]) == 0
        output = capsys.readouterr().out
        assert "ZCU104" in output
        assert "ZCU102" in output

    def test_zoo_lists_models(self, capsys):
        assert main(["zoo", "--input-hw", "16"]) == 0
        output = capsys.readouterr().out
        assert "resnet50_pt" in output
        assert "pytorch" in output
        assert "tensorflow" in output

    def test_demo_succeeds_on_vulnerable_board(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Step 4a" in output
        assert "resnet50_pt" in output
        assert "100.0% pixel match" in output

    def test_demo_other_model(self, capsys):
        assert main(["demo", "--model", "squeezenet_pt"]) == 0
        assert "squeezenet_pt" in capsys.readouterr().out

    def test_figures_all_pass(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "fig04" in output
        assert "fig12" in output
        assert "[FAIL]" not in output

    def test_defenses_matrix(self, capsys):
        assert main(["defenses"]) == 0
        output = capsys.readouterr().out
        assert "vulnerable-default" in output
        assert "fully-hardened" in output
        assert "YES" in output
        assert "no" in output

    def test_profile_to_stdout(self, capsys):
        assert main(["profile", "resnet50_pt"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "resnet50_pt" in payload
        assert payload["resnet50_pt"]["image_offset"] > 0

    def test_profile_to_file(self, tmp_path, capsys):
        target = tmp_path / "notebook.json"
        assert main(
            ["profile", "resnet50_pt", "squeezenet_pt", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert set(payload) == {"resnet50_pt", "squeezenet_pt"}


class TestCampaignCheckpointCli:
    """``repro campaign run`` with the checkpointable runtime flags."""

    RUN = [
        "campaign", "run", "--boards", "2", "--victims", "4", "--seed", "3",
    ]

    def test_run_dir_writes_canonical_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "fleet"
        assert main(self.RUN + ["--run-dir", str(run_dir)]) == 0
        output = capsys.readouterr().out
        assert "Campaign report" in output
        assert str(run_dir) in output
        assert (run_dir / "report.json").exists()
        assert (run_dir / "journal.jsonl").exists()
        assert (run_dir / "telemetry.json").exists()
        assert (run_dir / "spool" / "manifest.json").exists()

    def test_interrupt_exits_3_and_resume_matches_uninterrupted(
        self, tmp_path, capsys
    ):
        full_dir = tmp_path / "full"
        assert main(self.RUN + ["--run-dir", str(full_dir)]) == 0
        crash_dir = tmp_path / "crash"
        assert (
            main(
                self.RUN
                + ["--run-dir", str(crash_dir), "--interrupt-after", "1"]
            )
            == 3
        )
        error_output = capsys.readouterr().err
        assert "INTERRUPTED" in error_output
        assert not (crash_dir / "report.json").exists()
        assert main(["campaign", "run", "--resume", str(crash_dir)]) == 0
        assert (crash_dir / "report.json").read_bytes() == (
            full_dir / "report.json"
        ).read_bytes()

    def test_interrupt_requires_checkpointable_run(self, capsys):
        assert main(self.RUN + ["--interrupt-after", "1"]) == 2
        assert "--interrupt-after" in capsys.readouterr().err

    def test_resume_of_missing_directory_fails_cleanly(
        self, tmp_path, capsys
    ):
        assert (
            main(["campaign", "run", "--resume", str(tmp_path / "typo")])
            == 2
        )
        assert "not a run directory" in capsys.readouterr().err

    def test_run_dir_refuses_existing_campaign(self, tmp_path, capsys):
        run_dir = tmp_path / "fleet"
        assert main(self.RUN + ["--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(self.RUN + ["--run-dir", str(run_dir)]) == 2
        assert "already holds a campaign" in capsys.readouterr().err

    def test_run_dir_and_resume_are_mutually_exclusive(
        self, tmp_path, capsys
    ):
        assert (
            main(
                self.RUN
                + [
                    "--run-dir",
                    str(tmp_path / "a"),
                    "--resume",
                    str(tmp_path / "b"),
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err
        assert not (tmp_path / "a").exists()

    def test_multiprocess_executor_flag(self, capsys):
        assert (
            main(self.RUN + ["--executor", "multiprocess", "--processes", "2"])
            == 0
        )
        assert "Campaign report" in capsys.readouterr().out

    def test_executor_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "--executor", "quantum"]
            )


class TestCliErrorPaths:
    """Bad inputs must exit 2 with a message, never a traceback."""

    def test_campaign_report_missing_file(self, tmp_path, capsys):
        assert main(["campaign", "report", str(tmp_path / "ghost.json")]) == 2
        assert "ghost.json" in capsys.readouterr().err

    def test_campaign_report_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["campaign", "report", str(path)]) == 2
        assert "not a campaign report" in capsys.readouterr().err

    def test_campaign_report_wrong_shape(self, tmp_path, capsys):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"something": "else"}))
        assert main(["campaign", "report", str(path)]) == 2
        assert "not a campaign report" in capsys.readouterr().err

    def test_defense_report_missing_file(self, tmp_path, capsys):
        assert main(["defense", "report", str(tmp_path / "ghost.json")]) == 2
        assert "ghost.json" in capsys.readouterr().err

    def test_defense_report_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("][")
        assert main(["defense", "report", str(path)]) == 2
        assert "not a defense matrix" in capsys.readouterr().err

    def test_campaign_run_rejects_zero_boards(self, capsys):
        assert main(["campaign", "run", "--boards", "0"]) == 2
        assert "boards must be positive" in capsys.readouterr().err

    def test_campaign_run_rejects_unknown_model(self, capsys):
        assert (
            main(["campaign", "run", "--models", "resnet50_pt,notanet"])
            == 2
        )
        assert "unknown models" in capsys.readouterr().err

    def test_campaign_run_rejects_nonpositive_processes(self, capsys):
        assert (
            main(
                [
                    "campaign", "run",
                    "--executor", "multiprocess",
                    "--processes", "0",
                ]
            )
            == 2
        )
        assert "--processes" in capsys.readouterr().err

    def test_demo_rejects_unknown_model(self, capsys):
        assert main(["demo", "--model", "notanet"]) == 2
        assert "notanet" in capsys.readouterr().err

    def test_profile_rejects_unknown_model(self, capsys):
        assert main(["profile", "notanet"]) == 2
        assert "notanet" in capsys.readouterr().err

    def test_defense_sweep_rejects_unknown_profile(self, capsys):
        assert (
            main(
                [
                    "defense", "sweep",
                    "--boards", "1", "--victims", "1",
                    "--profiles", "adamantium",
                ]
            )
            == 2
        )
        assert "unknown defense profile" in capsys.readouterr().err

    def test_campaign_output_path_error_exits_2(self, tmp_path, capsys):
        bad = str(tmp_path / "no_such_dir" / "out.json")
        assert (
            main(
                ["campaign", "run", "--boards", "1", "--victims", "1",
                 "-o", bad]
            )
            == 2
        )
        assert "no_such_dir" in capsys.readouterr().err

    def test_profile_output_path_error_exits_2(self, tmp_path, capsys):
        bad = str(tmp_path / "no_such_dir" / "profiles.json")
        assert main(["profile", "resnet50_pt", "-o", bad]) == 2
        assert "no_such_dir" in capsys.readouterr().err

    def test_resume_of_wrong_format_spec(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "spec.json").write_text(json.dumps({"format": 99}))
        assert main(["campaign", "run", "--resume", str(run_dir)]) == 2
        assert "unsupported format" in capsys.readouterr().err


class TestFuzzCli:
    """The ``repro fuzz`` lane: run, replay, and its exit codes."""

    CORPUS = str(Path(__file__).parent / "corpus" / "fuzzlab")

    def test_run_green_exits_0(self, capsys):
        assert main(["fuzz", "run", "--budget", "2", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "Fuzzlab report" in output
        assert "2 ok, 0 violating" in output

    def test_run_writes_deterministic_report(self, tmp_path, capsys):
        target = tmp_path / "fuzz.json"
        assert (
            main(
                [
                    "fuzz", "run", "--budget", "1", "--seed", "0",
                    "--quiet", "-o", str(target),
                ]
            )
            == 0
        )
        payload = json.loads(target.read_text())
        assert payload["seed"] == 0
        assert payload["budget"] == 1
        assert len(payload["verdicts"]) == 1

    def test_run_rejects_zero_budget(self, capsys):
        assert main(["fuzz", "run", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_run_rejects_unknown_oracle(self, capsys):
        assert (
            main(["fuzz", "run", "--budget", "1", "--oracles", "vibes"]) == 2
        )
        assert "unknown oracle" in capsys.readouterr().err

    def test_run_rejects_nonpositive_shrink_reruns(self, capsys):
        assert (
            main(["fuzz", "run", "--budget", "1", "--shrink-reruns", "0"])
            == 2
        )
        assert "--shrink-reruns" in capsys.readouterr().err

    def test_run_output_path_error_exits_2(self, tmp_path, capsys):
        bad = str(tmp_path / "no_such_dir" / "fuzz.json")
        assert (
            main(
                ["fuzz", "run", "--budget", "1", "--seed", "0",
                 "--quiet", "-o", bad]
            )
            == 2
        )
        assert "no_such_dir" in capsys.readouterr().err

    def test_replay_non_object_seed_exits_2(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        assert main(["fuzz", "replay", str(path)]) == 2
        assert "not a fuzzlab seed" in capsys.readouterr().err

    def test_replay_committed_corpus_green(self, capsys):
        assert main(["fuzz", "replay", self.CORPUS]) == 0
        output = capsys.readouterr().out
        assert "violating" in output
        assert "FAIL" not in output

    def test_replay_planted_seed_exits_1(self, tmp_path, capsys):
        from repro.fuzzlab import load_scenario, save_scenario, with_plant

        scenario, _ = load_scenario(
            sorted(Path(self.CORPUS).glob("*.json"))[0]
        )
        seed = save_scenario(
            with_plant(scenario, "spool-tamper"),
            tmp_path / "planted.json",
            note="deliberate",
        )
        assert main(["fuzz", "replay", str(seed)]) == 1
        assert "spool_integrity" in capsys.readouterr().out

    def test_replay_missing_seed_exits_2(self, tmp_path, capsys):
        assert main(["fuzz", "replay", str(tmp_path / "ghost.json")]) == 2
        assert "ghost.json" in capsys.readouterr().err


class TestDefenseSweepDedupe:
    """Duplicate --profiles entries are swept once, with a warning."""

    ARGS = [
        "defense", "sweep", "--boards", "1", "--victims", "1",
        "--models", "resnet50_pt", "--input-hw", "16",
        "--no-weight-theft",
    ]

    def test_duplicates_deduped_with_warning(self, capsys):
        assert main(self.ARGS + ["--profiles", "none,none,zero_on_free"]) == 0
        captured = capsys.readouterr()
        assert "duplicate profile(s)" in captured.err
        assert "none" in captured.err
        # Each profile appears as exactly one matrix row.
        assert captured.out.count("\nnone ") == 1

    def test_unique_profiles_stay_silent(self, capsys):
        assert main(self.ARGS + ["--profiles", "none,zero_on_free"]) == 0
        assert "duplicate" not in capsys.readouterr().err


class TestExploreCli:
    """The ``repro explore`` lanes: frontiers, elites, exit codes."""

    ATTACK = [
        "explore", "attack", "--seed", "0", "--population", "3",
        "--generations", "2", "--keep-elites", "1",
    ]
    DEFENSES = [
        "explore", "defenses", "--boards", "1", "--victims", "2",
        "--models", "resnet50_pt", "--input-hw", "16",
        "--scrub-rates", "16",
    ]

    def test_attack_prints_ranked_frontier(self, capsys):
        assert main(self.ATTACK) == 0
        output = capsys.readouterr().out
        assert "mode=attack" in output
        assert "# 1" in output

    def test_attack_run_twice_is_byte_identical(self, tmp_path, capsys):
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        assert main(self.ATTACK + ["-o", str(first)]) == 0
        assert main(self.ATTACK + ["-o", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_attack_rejects_bad_population(self, capsys):
        assert main(self.ATTACK[:-2] + ["--population", "1"]) == 2
        assert "population" in capsys.readouterr().err

    def test_attack_rejects_unknown_profile(self, capsys):
        assert main(self.ATTACK + ["--profiles", "tinfoil"]) == 2
        assert "tinfoil" in capsys.readouterr().err

    def test_attack_exports_replayable_elites(self, tmp_path, capsys):
        elites = tmp_path / "elites"
        assert main(self.ATTACK + ["--elites", str(elites)]) == 0
        seeds = sorted(elites.glob("*.json"))
        assert seeds
        assert main(["fuzz", "replay", str(elites)]) == 0
        assert "0 violating" in capsys.readouterr().out

    def test_defenses_flags_pareto_frontier(self, tmp_path, capsys):
        target = tmp_path / "front.json"
        assert main(self.DEFENSES + ["-o", str(target)]) == 0
        output = capsys.readouterr().out
        assert "non-dominated frontier" in output
        payload = json.loads(target.read_text())
        assert payload["mode"] == "defenses"
        assert any(entry["on_front"] for entry in payload["entries"])

    def test_defenses_rejects_bad_scrub_rates(self, capsys):
        assert (
            main(self.DEFENSES[:-2] + ["--scrub-rates", "16,banana"]) == 2
        )
        assert "banana" in capsys.readouterr().err

    def test_defenses_markdown_table(self, capsys):
        assert main(self.DEFENSES + ["--markdown"]) == 0
        assert "| rank |" in capsys.readouterr().out
