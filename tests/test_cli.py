"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.model == "resnet50_pt"
        assert args.input_hw == 32
        assert args.board == "ZCU104"

    def test_bad_board_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--board", "VCK190"])


class TestCommands:
    def test_boards_lists_both(self, capsys):
        assert main(["boards"]) == 0
        output = capsys.readouterr().out
        assert "ZCU104" in output
        assert "ZCU102" in output

    def test_zoo_lists_models(self, capsys):
        assert main(["zoo", "--input-hw", "16"]) == 0
        output = capsys.readouterr().out
        assert "resnet50_pt" in output
        assert "pytorch" in output
        assert "tensorflow" in output

    def test_demo_succeeds_on_vulnerable_board(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Step 4a" in output
        assert "resnet50_pt" in output
        assert "100.0% pixel match" in output

    def test_demo_other_model(self, capsys):
        assert main(["demo", "--model", "squeezenet_pt"]) == 0
        assert "squeezenet_pt" in capsys.readouterr().out

    def test_figures_all_pass(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "fig04" in output
        assert "fig12" in output
        assert "[FAIL]" not in output

    def test_defenses_matrix(self, capsys):
        assert main(["defenses"]) == 0
        output = capsys.readouterr().out
        assert "vulnerable-default" in output
        assert "fully-hardened" in output
        assert "YES" in output
        assert "no" in output

    def test_profile_to_stdout(self, capsys):
        assert main(["profile", "resnet50_pt"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "resnet50_pt" in payload
        assert payload["resnet50_pt"]["image_offset"] > 0

    def test_profile_to_file(self, tmp_path, capsys):
        target = tmp_path / "notebook.json"
        assert main(
            ["profile", "resnet50_pt", "squeezenet_pt", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert set(payload) == {"resnet50_pt", "squeezenet_pt"}


class TestCampaignCheckpointCli:
    """``repro campaign run`` with the checkpointable runtime flags."""

    RUN = [
        "campaign", "run", "--boards", "2", "--victims", "4", "--seed", "3",
    ]

    def test_run_dir_writes_canonical_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "fleet"
        assert main(self.RUN + ["--run-dir", str(run_dir)]) == 0
        output = capsys.readouterr().out
        assert "Campaign report" in output
        assert str(run_dir) in output
        assert (run_dir / "report.json").exists()
        assert (run_dir / "journal.jsonl").exists()
        assert (run_dir / "telemetry.json").exists()
        assert (run_dir / "spool" / "manifest.json").exists()

    def test_interrupt_exits_3_and_resume_matches_uninterrupted(
        self, tmp_path, capsys
    ):
        full_dir = tmp_path / "full"
        assert main(self.RUN + ["--run-dir", str(full_dir)]) == 0
        crash_dir = tmp_path / "crash"
        assert (
            main(
                self.RUN
                + ["--run-dir", str(crash_dir), "--interrupt-after", "1"]
            )
            == 3
        )
        error_output = capsys.readouterr().err
        assert "INTERRUPTED" in error_output
        assert not (crash_dir / "report.json").exists()
        assert main(["campaign", "run", "--resume", str(crash_dir)]) == 0
        assert (crash_dir / "report.json").read_bytes() == (
            full_dir / "report.json"
        ).read_bytes()

    def test_interrupt_requires_checkpointable_run(self, capsys):
        assert main(self.RUN + ["--interrupt-after", "1"]) == 2
        assert "--interrupt-after" in capsys.readouterr().err

    def test_resume_of_missing_directory_fails_cleanly(
        self, tmp_path, capsys
    ):
        assert (
            main(["campaign", "run", "--resume", str(tmp_path / "typo")])
            == 2
        )
        assert "not a run directory" in capsys.readouterr().err

    def test_run_dir_refuses_existing_campaign(self, tmp_path, capsys):
        run_dir = tmp_path / "fleet"
        assert main(self.RUN + ["--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(self.RUN + ["--run-dir", str(run_dir)]) == 2
        assert "already holds a campaign" in capsys.readouterr().err

    def test_run_dir_and_resume_are_mutually_exclusive(
        self, tmp_path, capsys
    ):
        assert (
            main(
                self.RUN
                + [
                    "--run-dir",
                    str(tmp_path / "a"),
                    "--resume",
                    str(tmp_path / "b"),
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err
        assert not (tmp_path / "a").exists()

    def test_multiprocess_executor_flag(self, capsys):
        assert (
            main(self.RUN + ["--executor", "multiprocess", "--processes", "2"])
            == 0
        )
        assert "Campaign report" in capsys.readouterr().out

    def test_executor_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "--executor", "quantum"]
            )
