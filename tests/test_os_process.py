"""Unit tests for processes, layout, and the heap arena."""

import pytest

from repro.errors import ProcessStateError, VmaError
from repro.hw.dram import DramDevice
from repro.mmu.address_space import AddressSpace, VmaKind
from repro.mmu.frame_alloc import FrameAllocator
from repro.mmu.paging import PAGE_SIZE
from repro.petalinux.process import (
    DEFAULT_HEAP_BASE,
    HeapArena,
    Process,
    ProcessState,
    ProgramImage,
    align_up_to,
    layout_process_memory,
)
from repro.petalinux.users import Terminal, User


def _make_process(pid: int = 1391, with_layout: bool = True) -> Process:
    dram = DramDevice(capacity=4096 * PAGE_SIZE)
    allocator = FrameAllocator(total_frames=4096)
    space = AddressSpace(allocator=allocator, memory=dram, owner=pid)
    if with_layout:
        layout_process_memory(space, ProgramImage(path="./resnet50_pt"))
    user = User("victim", 1002)
    process = Process(
        pid=pid,
        ppid=1,
        user=user,
        terminal=Terminal("pts/1", user),
        cmdline=["./resnet50_pt", "model.xmodel", "001.jpg"],
        address_space=space,
    )
    if with_layout:
        process.heap_arena = HeapArena(process)
    return process


class TestProgramImage:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            ProgramImage(path="")

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ValueError):
            ProgramImage(path="x", text_size=0)


class TestLayout:
    def test_heap_at_paper_address(self):
        process = _make_process()
        heap = process.address_space.heap()
        assert heap.start == DEFAULT_HEAP_BASE == 0xAAAA_EE77_5000

    def test_standard_vmas_present(self):
        process = _make_process()
        kinds = {vma.kind for vma in process.address_space.vmas()}
        assert {VmaKind.TEXT, VmaKind.DATA, VmaKind.HEAP, VmaKind.STACK} <= kinds

    def test_text_is_executable_not_writable(self):
        process = _make_process()
        text = next(
            vma for vma in process.address_space.vmas() if vma.kind is VmaKind.TEXT
        )
        assert text.perms == "r-xp"

    def test_device_mapping_named_like_drm_node(self):
        dram = DramDevice(capacity=4096 * PAGE_SIZE)
        space = AddressSpace(
            allocator=FrameAllocator(total_frames=4096), memory=dram, owner=1
        )
        layout_process_memory(
            space, ProgramImage(path="./app"),
            device_paths=("/dev/dri/renderD128",),
        )
        assert space.vma_by_name("/dev/dri/renderD128") is not None

    def test_text_data_collision_with_heap_rejected(self):
        dram = DramDevice(capacity=4096 * PAGE_SIZE)
        space = AddressSpace(
            allocator=FrameAllocator(total_frames=4096), memory=dram, owner=1
        )
        with pytest.raises(VmaError):
            layout_process_memory(
                space,
                ProgramImage(path="./app", text_size=0x100000),
                heap_base=0xAAAA_EE76_0000,
            )


class TestProcess:
    def test_command_joins_cmdline(self):
        process = _make_process()
        assert process.command.startswith("./resnet50_pt model.xmodel")

    def test_tty_name(self):
        process = _make_process()
        assert process.tty_name() == "pts/1"
        process.terminal = None
        assert process.tty_name() == "?"

    def test_is_alive_by_state(self):
        process = _make_process()
        assert process.is_alive
        process.state = ProcessState.DEAD
        assert not process.is_alive

    def test_require_alive_raises_when_dead(self):
        process = _make_process()
        process.state = ProcessState.ZOMBIE
        with pytest.raises(ProcessStateError):
            process.require_alive()


class TestHeapArena:
    def test_allocations_are_16_byte_aligned(self):
        process = _make_process()
        arena = process.heap_arena
        arena.allocate(10)
        second = arena.allocate(10)
        assert second % 16 == 0

    def test_allocations_are_deterministic(self):
        first = _make_process().heap_arena
        second = _make_process().heap_arena
        sequence = [100, 4096, 37, 65536]
        offsets_a = [first.allocate(size) for size in sequence]
        offsets_b = [second.allocate(size) for size in sequence]
        assert offsets_a == offsets_b

    def test_allocation_grows_heap_via_brk(self):
        process = _make_process()
        heap_before = process.address_space.heap().end
        process.heap_arena.allocate(10 * PAGE_SIZE)
        assert process.address_space.heap().end > heap_before

    def test_write_and_read(self):
        process = _make_process()
        arena = process.heap_arena
        address = arena.allocate_and_write(b"model bytes")
        assert arena.read(address, 11) == b"model bytes"

    def test_zero_size_rejected(self):
        process = _make_process()
        with pytest.raises(ValueError):
            process.heap_arena.allocate(0)

    def test_arena_requires_heap(self):
        process = _make_process(with_layout=False)
        with pytest.raises(VmaError):
            HeapArena(process)

    def test_dead_process_cannot_allocate(self):
        process = _make_process()
        process.state = ProcessState.DEAD
        with pytest.raises(ProcessStateError):
            process.heap_arena.allocate(16)


class TestAlignUpTo:
    def test_basic(self):
        assert align_up_to(17, 16) == 32
        assert align_up_to(16, 16) == 16

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_up_to(10, 12)
