"""Unit tests for repro.utils.bitfield."""

import pytest

from repro.utils.bitfield import (
    bit,
    bytes_to_words,
    extract_bits,
    insert_bits,
    mask,
    sign_extend,
    words_to_bytes,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(8) == 0xFF

    def test_pagemap_pfn_width(self):
        assert mask(55) == (1 << 55) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBit:
    def test_bit_zero(self):
        assert bit(0) == 1

    def test_present_bit_position(self):
        assert bit(63) == 1 << 63

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit(-3)


class TestExtractInsert:
    def test_extract_low_nibble(self):
        assert extract_bits(0xAB, 0, 4) == 0xB

    def test_extract_high_nibble(self):
        assert extract_bits(0xAB, 4, 4) == 0xA

    def test_extract_beyond_value_is_zero(self):
        assert extract_bits(0xFF, 8, 8) == 0

    def test_insert_into_zero(self):
        assert insert_bits(0, 8, 8, 0xCD) == 0xCD00

    def test_insert_replaces_existing_field(self):
        assert insert_bits(0xFFFF, 4, 8, 0x00) == 0xF00F

    def test_insert_field_too_wide_rejected(self):
        with pytest.raises(ValueError):
            insert_bits(0, 0, 4, 0x10)

    def test_roundtrip(self):
        value = insert_bits(0, 3, 10, 0x2A5)
        assert extract_bits(value, 3, 10) == 0x2A5

    def test_negative_low_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 4)


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x7F, 8) == 127

    def test_negative_extends(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x80, 8) == -128

    def test_wide_value_masked_first(self):
        assert sign_extend(0x1FF, 8) == -1

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            sign_extend(0, 0)


class TestWordConversion:
    def test_bytes_to_words_little_endian(self):
        assert bytes_to_words(b"\x01\x00\x00\x00\xff\xff\xff\xff") == [1, 0xFFFFFFFF]

    def test_partial_trailing_word_zero_padded(self):
        assert bytes_to_words(b"\xab") == [0xAB]

    def test_words_to_bytes_roundtrip(self):
        data = bytes(range(16))
        assert words_to_bytes(bytes_to_words(data)) == data

    def test_word_too_large_rejected(self):
        with pytest.raises(ValueError):
            words_to_bytes([1 << 32])

    def test_negative_word_rejected(self):
        with pytest.raises(ValueError):
            words_to_bytes([-1])

    def test_bad_word_size_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_words(b"abcd", word_size=0)

    def test_word64(self):
        assert bytes_to_words(b"\x01" + b"\x00" * 7, word_size=8) == [1]
