"""Unit tests for per-process page tables."""

import pytest

from repro.errors import TranslationFault
from repro.mmu.pagetable import PageTable, PageTableEntry


@pytest.fixture
def table() -> PageTable:
    return PageTable()


class TestMapping:
    def test_map_and_lookup(self, table):
        table.map_page(0x100, PageTableEntry(frame=5))
        entry = table.lookup(0x100)
        assert entry is not None
        assert entry.frame == 5

    def test_lookup_unmapped_is_none(self, table):
        assert table.lookup(0x100) is None

    def test_remap_rejected(self, table):
        table.map_page(0x100, PageTableEntry(frame=5))
        with pytest.raises(ValueError):
            table.map_page(0x100, PageTableEntry(frame=6))

    def test_unmap_returns_entry(self, table):
        table.map_page(0x100, PageTableEntry(frame=5))
        assert table.unmap_page(0x100).frame == 5
        assert table.lookup(0x100) is None

    def test_unmap_unmapped_faults(self, table):
        with pytest.raises(TranslationFault):
            table.unmap_page(0x100)

    def test_contains_and_len(self, table):
        table.map_page(1, PageTableEntry(frame=0))
        table.map_page(2, PageTableEntry(frame=1))
        assert 1 in table
        assert 3 not in table
        assert len(table) == 2


class TestTranslate:
    def test_preserves_page_offset(self, table):
        table.map_page(0xAAAA_EE77_5, PageTableEntry(frame=0x60025))
        physical = table.translate(0xAAAA_EE77_5123)
        assert physical == (0x60025 << 12) | 0x123

    def test_unmapped_address_faults(self, table):
        with pytest.raises(TranslationFault) as excinfo:
            table.translate(0xDEAD_B000)
        assert excinfo.value.virtual_address == 0xDEAD_B000

    def test_adjacent_vpns_can_map_scattered_frames(self, table):
        table.map_page(10, PageTableEntry(frame=99))
        table.map_page(11, PageTableEntry(frame=3))
        assert table.translate(10 << 12) == 99 << 12
        assert table.translate(11 << 12) == 3 << 12


class TestInventory:
    def test_mapped_vpns_sorted(self, table):
        table.map_page(30, PageTableEntry(frame=1))
        table.map_page(10, PageTableEntry(frame=2))
        table.map_page(20, PageTableEntry(frame=3))
        assert table.mapped_vpns() == [10, 20, 30]

    def test_frames_in_vpn_order(self, table):
        table.map_page(30, PageTableEntry(frame=1))
        table.map_page(10, PageTableEntry(frame=2))
        assert table.frames() == [2, 1]


class TestPerms:
    def test_perms_rendering(self):
        assert PageTableEntry(frame=0).perms() == "rw-"
        assert PageTableEntry(frame=0, writable=False, executable=True).perms() == "r-x"
        assert PageTableEntry(
            frame=0, readable=False, writable=False
        ).perms() == "---"
