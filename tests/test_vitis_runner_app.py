"""Unit tests for the DPU runner and the victim application."""

import numpy as np
import pytest

from repro.petalinux.shell import Shell
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image
from repro.vitis.runner import DpuRunner
from repro.vitis.zoo import build_model

INPUT_HW = 32


@pytest.fixture
def victim_app(shells) -> VictimApplication:
    _, victim_shell = shells
    return VictimApplication(victim_shell, input_hw=INPUT_HW)


class TestRunnerLayout:
    def test_buffers_ordered_in_heap(self, shells):
        _, victim_shell = shells
        process = victim_shell.run(["./resnet50_pt"])
        model = build_model("resnet50_pt", input_hw=INPUT_HW)
        runner = DpuRunner(process, victim_shell.kernel.dpu, model)
        assert runner.runtime_blob_address < runner.model_blob_address
        assert runner.model_blob_address < runner.input_address
        assert runner.input_address < runner.output_address

    def test_layout_deterministic_across_processes(self, shells):
        _, victim_shell = shells
        offsets = []
        for _ in range(2):
            process = victim_shell.run(["./resnet50_pt"])
            model = build_model("resnet50_pt", input_hw=INPUT_HW)
            runner = DpuRunner(process, victim_shell.kernel.dpu, model)
            offsets.append(runner.input_heap_offset)
            victim_shell.kernel.exit_process(process.pid)
        assert offsets[0] == offsets[1]

    def test_layout_differs_across_models(self, shells):
        _, victim_shell = shells
        offsets = {}
        for name in ("resnet50_pt", "squeezenet_pt"):
            process = victim_shell.run([f"./{name}"])
            model = build_model(name, input_hw=INPUT_HW)
            runner = DpuRunner(process, victim_shell.kernel.dpu, model)
            offsets[name] = runner.input_heap_offset
            victim_shell.kernel.exit_process(process.pid)
        assert offsets["resnet50_pt"] != offsets["squeezenet_pt"]

    def test_model_blob_readable_from_heap(self, shells):
        _, victim_shell = shells
        process = victim_shell.run(["./resnet50_pt"])
        model = build_model("resnet50_pt", input_hw=INPUT_HW)
        runner = DpuRunner(process, victim_shell.kernel.dpu, model)
        blob = process.heap_arena.read(
            runner.model_blob_address, len(model.serialize())
        )
        assert blob == model.serialize()

    def test_runtime_strings_in_heap(self, shells):
        _, victim_shell = shells
        process = victim_shell.run(["./resnet50_pt"])
        model = build_model("resnet50_pt", input_hw=INPUT_HW)
        DpuRunner(process, victim_shell.kernel.dpu, model)
        heap = process.address_space.heap()
        data = process.address_space.read_virtual(heap.start, heap.length)
        assert b"/usr/lib/libvart-runner.so.3.5" in data

    def test_runner_requires_heap_arena(self, shells, kernel):
        _, victim_shell = shells
        process = victim_shell.run(["./x"])
        process.heap_arena = None
        with pytest.raises(ValueError):
            DpuRunner(process, kernel.dpu, build_model("resnet50_pt", INPUT_HW))


class TestInference:
    def test_run_returns_scores(self, victim_app, test_image):
        run = victim_app.launch("resnet50_pt", image=test_image)
        assert run.result is not None
        assert len(run.result.scores) == 100
        assert 0 <= run.result.top_class < 100

    def test_wrong_image_size_rejected(self, victim_app):
        run = victim_app.launch("resnet50_pt", infer=False)
        with pytest.raises(ValueError):
            run.infer(Image.test_pattern(16, 16))

    def test_image_bytes_land_in_heap(self, victim_app, test_image):
        run = victim_app.launch("resnet50_pt", image=test_image)
        recovered = run.process.heap_arena.read(
            run.runner.input_address, test_image.nbytes
        )
        assert recovered == test_image.to_raw_rgb()

    def test_inference_via_dpu_updates_stats(self, victim_app, test_image):
        kernel = victim_app._shell.kernel
        jobs_before = kernel.dpu.stats.jobs_completed
        victim_app.launch("resnet50_pt", image=test_image)
        assert kernel.dpu.stats.jobs_completed == jobs_before + 1

    def test_top_k_ordering(self, victim_app, test_image):
        run = victim_app.launch("resnet50_pt", image=test_image)
        top = run.result.top_k(5)
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        assert top[0][0] == run.result.top_class

    def test_repeated_inference_allowed(self, victim_app, test_image):
        run = victim_app.launch("resnet50_pt", image=test_image)
        second = run.infer(Image.test_pattern(INPUT_HW, INPUT_HW, seed=9))
        assert run.runner.runs_completed == 2
        assert second is run.result

    def test_dead_process_cannot_infer(self, victim_app, test_image):
        run = victim_app.launch("resnet50_pt", image=test_image)
        run.terminate()
        from repro.errors import ProcessStateError

        with pytest.raises(ProcessStateError):
            run.infer(test_image)


class TestVictimLifecycle:
    def test_launch_shows_in_ps(self, shells, victim_app):
        attacker_shell, _ = shells
        run = victim_app.launch("resnet50_pt")
        assert str(run.pid) in attacker_shell.ps_ef()
        assert run.alive

    def test_cmdline_contains_install_path(self, victim_app):
        run = victim_app.launch("resnet50_pt")
        assert (
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel"
            in run.process.command
        )

    def test_terminate_removes_pid(self, victim_app):
        run = victim_app.launch("resnet50_pt")
        run.terminate()
        assert not run.alive

    def test_default_image_used_when_none_given(self, victim_app):
        run = victim_app.launch("resnet50_pt")
        assert run.result is not None

    def test_launch_without_inference(self, victim_app):
        run = victim_app.launch("resnet50_pt", infer=False)
        assert run.result is None
