"""Tests for artifact persistence (PPM, hexdump log) and warm reboots."""

import numpy as np
import pytest

from repro.attack.pipeline import MemoryScrapingAttack
from repro.errors import ImageFormatError
from repro.evaluation.scenarios import BoardSession, warm_reboot
from repro.vitis.image import Image

INPUT_HW = 32


class TestPpm:
    def test_roundtrip(self):
        image = Image.test_pattern(17, 9, seed=5)
        rebuilt = Image.from_ppm(image.to_ppm())
        assert np.array_equal(rebuilt.pixels, image.pixels)

    def test_header_format(self):
        ppm = Image.solid(4, 2, (1, 2, 3)).to_ppm()
        assert ppm.startswith(b"P6\n4 2\n255\n")
        assert len(ppm) == len(b"P6\n4 2\n255\n") + 24

    def test_comments_tolerated(self):
        image = Image.solid(2, 2, (9, 9, 9))
        ppm = image.to_ppm().replace(b"P6\n", b"P6\n# a comment\n", 1)
        assert Image.from_ppm(ppm).pixel_match_rate(image) == 1.0

    def test_bad_magic_rejected(self):
        with pytest.raises(ImageFormatError):
            Image.from_ppm(b"P3\n2 2\n255\n" + b"\x00" * 12)

    def test_bad_maxval_rejected(self):
        with pytest.raises(ImageFormatError):
            Image.from_ppm(b"P6\n2 2\n65535\n" + b"\x00" * 24)

    def test_truncated_header_rejected(self):
        with pytest.raises(ImageFormatError):
            Image.from_ppm(b"P6\n2")


class TestArtifactPersistence:
    def test_save_artifacts_writes_paper_files(self, tmp_path):
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7).corrupted(0.2)
        run = session.victim_application().launch("resnet50_pt", image=secret)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)

        written = report.save_artifacts(str(tmp_path))
        names = sorted(p.rsplit("/", 1)[-1] for p in written)
        pid = report.sighting.pid
        assert f"{pid}_hexdump.log" in names  # the paper's grep target
        assert f"{pid}_heap.bin" in names
        assert f"{pid}_reconstructed.ppm" in names
        assert "attack_report.txt" in names

        # The hexdump log greps exactly like the paper's Fig. 11.
        log_text = (tmp_path / f"{pid}_hexdump.log").read_text()
        assert any("resnet50" in line for line in log_text.splitlines())

        # The PPM round-trips to the victim's input.
        recovered = Image.from_ppm(
            (tmp_path / f"{pid}_reconstructed.ppm").read_bytes()
        )
        assert recovered.pixel_match_rate(secret) == 1.0

    def test_dump_binary_matches_scrape(self, tmp_path):
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        run = session.victim_application().launch("resnet50_pt")
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
        report.save_artifacts(str(tmp_path))
        blob = (tmp_path / f"{report.sighting.pid}_heap.bin").read_bytes()
        assert blob == report.dump.data


class TestWarmReboot:
    def test_residue_survives_warm_reboot(self):
        """A reboot does not save the victim: DDR keeps its charge."""
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=31)
        run = session.victim_application().launch("resnet50_pt", image=secret)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        attack.observe_victim("resnet50_pt")
        harvested = attack.harvest_addresses()
        run.terminate()

        rebooted = warm_reboot(session)
        # Post-reboot, the old translations still point at live residue.
        from repro.attack.extraction import MemoryScraper

        dump = MemoryScraper(
            rebooted.attacker_shell.devmem_tool, rebooted.attacker_shell.user
        ).scrape(harvested)
        profile = profiles.get("resnet50_pt")
        recovered = Image.from_raw_rgb(
            dump.data[
                profile.image_offset : profile.image_offset + profile.image_nbytes
            ],
            INPUT_HW,
            INPUT_HW,
        )
        assert recovered.pixel_match_rate(secret) == 1.0

    def test_scrub_on_boot_clears_residue(self):
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        run = session.victim_application().launch("resnet50_pt")
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        attack.observe_victim("resnet50_pt")
        harvested = attack.harvest_addresses()
        run.terminate()

        rebooted = warm_reboot(session, scrub_on_boot=True)
        from repro.attack.extraction import MemoryScraper

        dump = MemoryScraper(
            rebooted.attacker_shell.devmem_tool, rebooted.attacker_shell.user
        ).scrape(harvested)
        assert dump.data == b"\x00" * dump.nbytes

    def test_rebooted_board_is_fully_functional(self):
        """The attack replays end-to-end on the rebooted OS."""
        session = BoardSession.boot(input_hw=INPUT_HW)
        rebooted = warm_reboot(session)
        from repro.evaluation.scenarios import run_paper_attack

        outcome = run_paper_attack(rebooted)
        assert outcome.model_identified_correctly
        assert outcome.image_recovered_exactly

    def test_layout_reproduces_across_reboots(self):
        """Deterministic allocation: same physical layout every boot."""
        first = BoardSession.boot(input_hw=INPUT_HW)
        run_a = first.victim_application().launch("resnet50_pt", infer=False)
        frames_a = run_a.process.address_space.page_table.frames()
        run_a.terminate()

        rebooted = warm_reboot(first)
        run_b = rebooted.victim_application().launch("resnet50_pt", infer=False)
        frames_b = run_b.process.address_space.page_table.frames()
        assert frames_a == frames_b