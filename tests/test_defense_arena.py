"""The defense arena: profiles, hooks, leakage accounting, the matrix."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.defense import (
    DefenseConfig,
    DefenseMatrix,
    ScrapeDelayHook,
    XenPolicy,
    campaign_deployment,
    defense_profile,
    probe_weight_theft,
    run_defense_arena,
)
from repro.errors import PermissionDeniedError
from repro.evaluation.metrics import (
    leakage_reduction,
    nonzero_bytes,
    window_hit_rate,
)
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.sanitizer import SanitizePolicy
from repro.petalinux.users import User

SMALL = CampaignSpec(
    boards=2, victims=4, model_mix=("resnet50_pt",), wave_size=2, seed=7
)


# -- profiles -----------------------------------------------------------------


class TestDefenseProfiles:
    def test_elementary_profiles_resolve(self):
        assert defense_profile("none").sanitize_policy is SanitizePolicy.NONE
        assert (
            defense_profile("zero_on_free").sanitize_policy
            is SanitizePolicy.ZERO_ON_FREE
        )
        assert defense_profile("pinned_xen").xen is XenPolicy.PINNED
        assert defense_profile("aslr").physical_aslr

    def test_composition_merges_axes(self):
        combo = defense_profile("scrub_pool+pinned_xen")
        assert combo.name == "scrub_pool+pinned_xen"
        assert combo.sanitize_policy is SanitizePolicy.SCRUB_POOL
        assert combo.xen is XenPolicy.PINNED

    def test_full_is_every_axis(self):
        full = defense_profile("full")
        assert full.sanitize_policy is SanitizePolicy.ZERO_ON_FREE
        assert full.physical_aslr and full.virtual_aslr
        assert full.xen is XenPolicy.PINNED

    def test_conflicting_axes_refuse_to_compose(self):
        with pytest.raises(ValueError):
            defense_profile("zero_on_free+scrub_pool")
        with pytest.raises(ValueError):
            defense_profile("pinned_xen+passthrough_xen")

    def test_composition_keeps_owning_sides_tuning(self):
        # A custom scrub rate survives composition with a profile that
        # leaves the sanitize axis alone (either side), and the ASLR
        # seed follows the side that enables randomization.
        fast = DefenseConfig(
            name="fast",
            sanitize_policy=SanitizePolicy.SCRUB_POOL,
            scrub_rate_per_tick=4096,
        )
        assert fast.compose(defense_profile("pinned_xen")).scrub_rate_per_tick == 4096
        assert defense_profile("pinned_xen").compose(fast).scrub_rate_per_tick == 4096
        seeded = DefenseConfig(name="a42", virtual_aslr=True, aslr_seed=42)
        assert defense_profile("none").compose(seeded).aslr_seed == 42
        assert seeded.compose(defense_profile("none")).aslr_seed == 42

    def test_conflicting_tuning_refuses_to_compose(self):
        fast = DefenseConfig(
            name="fast",
            sanitize_policy=SanitizePolicy.SCRUB_POOL,
            scrub_rate_per_tick=4096,
        )
        with pytest.raises(ValueError, match="scrub rates"):
            fast.compose(defense_profile("scrub_pool"))
        seeded = DefenseConfig(name="a42", virtual_aslr=True, aslr_seed=42)
        with pytest.raises(ValueError, match="ASLR seeds"):
            seeded.compose(defense_profile("aslr"))

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown defense profile"):
            defense_profile("rowhammer_shield")

    def test_kernel_config_lowering(self):
        config = defense_profile("zero_on_free").kernel_config(SMALL)
        assert config.sanitize_policy is SanitizePolicy.ZERO_ON_FREE
        assert config.xen is None

        pinned = defense_profile("pinned_xen").kernel_config(SMALL)
        assert pinned.xen is not None
        assert not pinned.xen.dev_mem_passthrough
        # One domain for the attacker plus one per victim tenant.
        assert len(pinned.xen.domains) == 1 + SMALL.tenants_per_board

    def test_deployment_covers_attacker_and_tenants(self):
        deployment = campaign_deployment(
            (1002, 1101), dev_mem_passthrough=False, total_frames=0x80000
        )
        assert deployment.domain_of_user(User("attacker", 1001)) is not None
        assert deployment.domain_of_user(User("victim", 1002)) is not None
        assert deployment.domain_of_user(User("guest1", 1101)) is not None
        assert deployment.domain_of_user(User("outsider", 1500)) is None


# -- metrics ------------------------------------------------------------------


class TestLeakageMetrics:
    def test_nonzero_bytes(self):
        assert nonzero_bytes(b"\x00\x01\x00\xff") == 2
        assert nonzero_bytes(b"\x00" * 64) == 0
        assert nonzero_bytes(b"") == 0

    def test_leakage_reduction(self):
        assert leakage_reduction(100.0, 0.0) == 1.0
        assert leakage_reduction(100.0, 50.0) == 0.5
        assert leakage_reduction(0.0, 0.0) == 0.0
        assert leakage_reduction(10.0, 20.0) == -1.0
        with pytest.raises(ValueError):
            leakage_reduction(-1.0, 0.0)

    def test_window_hit_rate(self):
        assert window_hit_rate([4096, 0, 12]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            window_hit_rate([])


# -- the hooks ----------------------------------------------------------------


class TestDefenseHooks:
    def test_scrape_delay_hook_rejects_negative(self):
        with pytest.raises(ValueError):
            ScrapeDelayHook(-1)

    def test_teardown_hook_fires_per_wave(self):
        ticks_seen = []
        report = run_campaign(
            SMALL, teardown_hook=lambda kernel: ticks_seen.append(kernel)
        )
        # 2 boards x 1 wave each.
        assert len(ticks_seen) == 2
        assert report.success_rate == 1.0

    def test_outcomes_carry_residue_and_teardown_stats(self):
        report = run_campaign(SMALL)
        for outcome in report.outcomes:
            assert outcome.residue_nbytes > 0
            assert outcome.residue_nbytes <= outcome.nbytes
            assert outcome.teardown_seconds > 0.0
            assert outcome.frames_scrubbed_sync == 0

    def test_zero_on_free_kernel_scrubs_at_teardown(self):
        config = defense_profile("zero_on_free").kernel_config(SMALL)
        report = run_campaign(SMALL, kernel_config=config)
        assert all(o.frames_scrubbed_sync > 0 for o in report.outcomes)
        assert all(o.residue_nbytes == 0 for o in report.outcomes)

    def test_failed_victims_still_charge_teardown_cost(self):
        # A profile that kills the attack at step 1-2 (pagemap locked)
        # still terminates — and scrubs — every victim; the failed
        # outcomes must carry that overhead, not zeros.
        from repro.petalinux.kernel import KernelConfig

        config = KernelConfig(
            pagemap_world_readable=False,
            sanitize_policy=SanitizePolicy.ZERO_ON_FREE,
        )
        report = run_campaign(SMALL, kernel_config=config)
        assert report.success_rate == 0.0
        for outcome in report.outcomes:
            assert outcome.failed_step == "step 1-2 (observe/harvest)"
            assert outcome.frames_scrubbed_sync > 0
            assert outcome.teardown_seconds > 0.0


# -- the arena ----------------------------------------------------------------


class TestDefenseArena:
    @pytest.fixture(scope="class")
    def matrix(self) -> DefenseMatrix:
        return run_defense_arena(
            SMALL,
            profiles=("none", "zero_on_free", "aslr", "pinned_xen"),
            scrape_delay_ticks=2,
            weight_theft=False,
        )

    def test_none_reproduces_campaign_baseline(self, matrix):
        baseline = run_campaign(SMALL)
        row = matrix.row("none")
        assert row.success_rate == baseline.success_rate == 1.0
        assert row.window_hit_rate == 1.0
        assert row.residue_bytes > 0

    def test_zero_on_free_recovers_nothing(self, matrix):
        row = matrix.row("zero_on_free")
        assert row.residue_bytes == 0
        assert row.success_rate == 0.0
        assert row.window_hit_rate == 0.0
        # The cost shows up where it belongs: synchronous teardown.
        assert row.frames_scrubbed_sync > 0
        assert matrix.leakage_reduction_of("zero_on_free") == 1.0

    def test_aslr_alone_stops_nothing(self, matrix):
        # The pagemap-assisted paper attack reads the slid layout
        # straight from procfs — the arena reproduces the finding that
        # randomization alone is not a defense.
        assert matrix.row("aslr").success_rate == 1.0

    def test_pinned_xen_blocks_extraction(self, matrix):
        row = matrix.row("pinned_xen")
        assert row.success_rate == 0.0
        assert row.residue_bytes == 0

    def test_unknown_row_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.row("no_such_profile")

    def test_render_lists_every_profile(self, matrix):
        text = matrix.render()
        markdown = matrix.render_markdown()
        for row in matrix.rows:
            assert row.profile in text
            assert f"| {row.profile} |" in markdown

    def test_json_round_trip(self, matrix):
        rebuilt = DefenseMatrix.from_json(matrix.to_json())
        assert rebuilt.spec == matrix.spec
        assert rebuilt.scrape_delay_ticks == matrix.scrape_delay_ticks
        assert rebuilt.rows == matrix.rows
        assert rebuilt.render() == matrix.render()

    def test_duplicate_profiles_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_defense_arena(SMALL, profiles=("none", "none"))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="no profiles"):
            run_defense_arena(SMALL, profiles=())


class TestDegenerateRows:
    """Zero-victim rows and non-finite rates stay explicit, not NaN."""

    @staticmethod
    def _row(**overrides) -> "DefenseRow":
        from repro.defense import DefenseRow

        fields = dict(
            profile="none",
            defenses="no countermeasures",
            victims=0,
            success_rate=0.0,
            identification_rate=0.0,
            image_recovery_rate=0.0,
            residue_bytes=0,
            bytes_scraped=0,
            window_hit_rate=0.0,
            weight_theft_match=None,
            teardown_seconds=0.0,
            frames_scrubbed_sync=0,
            frames_scrubbed_async=0,
            scrub_backlog=0,
        )
        fields.update(overrides)
        return DefenseRow(wall_seconds=0.0, **fields)

    def test_zero_victim_summarize_run_defines_every_rate(self):
        from repro.campaign.report import CampaignReport
        from repro.defense import ScrapeDelayHook, defense_profile
        from repro.defense.arena import summarize_run

        report = CampaignReport(spec=SMALL, outcomes=[], wall_seconds=0.0)
        row = summarize_run(
            defense_profile("none"), report, ScrapeDelayHook(0), None
        )
        assert row.victims == 0
        assert row.window_hit_rate == 0.0
        assert row.success_rate == 0.0
        assert row.residue_fraction == 0.0

    def test_non_finite_rates_survive_json_round_trip(self):
        matrix = DefenseMatrix(
            spec=SMALL,
            scrape_delay_ticks=2,
            rows=[
                self._row(
                    window_hit_rate=float("nan"),
                    weight_theft_match=float("inf"),
                    teardown_seconds=float("-inf"),
                )
            ],
        )
        text = matrix.to_json()
        # Valid JSON all the way: no bare NaN/Infinity tokens (which
        # only Python's own parser would accept back).
        import json
        import math

        json.loads(text)
        assert "NaN" not in text.replace('"NaN"', "")
        rebuilt = DefenseMatrix.from_json(text)
        row = rebuilt.rows[0]
        assert math.isnan(row.window_hit_rate)
        assert row.weight_theft_match == float("inf")
        assert row.teardown_seconds == float("-inf")

    def test_non_finite_rates_render_as_absent(self):
        matrix = DefenseMatrix(
            spec=SMALL,
            scrape_delay_ticks=2,
            rows=[
                self._row(
                    window_hit_rate=float("nan"),
                    teardown_seconds=float("inf"),
                )
            ],
        )
        for rendered in (matrix.render(), matrix.render_markdown()):
            assert "nan" not in rendered.lower()
            assert "inf" not in rendered.lower()
            assert "-" in rendered


class TestScrubPoolWindow:
    def test_leakage_shrinks_monotonically_with_scrub_rate(self):
        spec = CampaignSpec(
            boards=1,
            victims=2,
            model_mix=("resnet50_pt",),
            wave_size=2,
            seed=3,
        )
        rates = (4, 64, 4096)
        matrix = run_defense_arena(
            spec,
            profiles=[
                DefenseConfig(
                    name=f"scrub_rate_{rate}",
                    sanitize_policy=SanitizePolicy.SCRUB_POOL,
                    scrub_rate_per_tick=rate,
                )
                for rate in rates
            ],
            scrape_delay_ticks=2,
            weight_theft=False,
        )
        residues = [matrix.row(f"scrub_rate_{rate}").residue_bytes for rate in rates]
        assert residues == sorted(residues, reverse=True)
        # A crawling daemon loses the race, a fast one wins it outright.
        assert residues[0] > 0
        assert residues[-1] == 0
        backlogs = [
            matrix.row(f"scrub_rate_{rate}").scrub_backlog for rate in rates
        ]
        assert backlogs == sorted(backlogs, reverse=True)


class TestPinnedXenSemantics:
    def test_cross_domain_devmem_read_raises(self):
        from repro.attack.addressing import AddressHarvester

        config = defense_profile("pinned_xen").kernel_config(SMALL)
        session = BoardSession.boot(config=config)
        run = session.victim_application().launch("resnet50_pt")
        # Steps 1-2 still work (procfs/pagemap stay world-readable)...
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        entry = next(e for e in harvested.translations if e.present)
        # ...but the step-3 read crosses into the victim's domain.
        with pytest.raises(PermissionDeniedError, match="Xen"):
            session.attacker_shell.devmem_tool.read(
                entry.physical_page_address, session.attacker_shell.user
            )

    def test_campaign_outcome_records_blocked_extraction(self):
        config = defense_profile("pinned_xen").kernel_config(SMALL)
        report = run_campaign(SMALL, kernel_config=config)
        assert report.success_rate == 0.0
        for outcome in report.outcomes:
            assert outcome.failed_step == "step 3 (extract)"
            assert "Xen" in outcome.detail

    def test_passthrough_xen_defends_nothing(self):
        config = defense_profile("passthrough_xen").kernel_config(SMALL)
        report = run_campaign(SMALL, kernel_config=config)
        assert report.success_rate == 1.0


class TestWeightTheftProbe:
    def test_vulnerable_default_leaks_private_weights(self):
        match = probe_weight_theft(defense_profile("none").kernel_config(SMALL))
        assert match == 1.0

    def test_zero_on_free_protects_private_weights(self):
        match = probe_weight_theft(
            defense_profile("zero_on_free").kernel_config(SMALL)
        )
        assert match < 0.5

    def test_pinned_xen_protects_private_weights(self):
        match = probe_weight_theft(
            defense_profile("pinned_xen").kernel_config(SMALL)
        )
        assert match == 0.0


# -- the docs gate ------------------------------------------------------------


class TestDocsCheck:
    """The static half of the docs gate, in-process.

    The doctest half (``failing_doctests``) is exercised by the
    ``make test`` prerequisite on ``docs-check`` — not repeated here,
    so the suite does not run every documented campaign twice.
    """

    @pytest.fixture(scope="class")
    def docs_check(self):
        import importlib.util

        repo_root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "docs_check", repo_root / "tools" / "docs_check.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_static_docs_invariants_hold(self, docs_check):
        assert docs_check.missing_docstrings() == []
        assert docs_check.missing_from_package_map() == []
        assert docs_check.stale_package_map_entries() == []
        assert docs_check.broken_links() == []
