"""Tests for weight extraction from scraped dumps."""

import numpy as np
import pytest

from repro.attack.addressing import AddressHarvester
from repro.attack.extraction import MemoryScraper
from repro.attack.weights import WeightExtractor, profile_weight_layout
from repro.errors import ReconstructionError
from repro.evaluation.scenarios import BoardSession
from repro.vitis.zoo import build_model, fine_tune

INPUT_HW = 32


def _scrape_victim_running(session, model_name, model=None):
    run = session.victim_application().launch(model_name, model=model)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    scraper = MemoryScraper(
        session.attacker_shell.devmem_tool, session.attacker_shell.user
    )
    return scraper.scrape(harvested)


class TestFineTune:
    def test_same_architecture_different_weights(self):
        stock = build_model("resnet50_pt", input_hw=INPUT_HW)
        tuned = fine_tune(stock, seed=42)
        assert tuned.name == stock.name
        assert len(tuned.subgraph.layers) == len(stock.subgraph.layers)
        for tuned_layer, stock_layer in zip(
            tuned.subgraph.layers, stock.subgraph.layers
        ):
            if stock_layer.weights is None:
                continue
            assert tuned_layer.weights.shape == stock_layer.weights.shape
            assert not np.array_equal(tuned_layer.weights, stock_layer.weights)

    def test_deterministic_in_seed(self):
        stock = build_model("resnet50_pt", input_hw=INPUT_HW)
        assert fine_tune(stock, 1).serialize() == fine_tune(stock, 1).serialize()
        assert fine_tune(stock, 1).serialize() != fine_tune(stock, 2).serialize()

    def test_serialization_roundtrip(self):
        from repro.vitis.xmodel import XModel

        tuned = fine_tune(build_model("squeezenet_pt", input_hw=INPUT_HW), 7)
        assert XModel.parse(tuned.serialize()) == tuned


class TestWeightLayoutProfile:
    def test_profiles_every_weighted_layer(self, session):
        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        stock = build_model("resnet50_pt", input_hw=INPUT_HW)
        weighted = [
            layer for layer in stock.subgraph.layers if layer.weight_bytes()
        ]
        assert len(layout.buffers) == len(weighted)
        assert layout.total_nbytes() == stock.weight_nbytes()

    def test_offsets_are_the_unpacked_buffers(self, session):
        """Offsets must point past the serialized xmodel blob."""
        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        stock = build_model("resnet50_pt", input_hw=INPUT_HW)
        blob_size = len(stock.serialize())
        # The model file lands early in the heap; unpacked buffers after.
        for buffer in layout.buffers:
            assert buffer.heap_offset > blob_size


class TestWeightExtraction:
    def test_stock_weights_recovered_exactly(self, session):
        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        dump = _scrape_victim_running(session, "resnet50_pt")
        extracted = WeightExtractor(layout).extract(dump)
        stock = build_model("resnet50_pt", input_hw=INPUT_HW)
        assert extracted.match_fraction(stock) == 1.0

    def test_fine_tuned_private_weights_recovered(self, session):
        """The interesting threat: victim runs private weights."""
        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        stock = build_model("resnet50_pt", input_hw=INPUT_HW)
        private = fine_tune(stock, seed=1234)
        dump = _scrape_victim_running(session, "resnet50_pt", model=private)
        extracted = WeightExtractor(layout).extract(dump)
        # Bit-exact against the victim's private model...
        assert extracted.match_fraction(private) == 1.0
        # ...and clearly NOT the stock library weights.
        assert extracted.match_fraction(stock) < 0.5

    def test_extracted_shapes_match_architecture(self, session):
        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        dump = _scrape_victim_running(session, "resnet50_pt")
        extracted = WeightExtractor(layout).extract(dump)
        arrays = extracted.layer("conv1")
        assert arrays[0].shape == (7, 7, 3, 12)
        assert arrays[0].dtype == np.int8

    def test_resblock_buffers_split_into_two_kernels(self, session):
        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        dump = _scrape_victim_running(session, "resnet50_pt")
        extracted = WeightExtractor(layout).extract(dump)
        blocks = extracted.layer("layer1/block0")
        assert len(blocks) == 2

    def test_truncated_dump_rejected(self, session):
        from repro.attack.extraction import ScrapedDump

        layout = profile_weight_layout(
            session.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
        )
        tiny = ScrapedDump(
            pid=1, heap_start=0, data=b"\x00" * 64,
            pages_read=1, pages_skipped=0, devmem_reads=16,
        )
        with pytest.raises(ReconstructionError):
            WeightExtractor(layout).extract(tiny)

    def test_match_fraction_requires_comparable_layers(self):
        from repro.attack.extraction import ScrapedDump
        from repro.attack.weights import ExtractedWeights

        empty = ExtractedWeights(model_name="x", arrays={})
        with pytest.raises(ReconstructionError):
            empty.match_fraction(build_model("resnet50_pt", input_hw=INPUT_HW))
