"""Unit tests for repro.utils.units."""

import pytest

from repro.utils.units import format_size, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("4096") == 4096

    def test_integer_passthrough(self):
        assert parse_size(123) == 123

    def test_binary_units(self):
        assert parse_size("1KiB") == 1024
        assert parse_size("2MiB") == 2 * 1024**2
        assert parse_size("2GiB") == 2 * 1024**3

    def test_short_units(self):
        assert parse_size("512K") == 512 * 1024
        assert parse_size("1G") == 1024**3

    def test_case_insensitive(self):
        assert parse_size("1gib") == 1024**3

    def test_fractional_exact(self):
        assert parse_size("1.5KiB") == 1536

    def test_fractional_inexact_rejected(self):
        with pytest.raises(ValueError):
            parse_size("1.0001KiB")

    def test_whitespace_tolerated(self):
        assert parse_size(" 2 GiB ") == 2 * 1024**3

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("lots")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            parse_size("5parsecs")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512B"

    def test_kib(self):
        assert format_size(4096) == "4.0KiB"

    def test_gib(self):
        assert format_size(2 * 1024**3) == "2.0GiB"

    def test_zero(self):
        assert format_size(0) == "0B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-5)

    def test_roundtrip_with_parse(self):
        assert parse_size(format_size(3 * 1024**2)) == 3 * 1024**2
