"""Unit tests for the Zynq UltraScale+ address map."""

import pytest

from repro.errors import BusError
from repro.hw.memmap import (
    DDR_HIGH_BASE,
    DDR_LOW_SIZE,
    OCM_BASE,
    AddressMap,
    Region,
    zynqmp_address_map,
)


class TestRegion:
    def test_contains_boundaries(self):
        region = Region("R", 0x1000, 0x1000)
        assert region.contains(0x1000)
        assert region.contains(0x1FFF)
        assert not region.contains(0x2000)
        assert not region.contains(0xFFF)

    def test_offset_of(self):
        region = Region("R", 0x1000, 0x1000)
        assert region.offset_of(0x1800) == 0x800

    def test_end(self):
        assert Region("R", 0, 0x100).end == 0x100


class TestAddressMap:
    def test_overlapping_regions_rejected(self):
        with pytest.raises(ValueError):
            AddressMap([Region("A", 0, 0x2000), Region("B", 0x1000, 0x2000)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AddressMap([Region("A", 0, 0x1000), Region("A", 0x2000, 0x1000)])

    def test_decode_hits_right_region(self):
        amap = AddressMap([Region("A", 0, 0x1000), Region("B", 0x2000, 0x1000)])
        region, offset = amap.decode(0x2010)
        assert region.name == "B"
        assert offset == 0x10

    def test_decode_hole_raises_bus_error(self):
        amap = AddressMap([Region("A", 0, 0x1000)])
        with pytest.raises(BusError) as excinfo:
            amap.decode(0x5000)
        assert excinfo.value.address == 0x5000

    def test_region_lookup_by_name(self):
        amap = AddressMap([Region("OCM", OCM_BASE, 0x1000)])
        assert amap.region("OCM").base == OCM_BASE

    def test_unknown_region_name(self):
        amap = AddressMap([Region("A", 0, 0x1000)])
        with pytest.raises(KeyError):
            amap.region("NOPE")

    def test_regions_sorted(self):
        amap = AddressMap([Region("B", 0x2000, 0x1000), Region("A", 0, 0x1000)])
        assert [region.name for region in amap.regions] == ["A", "B"]

    def test_render_mentions_all_regions(self):
        amap = zynqmp_address_map(2 * 1024**3)
        rendered = amap.render()
        for name in ("DDR_LOW", "PL_LPD", "QSPI", "OCM"):
            assert name in rendered


class TestZynqMpMap:
    def test_2gib_board_has_no_ddr_high(self):
        amap = zynqmp_address_map(2 * 1024**3)
        with pytest.raises(KeyError):
            amap.region("DDR_HIGH")

    def test_4gib_board_splits_across_windows(self):
        amap = zynqmp_address_map(4 * 1024**3)
        assert amap.region("DDR_LOW").size == DDR_LOW_SIZE
        assert amap.region("DDR_HIGH").base == DDR_HIGH_BASE
        assert amap.region("DDR_HIGH").size == 2 * 1024**3

    def test_small_board_ddr_low_only(self):
        amap = zynqmp_address_map(512 * 1024**2)
        assert amap.region("DDR_LOW").size == 512 * 1024**2

    def test_paper_devmem_address_is_ddr_low(self):
        # 0x61c6d730 is the physical address in the paper's Fig. 8.
        amap = zynqmp_address_map(2 * 1024**3)
        region, offset = amap.decode(0x61C6D730)
        assert region.name == "DDR_LOW"
        assert offset == 0x61C6D730

    def test_pl_region_is_not_backed(self):
        amap = zynqmp_address_map(2 * 1024**3)
        assert not amap.region("PL_LPD").backed

    def test_zero_dram_rejected(self):
        with pytest.raises(ValueError):
            zynqmp_address_map(0)

    def test_oversized_dram_rejected(self):
        with pytest.raises(ValueError):
            zynqmp_address_map(64 * 1024**3)
