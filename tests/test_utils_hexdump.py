"""Unit tests for repro.utils.hexdump — the paper's hexdump format."""

import pytest

from repro.utils.hexdump import (
    HexDump,
    format_devmem_words,
    hexdump_canonical,
    hexdump_paper_rows,
    parse_paper_row,
)


class TestPaperRows:
    def test_paper_fig11_layout(self):
        # The exact bytes behind the paper's Fig. 11 first row:
        # "6c73 2f72 6573 6e65 7435 305f 7074 2f72  ls/resnet50_pt/r"
        data = b"ls/resnet50_pt/r"
        row = hexdump_paper_rows(data)[0]
        assert row == "6c73 2f72 6573 6e65 7435 305f 7074 2f72 ls/resnet50_pt/r"

    def test_groups_are_memory_order_byte_pairs(self):
        row = hexdump_paper_rows(b"\x01\x02" + b"\x00" * 14)[0]
        assert row.startswith("0102 ")

    def test_nonprintable_bytes_become_dots(self):
        row = hexdump_paper_rows(b"\x00\x1f\x7fA" + b"B" * 12)[0]
        assert row.endswith("...ABBBBBBBBBBBB")

    def test_partial_row_pads_hex_not_ascii(self):
        row = hexdump_paper_rows(b"AB")[0]
        assert row.split()[0] == "4142"
        assert row.endswith(" AB")

    def test_empty_data_gives_no_rows(self):
        assert hexdump_paper_rows(b"") == []

    def test_row_count(self):
        assert len(hexdump_paper_rows(b"\x00" * 160)) == 10


class TestParsePaperRow:
    def test_roundtrip(self):
        data = bytes(range(16))
        assert parse_paper_row(hexdump_paper_rows(data)[0]) == data

    def test_roundtrip_with_text(self):
        data = b"resnet50_pt.xmod"
        assert parse_paper_row(hexdump_paper_rows(data)[0]) == data

    def test_too_few_groups_rejected(self):
        with pytest.raises(ValueError):
            parse_paper_row("6c73 2f72")

    def test_malformed_group_rejected(self):
        with pytest.raises(ValueError):
            parse_paper_row("zzzz " * 8)


class TestCanonical:
    def test_offset_column(self):
        rows = hexdump_canonical(b"\x00" * 32)
        assert rows[0].startswith("00000000  ")
        assert rows[1].startswith("00000010  ")

    def test_base_offset_applied(self):
        rows = hexdump_canonical(b"\x00" * 16, base_offset=0x1000)
        assert rows[0].startswith("00001000")

    def test_ascii_column_bracketed(self):
        row = hexdump_canonical(b"A" * 16)[0]
        assert row.endswith("|AAAAAAAAAAAAAAAA|")


class TestFormatDevmemWords:
    def test_eight_nibbles_per_row(self):
        text = format_devmem_words([0xF7F5F8FD, 0])
        assert text.splitlines() == ["f7f5f8fd", "00000000"]

    def test_masks_to_32_bits(self):
        assert format_devmem_words([0x1_0000_0001]) == "00000001"


class TestHexDumpGrep:
    def test_grep_finds_model_name(self):
        dump = HexDump(b"\x00" * 64 + b"/models/resnet50_pt/" + b"\x00" * 64)
        hits = dump.grep("resnet50")
        assert hits
        assert any("resnet50" in hit.row_text for hit in hits)

    def test_grep_reports_row_numbers(self):
        dump = HexDump(b"\x00" * 32 + b"needle" + b"\x00" * 26)
        hits = dump.grep("needle")
        assert hits[0].row_number == 2

    def test_grep_match_spanning_rows(self):
        # Place the needle across a 16-byte boundary.
        dump = HexDump(b"\x00" * 12 + b"longneedle" + b"\x00" * 10)
        rows = {hit.row_number for hit in dump.grep("longneedle")}
        assert rows == {0, 1}

    def test_grep_absent_pattern(self):
        assert HexDump(b"\x00" * 64).grep("ghost") == []

    def test_grep_empty_needle(self):
        assert HexDump(b"abc").grep("") == []

    def test_grep_results_sorted_and_unique(self):
        dump = HexDump(b"spamspamspam" + b"\x00" * 20)
        rows = [hit.row_number for hit in dump.grep("spam")]
        assert rows == sorted(set(rows))


class TestHexDumpMarkers:
    def test_first_row_of(self):
        dump = HexDump(b"\x00" * 48 + b"\x55" * 16)
        assert dump.first_row_of(b"\x55" * 16) == 3

    def test_first_row_of_absent(self):
        assert HexDump(b"\x00" * 32).first_row_of(b"\xff") == -1

    def test_marker_run_rows_finds_solid_rows(self):
        data = b"\x00" * 16 + b"\xff" * 48 + b"\x00" * 16
        rows = HexDump(data).marker_run_rows(0xFFFFFFFF)
        assert rows == [1, 2, 3]

    def test_marker_run_rows_filters_short_runs(self):
        data = b"\xff" * 16 + b"\x00" * 16 + b"\xff" * 32
        rows = HexDump(data).marker_run_rows(0xFFFFFFFF, minimum_rows=2)
        assert rows == [2, 3]

    def test_marker_run_rows_minimum_one_keeps_singles(self):
        data = b"\xff" * 16 + b"\x00" * 16
        assert HexDump(data).marker_run_rows(0xFFFFFFFF, minimum_rows=1) == [0]

    def test_partial_marker_row_not_matched(self):
        data = b"\xff" * 15 + b"\x00" + b"\xff" * 16
        assert HexDump(data).marker_run_rows(0xFFFFFFFF, minimum_rows=1) == [1]

    def test_len_and_data(self):
        dump = HexDump(b"abc")
        assert len(dump) == 3
        assert dump.data == b"abc"

    def test_rows_cached(self):
        dump = HexDump(b"A" * 32)
        assert dump.rows() is dump.rows()
