"""Error-hierarchy guarantees and failure-injection edge cases."""

import pytest

from repro import errors
from repro.attack.addressing import HarvestedRange, PageTranslation
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper
from repro.attack.pipeline import AttackReport
from repro.mmu.paging import PAGE_SIZE
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image

INPUT_HW = 32


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        error_classes = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        for error_class in error_classes:
            assert issubclass(error_class, errors.ReproError), error_class

    def test_layer_bases(self):
        assert issubclass(errors.BusError, errors.HardwareError)
        assert issubclass(errors.TranslationFault, errors.MmuError)
        assert issubclass(errors.NoSuchProcessError, errors.OsError)
        assert issubclass(errors.PermissionDeniedError, errors.OsError)
        assert issubclass(errors.XModelFormatError, errors.VitisError)
        assert issubclass(errors.ExtractionError, errors.AttackError)

    def test_bus_error_carries_address(self):
        error = errors.BusError(0xF000_0000)
        assert error.address == 0xF000_0000
        assert "0xf0000000" in str(error)

    def test_translation_fault_carries_va_and_pid(self):
        error = errors.TranslationFault(0xDEAD_B000, pid=42)
        assert error.virtual_address == 0xDEAD_B000
        assert "42" in str(error)

    def test_no_such_process_carries_pid(self):
        assert errors.NoSuchProcessError(1391).pid == 1391

    def test_unknown_model_carries_name(self):
        assert errors.UnknownModelError("alexnet").name == "alexnet"

    def test_catching_the_base_class_works_across_layers(self):
        for error in (
            errors.BusError(0),
            errors.OutOfMemoryError("full"),
            errors.VictimNotFoundError("gone"),
        ):
            with pytest.raises(errors.ReproError):
                raise error


class TestAttackConfigValidation:
    def test_defaults_valid(self):
        config = AttackConfig()
        assert config.word_bits == 32
        assert not config.bulk_reads

    def test_bad_word_width_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(word_bits=24)

    def test_bad_poll_limit_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(poll_limit=0)

    def test_bad_string_length_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(string_min_length=0)

    def test_config_is_frozen(self):
        with pytest.raises(AttributeError):
            AttackConfig().word_bits = 64


class TestNonPresentPageHandling:
    """Failure injection: harvest snapshots with holes."""

    def _synthetic_harvest(self, shells):
        """A real harvest with one translation flipped to non-present."""
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell, input_hw=INPUT_HW).launch(
            "resnet50_pt", image=Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        from repro.attack.addressing import AddressHarvester

        harvested = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        ).harvest(run.pid)
        run.terminate()
        holed = HarvestedRange(
            pid=harvested.pid,
            heap_start=harvested.heap_start,
            heap_end=harvested.heap_end,
            translations=[
                PageTranslation(t.virtual_page_address, 0, present=False)
                if index == 1
                else t
                for index, t in enumerate(harvested.translations)
            ],
        )
        return attacker_shell, holed

    def test_scrape_zero_fills_missing_pages(self, shells):
        attacker_shell, holed = self._synthetic_harvest(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        dump = scraper.scrape(holed)
        assert dump.pages_skipped == 1
        assert dump.nbytes == holed.length
        assert dump.data[PAGE_SIZE : 2 * PAGE_SIZE] == b"\x00" * PAGE_SIZE

    def test_offsets_stay_congruent_despite_holes(self, shells):
        """The profiled image offset must survive missing pages."""
        attacker_shell, holed = self._synthetic_harvest(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        dump = scraper.scrape(holed)
        assert dump.virtual_address_of(3 * PAGE_SIZE) == (
            holed.heap_start + 3 * PAGE_SIZE
        )

    def test_physical_of_refuses_non_present_page(self, shells):
        _, holed = self._synthetic_harvest(shells)
        missing_va = holed.translations[1].virtual_page_address
        with pytest.raises(errors.AddressHarvestError):
            holed.physical_of(missing_va)

    def test_all_absent_harvest_rejected_at_source(self, shells):
        attacker_shell, _ = shells
        from repro.attack.addressing import AddressHarvester

        harvester = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        )
        # init has no heap at all -> harvest error, not a silent empty.
        with pytest.raises(errors.AddressHarvestError):
            harvester.harvest(1)


class TestWordWidthVariants:
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_scrape_is_width_invariant(self, shells, word_bits):
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell, input_hw=INPUT_HW).launch(
            "resnet50_pt", image=Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        from repro.attack.addressing import AddressHarvester

        harvested = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        ).harvest(run.pid)
        ground_truth = run.process.address_space.read_virtual(
            harvested.heap_start, PAGE_SIZE
        )
        run.terminate()
        scraper = MemoryScraper(
            attacker_shell.devmem_tool,
            attacker_shell.user,
            AttackConfig(word_bits=word_bits),
        )
        dump = scraper.scrape(harvested)
        assert dump.data[:PAGE_SIZE] == ground_truth


class TestReportRendering:
    def test_render_with_failed_analysis(self, shells):
        """A report whose steps 4a/4b failed still renders cleanly."""
        attacker_shell, victim_shell = shells
        run = VictimApplication(victim_shell, input_hw=INPUT_HW).launch(
            "resnet50_pt", image=Image.test_pattern(INPUT_HW, INPUT_HW)
        )
        from repro.attack.addressing import AddressHarvester
        from repro.attack.polling import PidPoller

        poller = PidPoller(attacker_shell)
        sighting = poller.find_victim("resnet50_pt")
        harvested = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        ).harvest(sighting.pid)
        run.terminate()
        dump = MemoryScraper(
            attacker_shell.devmem_tool, attacker_shell.user
        ).scrape(harvested)
        report = AttackReport(
            sighting=sighting,
            harvested=harvested,
            termination_polls=1,
            dump=dump,
        )
        text = report.render()
        assert "identification FAILED" in text
        assert "reconstruction FAILED" in text
        assert not report.succeeded
