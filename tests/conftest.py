"""Shared fixtures: booted boards, shells, victims, profiles."""

from __future__ import annotations

import pytest

from repro.evaluation.scenarios import BoardSession
from repro.hw.soc import ZynqMpSoC
from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.shell import Shell
from repro.petalinux.users import default_terminals
from repro.vitis.image import Image

INPUT_HW = 32
"""Input edge used throughout the tests (small = fast)."""


@pytest.fixture
def soc() -> ZynqMpSoC:
    """A powered-up ZCU104 twin."""
    return ZynqMpSoC()


@pytest.fixture
def kernel(soc: ZynqMpSoC) -> PetaLinuxKernel:
    """A booted vulnerable-default kernel."""
    return PetaLinuxKernel(soc)


@pytest.fixture
def shells(kernel: PetaLinuxKernel) -> tuple[Shell, Shell]:
    """(attacker shell, victim shell) on the standard terminals."""
    attacker_terminal, victim_terminal = default_terminals()
    return Shell(kernel, attacker_terminal), Shell(kernel, victim_terminal)


@pytest.fixture
def session() -> BoardSession:
    """The standard two-terminal board session."""
    return BoardSession.boot(input_hw=INPUT_HW)


@pytest.fixture
def test_image() -> Image:
    """The deterministic stand-in for the Xilinx demo JPEG."""
    return Image.test_pattern(INPUT_HW, INPUT_HW, seed=7)
