"""Tests for the root filesystem and the XSDB debugger facade."""

import pytest

from repro.errors import PermissionDeniedError
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.rootfs import (
    FileNotFoundOsError,
    RootFs,
    install_vitis_ai,
    normalize_path,
)
from repro.petalinux.users import ROOT, User
from repro.petalinux.xsdb import XilinxSystemDebugger
from repro.vitis.xmodel import XModel
from repro.vitis.zoo import MODEL_NAMES, model_install_path

ALICE = User("alice", 1001)
BOB = User("bob", 1002)


class TestNormalizePath:
    def test_identity(self):
        assert normalize_path("/usr/share") == "/usr/share"

    def test_collapses_dots_and_slashes(self):
        assert normalize_path("/usr//share/./x/../y") == "/usr/share/y"

    def test_root(self):
        assert normalize_path("/") == "/"

    def test_parent_of_root_clamps(self):
        assert normalize_path("/../etc") == "/etc"

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            normalize_path("usr/share")


class TestRootFs:
    def test_write_read_roundtrip(self):
        fs = RootFs()
        fs.write_file("/etc/issue", b"PetaLinux 2022.2")
        assert fs.read_file("/etc/issue", ALICE) == b"PetaLinux 2022.2"

    def test_missing_file(self):
        with pytest.raises(FileNotFoundOsError):
            RootFs().read_file("/nope", ALICE)

    def test_owner_only_file_blocked_for_others(self):
        fs = RootFs()
        fs.write_file("/home/bob/secret", b"x", owner_uid=BOB.uid,
                      world_readable=False)
        assert fs.read_file("/home/bob/secret", BOB) == b"x"
        assert fs.read_file("/home/bob/secret", ROOT) == b"x"
        with pytest.raises(PermissionDeniedError):
            fs.read_file("/home/bob/secret", ALICE)

    def test_exists_and_is_dir(self):
        fs = RootFs()
        fs.write_file("/usr/share/models/a.xmodel", b"x")
        assert fs.exists("/usr/share/models/a.xmodel")
        assert fs.exists("/usr/share")
        assert fs.is_dir("/usr/share")
        assert not fs.is_dir("/usr/share/models/a.xmodel")
        assert not fs.exists("/var")

    def test_list_dir(self):
        fs = RootFs()
        fs.write_file("/models/a/a.xmodel", b"x")
        fs.write_file("/models/b/b.xmodel", b"y")
        assert fs.list_dir("/models") == ["a", "b"]
        assert fs.list_dir("/models/a") == ["a.xmodel"]

    def test_list_missing_dir(self):
        with pytest.raises(FileNotFoundOsError):
            RootFs().list_dir("/ghost")

    def test_overwrite_replaces(self):
        fs = RootFs()
        fs.write_file("/f", b"one")
        fs.write_file("/f", b"two")
        assert fs.read_file("/f", ALICE) == b"two"
        assert fs.file_count() == 1

    def test_chmod_world_bit(self):
        fs = RootFs()
        fs.write_file("/lib.so", b"x")
        fs.set_world_readable("/lib.so", False)
        with pytest.raises(PermissionDeniedError):
            fs.read_file("/lib.so", ALICE)

    def test_file_size(self):
        fs = RootFs()
        fs.write_file("/f", b"12345")
        assert fs.file_size("/f") == 5


class TestVitisInstallation:
    def test_installs_every_zoo_model(self):
        fs = RootFs()
        installed = install_vitis_ai(fs, input_hw=16)
        assert len(installed) == len(MODEL_NAMES)
        for name in MODEL_NAMES:
            blob = fs.read_file(model_install_path(name), ALICE)
            assert XModel.parse(blob).name == name

    def test_library_is_world_readable(self):
        """The adversary-access premise of paper §II."""
        fs = RootFs()
        install_vitis_ai(fs, input_hw=16)
        blob = fs.read_file(model_install_path("resnet50_pt"), ALICE)
        assert blob.startswith(b"XMOD")

    def test_session_boot_installs_library(self, session):
        path = model_install_path("resnet50_pt")
        blob = session.kernel.rootfs.read_file(
            path, session.attacker_shell.user
        )
        model = XModel.parse(blob)
        assert model.subgraph.input_height == session.input_hw

    def test_victim_app_loads_file_bytes_into_heap(self, session):
        """The heap blob IS the installed file — byte for byte."""
        run = session.victim_application().launch("resnet50_pt", infer=False)
        file_blob = session.kernel.rootfs.read_file(
            model_install_path("resnet50_pt"), session.victim_shell.user
        )
        heap_blob = run.process.heap_arena.read(
            run.runner.model_blob_address, len(file_blob)
        )
        assert heap_blob == file_blob


class TestXsdb:
    def test_targets_list_apu_cores(self, session):
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        listing = xsdb.render_targets()
        assert "Cortex-A53 #0" in listing
        assert "Cortex-A53 #3" in listing
        assert "ZCU104" in listing

    def test_mrd_reads_physical_memory(self, session):
        session.soc.write_word(0x6180_0000, 0xF7F5F8FD)
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        assert xsdb.mrd(0x6180_0000) == [0xF7F5F8FD]

    def test_mrd_render_format(self, session):
        session.soc.write_word(0x6180_0000, 0xDEADBEEF)
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        assert xsdb.render_mrd(0x6180_0000) == "61800000:   DEADBEEF"

    def test_mrd_count_rejected_nonpositive(self, session):
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        with pytest.raises(ValueError):
            xsdb.mrd(0x6180_0000, count=0)

    def test_mwr_roundtrip(self, session):
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        xsdb.mwr(0x6180_0010, 0x12345678)
        assert xsdb.mrd(0x6180_0010) == [0x12345678]

    def test_debugger_reads_cross_user_pagemap(self, session):
        """Contribution 2: pids, address spaces, pagemaps — cross-user."""
        run = session.victim_application().launch("resnet50_pt", infer=False)
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        assert run.pid in xsdb.pids()
        assert "[heap]" in xsdb.virtual_address_space(run.pid)
        heap = run.process.address_space.heap()
        physical = xsdb.translate(run.pid, heap.start + 0x40)
        assert physical is not None
        assert physical % 4096 == 0x40

    def test_debugger_reads_residue_after_termination(self, session):
        run = session.victim_application().launch("resnet50_pt", infer=False)
        address = run.process.heap_arena.allocate_and_write(b"XSDB SEES THIS")
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        physical = xsdb.translate(run.pid, address)
        run.terminate()
        words = xsdb.mrd(physical, count=4)
        recovered = b"".join(word.to_bytes(4, "little") for word in words)
        assert recovered.startswith(b"XSDB SEES THIS"[:14])

    def test_hardened_board_restricts_debugger_too(self):
        hardened = BoardSession.boot(config=KernelConfig().hardened())
        run = hardened.victim_application().launch("resnet50_pt", infer=False)
        xsdb = XilinxSystemDebugger(
            hardened.kernel, hardened.attacker_shell.user
        )
        with pytest.raises(PermissionDeniedError):
            xsdb.virtual_address_space(run.pid)
        with pytest.raises(PermissionDeniedError):
            xsdb.mrd(0x6180_0000)

    def test_translate_unmapped_returns_none(self, session):
        run = session.victim_application().launch("resnet50_pt", infer=False)
        xsdb = XilinxSystemDebugger(session.kernel, session.attacker_shell.user)
        assert xsdb.translate(run.pid, 0x1234_0000) is None
