"""Unit tests for the INT8 inference kernels."""

import numpy as np
import pytest

from repro.vitis.ops import (
    CompiledSubgraph,
    LayerSpec,
    conv2d_int8,
    fc_int8,
    global_avgpool_int8,
    maxpool2_int8,
    relu_int8,
    resblock_int8,
)


def _identity_conv(channels: int) -> np.ndarray:
    """3x3 conv weights that copy the input (centre tap = 1)."""
    weights = np.zeros((3, 3, channels, channels), dtype=np.int8)
    for channel in range(channels):
        weights[1, 1, channel, channel] = 1
    return weights


class TestConv2d:
    def test_identity_kernel_with_zero_shift(self):
        x = np.arange(-8, 8, dtype=np.int8).reshape(4, 4, 1)
        out = conv2d_int8(x, _identity_conv(1), stride=1, shift=0)
        assert np.array_equal(out, x)

    def test_same_padding_preserves_spatial_size(self):
        x = np.ones((7, 5, 2), dtype=np.int8)
        weights = np.ones((3, 3, 2, 4), dtype=np.int8)
        out = conv2d_int8(x, weights, stride=1, shift=0)
        assert out.shape == (7, 5, 4)

    def test_stride_two_halves_spatial_size(self):
        x = np.ones((8, 8, 1), dtype=np.int8)
        out = conv2d_int8(x, _identity_conv(1), stride=2, shift=0)
        assert out.shape == (4, 4, 1)

    def test_accumulator_saturates_to_int8(self):
        x = np.full((3, 3, 1), 127, dtype=np.int8)
        weights = np.full((3, 3, 1, 1), 127, dtype=np.int8)
        out = conv2d_int8(x, weights, stride=1, shift=0)
        assert out.max() == 127

    def test_shift_requantizes_with_rounding(self):
        x = np.full((1, 1, 1), 3, dtype=np.int8)
        weights = np.full((1, 1, 1, 1), 1, dtype=np.int8)
        out = conv2d_int8(x, weights, stride=1, shift=1)
        assert out[0, 0, 0] == 2  # (3 + 1) >> 1

    def test_channel_mismatch_rejected(self):
        x = np.ones((4, 4, 2), dtype=np.int8)
        with pytest.raises(ValueError):
            conv2d_int8(x, _identity_conv(3), stride=1, shift=0)


class TestSimpleOps:
    def test_relu_clamps_negatives(self):
        x = np.array([[-5, 3]], dtype=np.int8).reshape(1, 2, 1)
        assert relu_int8(x).ravel().tolist() == [0, 3]

    def test_maxpool_picks_max(self):
        x = np.array(
            [[1, 2], [3, 4]], dtype=np.int8
        ).reshape(2, 2, 1)
        assert maxpool2_int8(x).ravel().tolist() == [4]

    def test_maxpool_drops_odd_edges(self):
        x = np.ones((5, 5, 2), dtype=np.int8)
        assert maxpool2_int8(x).shape == (2, 2, 2)

    def test_global_avgpool(self):
        x = np.stack(
            [np.full((4, 4), 8, dtype=np.int8), np.full((4, 4), -8, dtype=np.int8)],
            axis=2,
        )
        assert global_avgpool_int8(x).tolist() == [8, -8]

    def test_fc_matmul(self):
        x = np.array([1, 2], dtype=np.int8)
        weights = np.array([[1, 0], [0, 2]], dtype=np.int8)
        assert fc_int8(x, weights, shift=0).tolist() == [1, 4]

    def test_fc_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fc_int8(np.ones(3, dtype=np.int8), np.ones((2, 4), dtype=np.int8), 0)


class TestResblock:
    def test_skip_connection_adds_input(self):
        x = np.full((4, 4, 2), 4, dtype=np.int8)
        zero_weights = np.zeros((3, 3, 2, 2), dtype=np.int8)
        out = resblock_int8(x, zero_weights, zero_weights, stride=1, shift=0)
        # Branch is all zeros, so output == relu(skip) == input.
        assert np.array_equal(out, x)

    def test_stride_downsamples_skip(self):
        x = np.full((4, 4, 2), 4, dtype=np.int8)
        zero_weights = np.zeros((3, 3, 2, 2), dtype=np.int8)
        out = resblock_int8(x, zero_weights, zero_weights, stride=2, shift=0)
        assert out.shape == (2, 2, 2)

    def test_channel_widening_pads_skip(self):
        x = np.full((4, 4, 2), 4, dtype=np.int8)
        w1 = np.zeros((3, 3, 2, 6), dtype=np.int8)
        w2 = np.zeros((3, 3, 6, 6), dtype=np.int8)
        out = resblock_int8(x, w1, w2, stride=1, shift=0)
        assert out.shape == (4, 4, 6)
        assert np.array_equal(out[:, :, :2], x)
        assert (out[:, :, 2:] == 0).all()


class TestLayerSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(kind="softmax", name="s")

    def test_conv_needs_weights(self):
        with pytest.raises(ValueError):
            LayerSpec(kind="conv2d", name="c")

    def test_resblock_needs_both_weight_sets(self):
        with pytest.raises(ValueError):
            LayerSpec(
                kind="resblock", name="r",
                weights=np.zeros((3, 3, 1, 1), dtype=np.int8),
            )

    def test_weights_must_be_int8(self):
        with pytest.raises(TypeError):
            LayerSpec(
                kind="conv2d", name="c",
                weights=np.zeros((3, 3, 1, 1), dtype=np.int32),
            )

    def test_weight_bytes_concatenates(self):
        layer = LayerSpec(
            kind="resblock", name="r",
            weights=np.ones((1, 1, 1, 1), dtype=np.int8),
            extra_weights=np.full((1, 1, 1, 1), 2, dtype=np.int8),
        )
        assert layer.weight_bytes() == b"\x01\x02"


class TestCompiledSubgraph:
    def _tiny_subgraph(self) -> CompiledSubgraph:
        return CompiledSubgraph(
            input_height=8,
            input_width=8,
            layers=[
                LayerSpec(
                    kind="conv2d", name="c",
                    weights=np.ones((3, 3, 3, 4), dtype=np.int8), shift=4,
                ),
                LayerSpec(kind="relu", name="r"),
                LayerSpec(kind="gap", name="g"),
                LayerSpec(
                    kind="fc", name="f",
                    weights=np.ones((4, 10), dtype=np.int8), shift=2,
                ),
            ],
        )

    def test_execute_output_size_is_class_count(self):
        subgraph = self._tiny_subgraph()
        out = subgraph.execute(b"\x80" * (8 * 8 * 3))
        assert len(out) == 10

    def test_execute_checks_input_size(self):
        with pytest.raises(ValueError):
            self._tiny_subgraph().execute(b"\x00" * 10)

    def test_execute_deterministic(self):
        subgraph = self._tiny_subgraph()
        blob = (bytes(range(256)) * 2)[: 8 * 8 * 3]
        assert subgraph.execute(blob) == subgraph.execute(blob)

    def test_different_inputs_can_differ(self):
        subgraph = self._tiny_subgraph()
        a = subgraph.execute(b"\x00" * 192)
        b = subgraph.execute(b"\xff" * 192)
        assert a != b

    def test_macs_positive_and_shape_derived(self):
        subgraph = self._tiny_subgraph()
        # conv: 8*8*3*3*3*4 + fc: 4*10
        assert subgraph.macs == 8 * 8 * 9 * 3 * 4 + 40

    def test_output_classes(self):
        assert self._tiny_subgraph().output_classes() == 10

    def test_output_classes_requires_fc(self):
        subgraph = CompiledSubgraph(8, 8, [LayerSpec(kind="relu", name="r")])
        with pytest.raises(ValueError):
            subgraph.output_classes()
