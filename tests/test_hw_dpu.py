"""Unit tests for the DPU gather/execute/scatter engine."""

import pytest

from repro.hw.dpu import DpuCore, DpuJob
from repro.hw.soc import ZynqMpSoC


class EchoKernel:
    """Test kernel: returns its input reversed."""

    macs = 1000

    def execute(self, input_blob: bytes) -> bytes:
        return input_blob[::-1]


class OversizeKernel:
    """Test kernel that produces more output than any scatter list."""

    macs = 1

    def execute(self, input_blob: bytes) -> bytes:
        return b"\xab" * (len(input_blob) + 100)


@pytest.fixture
def soc() -> ZynqMpSoC:
    return ZynqMpSoC()


@pytest.fixture
def dpu(soc: ZynqMpSoC) -> DpuCore:
    return DpuCore(soc)


class TestDpuJob:
    def test_lengths(self):
        job = DpuJob(EchoKernel(), [(0, 100), (4096, 50)], [(8192, 200)])
        assert job.input_length() == 150
        assert job.output_capacity() == 200


class TestDpuRun:
    def test_gather_execute_scatter(self, soc, dpu):
        soc.write_physical(0x6000_0000, b"abcd")
        job = DpuJob(EchoKernel(), [(0x6000_0000, 4)], [(0x6100_0000, 4)])
        result = dpu.run(job)
        assert result.output == b"dcba"
        assert soc.read_physical(0x6100_0000, 4) == b"dcba"

    def test_scattered_input_gathered_in_order(self, soc, dpu):
        soc.write_physical(0x6000_0000, b"AB")
        soc.write_physical(0x6200_0000, b"CD")
        job = DpuJob(
            EchoKernel(),
            [(0x6000_0000, 2), (0x6200_0000, 2)],
            [(0x6300_0000, 4)],
        )
        assert dpu.run(job).output == b"DCBA"

    def test_output_split_across_segments(self, soc, dpu):
        soc.write_physical(0x6000_0000, b"wxyz")
        job = DpuJob(
            EchoKernel(),
            [(0x6000_0000, 4)],
            [(0x6100_0000, 2), (0x6200_0000, 2)],
        )
        dpu.run(job)
        assert soc.read_physical(0x6100_0000, 2) == b"zy"
        assert soc.read_physical(0x6200_0000, 2) == b"xw"

    def test_oversized_output_rejected(self, soc, dpu):
        job = DpuJob(OversizeKernel(), [(0x6000_0000, 4)], [(0x6100_0000, 4)])
        with pytest.raises(ValueError):
            dpu.run(job)

    def test_phase_callback_order(self, soc, dpu):
        phases = []
        job = DpuJob(EchoKernel(), [(0x6000_0000, 4)], [(0x6100_0000, 4)])
        dpu.run(job, on_phase=phases.append)
        assert phases == ["gather", "execute", "scatter"]

    def test_cycle_estimate_uses_peak_macs(self, soc):
        dpu = DpuCore(soc, peak_macs_per_cycle=100)
        job = DpuJob(EchoKernel(), [(0x6000_0000, 4)], [(0x6100_0000, 4)])
        assert dpu.run(job).estimated_cycles == 10

    def test_stats_accumulate(self, soc, dpu):
        job = DpuJob(EchoKernel(), [(0x6000_0000, 4)], [(0x6100_0000, 4)])
        dpu.run(job)
        dpu.run(job)
        assert dpu.stats.jobs_completed == 2
        assert dpu.stats.bytes_gathered == 8
        assert dpu.stats.bytes_scattered == 8
        assert dpu.stats.total_macs == 2000

    def test_input_residue_left_in_dram(self, soc, dpu):
        """The DPU does not clear its buffers either — residue persists."""
        soc.write_physical(0x6000_0000, b"tensor-bytes")
        job = DpuJob(EchoKernel(), [(0x6000_0000, 12)], [(0x6100_0000, 12)])
        dpu.run(job)
        assert soc.read_physical(0x6000_0000, 12) == b"tensor-bytes"
